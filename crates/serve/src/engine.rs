//! The serving engine: a bounded, priority-aware submission queue in
//! front of worker threads that each drive per-model lane schedulers.

use crate::registry::{ContextKey, ModelId, ModelRegistry, ModelVersion};
use crate::request::{
    CompletionStatus, DeadlinePolicy, InferenceRequest, InferenceResponse, Priority, RequestId,
};
use crate::worker::{LaneWorker, MigratedLane, QueuedRequest, ResponseTag, StealBridge};
use nfm_bnn::BinaryNetwork;
use nfm_core::{ControlSnapshot, PredictorKind, ReuseStats};
use nfm_rnn::{DeepRnn, RnnError};
use nfm_tensor::Vector;
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// The model id [`EngineBuilder::new`] registers its single network
/// under — the single-model API is sugar for a one-entry registry.
pub const DEFAULT_MODEL: &str = "default";

/// Errors surfaced by [`EngineBuilder::build`],
/// [`Engine::submit`] and [`ModelRegistry`] registration.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The builder was configured outside the accepted ranges (all
    /// three knobs accept `1..`): the engine refuses degenerate
    /// configurations instead of silently clamping them.
    InvalidConfig {
        /// Which constraint was violated.
        what: String,
    },
    /// The submission queue is at capacity — backpressure.  Retry after
    /// draining some responses, or build the engine with a larger
    /// [`queue_capacity`](EngineBuilder::queue_capacity).
    QueueFull {
        /// The configured capacity that is currently exhausted.
        capacity: usize,
    },
    /// The request's sequence is empty.
    EmptySequence {
        /// The offending request.
        id: RequestId,
    },
    /// A sequence element does not match the targeted model's input
    /// width.
    InputSizeMismatch {
        /// The offending request.
        id: RequestId,
        /// Width the targeted model's network expects.
        expected: usize,
        /// Width found.
        found: usize,
        /// Index of the offending element.
        timestep: usize,
    },
    /// The request names a model that is not registered.
    UnknownModel {
        /// The id that failed to resolve.
        model: ModelId,
    },
    /// The request names a predictor that is not registered for its
    /// model.
    UnknownPredictor {
        /// The model the lookup ran against.
        model: ModelId,
        /// The predictor name that failed to resolve.
        predictor: String,
    },
    /// The request overrides the threshold of a predictor that has
    /// none (the exact baseline, custom predictors without
    /// [`Predictor::with_threshold`](nfm_core::Predictor::with_threshold)).
    ThresholdUnsupported {
        /// The model the request targeted.
        model: ModelId,
        /// The predictor without a threshold.
        predictor: String,
    },
    /// A model id was registered twice.
    DuplicateModel {
        /// The contested id.
        model: ModelId,
    },
    /// A predictor name was registered twice for the same model.
    DuplicatePredictor {
        /// The model the registration ran against.
        model: ModelId,
        /// The contested predictor name.
        predictor: String,
    },
    /// The registry holds no models, so there is nothing to serve (and
    /// no default model to resolve requests against).
    EmptyRegistry,
    /// A hot swap is already staged for this model; resolve it
    /// (promotion, rollback or eviction) before staging another.
    SwapInProgress {
        /// The model with a pending swap.
        model: ModelId,
    },
    /// Evicting this model would leave the registry empty; an engine
    /// cannot serve without a default model.
    CannotEvictLast {
        /// The model that was not evicted.
        model: ModelId,
    },
    /// The supplied model artifact could not be loaded (see
    /// [`nfm_model::ModelArtifactError`] for the failure taxonomy).
    BadArtifact {
        /// The underlying artifact error, rendered.
        what: String,
    },
    /// The engine has been shut down and accepts no further work.
    ShutDown,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig { what } => write!(f, "invalid engine config: {what}"),
            EngineError::QueueFull { capacity } => {
                write!(
                    f,
                    "submission queue full (capacity {capacity}); backpressure"
                )
            }
            EngineError::EmptySequence { id } => {
                write!(f, "request {id} has an empty sequence")
            }
            EngineError::InputSizeMismatch {
                id,
                expected,
                found,
                timestep,
            } => write!(
                f,
                "request {id}: element {timestep} has width {found}, network expects {expected}"
            ),
            EngineError::UnknownModel { model } => {
                write!(f, "no model registered under id {model:?}")
            }
            EngineError::UnknownPredictor { model, predictor } => {
                write!(f, "model {model:?} has no predictor named {predictor:?}")
            }
            EngineError::ThresholdUnsupported { model, predictor } => write!(
                f,
                "predictor {predictor:?} of model {model:?} has no threshold to override"
            ),
            EngineError::DuplicateModel { model } => {
                write!(f, "model id {model:?} is already registered")
            }
            EngineError::DuplicatePredictor { model, predictor } => write!(
                f,
                "model {model:?} already has a predictor named {predictor:?}"
            ),
            EngineError::EmptyRegistry => {
                write!(f, "the model registry is empty; register a model first")
            }
            EngineError::SwapInProgress { model } => {
                write!(f, "model {model:?} already has a hot swap staged")
            }
            EngineError::CannotEvictLast { model } => {
                write!(f, "cannot evict {model:?}: it is the last registered model")
            }
            EngineError::BadArtifact { what } => write!(f, "bad model artifact: {what}"),
            EngineError::ShutDown => write!(f, "engine is shut down"),
        }
    }
}

impl Error for EngineError {}

impl From<EngineError> for RnnError {
    fn from(e: EngineError) -> RnnError {
        match e {
            EngineError::EmptySequence { .. } => RnnError::EmptySequence,
            EngineError::InputSizeMismatch {
                expected,
                found,
                timestep,
                ..
            } => RnnError::InputSizeMismatch {
                expected,
                found,
                timestep,
            },
            other => RnnError::InvalidConfig {
                what: other.to_string(),
            },
        }
    }
}

/// Which live requests a staged hot swap canaries on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CanaryRule {
    /// Route this fraction (`(0, 1]`) of the model's traffic to the
    /// staged version.  Routing is a deterministic proportional
    /// counter, not sampling: over any window the canary share tracks
    /// the fraction exactly.
    Fraction(f32),
    /// Route exactly this priority class to the staged version.
    Priority(Priority),
}

/// How a hot swap canaries and when it decides.
///
/// Every canaried request runs **twice**: once on the staged version
/// (the response the caller sees) and once on the incumbent (a shadow,
/// suppressed from the response stream but compared output-by-output).
/// The swap promotes after [`min_requests`](CanaryConfig::min_requests)
/// comparisons stay within [`tolerance`](CanaryConfig::tolerance), and
/// rolls back on the first comparison that exceeds it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanaryConfig {
    /// Which requests canary.
    pub rule: CanaryRule,
    /// Completed canary/incumbent comparisons required to promote
    /// (`>= 1`).
    pub min_requests: u64,
    /// Largest tolerated absolute output difference between the staged
    /// and incumbent versions.  `0.0` demands bit-identical outputs —
    /// right for weight-preserving swaps (artifact reloads, kernel
    /// retuning); widen it for genuinely retrained weights.
    pub tolerance: f32,
}

impl CanaryConfig {
    /// Canary `fraction` of the model's traffic, promote after 8 clean
    /// comparisons at zero tolerance.
    pub fn fraction(fraction: f32) -> Self {
        CanaryConfig {
            rule: CanaryRule::Fraction(fraction),
            min_requests: 8,
            tolerance: 0.0,
        }
    }

    /// Canary exactly one priority class, promote after 8 clean
    /// comparisons at zero tolerance.
    pub fn priority(priority: Priority) -> Self {
        CanaryConfig {
            rule: CanaryRule::Priority(priority),
            min_requests: 8,
            tolerance: 0.0,
        }
    }

    /// Sets the comparisons required to promote (`>= 1`).
    pub fn min_requests(mut self, min_requests: u64) -> Self {
        self.min_requests = min_requests;
        self
    }

    /// Sets the tolerated absolute output difference.
    pub fn tolerance(mut self, tolerance: f32) -> Self {
        self.tolerance = tolerance;
        self
    }

    fn validate(&self) -> Result<(), EngineError> {
        if let CanaryRule::Fraction(f) = self.rule {
            if !(f > 0.0 && f <= 1.0) {
                return Err(EngineError::InvalidConfig {
                    what: format!("canary fraction must be in (0, 1], got {f}"),
                });
            }
        }
        if self.min_requests == 0 {
            return Err(EngineError::InvalidConfig {
                what: "canary min_requests must be >= 1".into(),
            });
        }
        if self.tolerance.is_nan() || self.tolerance < 0.0 {
            return Err(EngineError::InvalidConfig {
                what: format!("canary tolerance must be >= 0, got {}", self.tolerance),
            });
        }
        Ok(())
    }
}

/// How a hot swap ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOutcome {
    /// Enough canary comparisons matched; the staged version is live.
    Promoted,
    /// A comparison exceeded the tolerance; the staged version was
    /// discarded and the incumbent kept serving.
    RolledBack,
}

/// Live progress of a staged hot swap ([`Engine::swap_status`]).
#[derive(Debug, Clone)]
pub struct SwapStatus {
    /// The model being swapped.
    pub model: ModelId,
    /// The incumbent version.
    pub from: ModelVersion,
    /// The staged version.
    pub to: ModelVersion,
    /// Requests for this model observed while the swap was undecided.
    pub seen: u64,
    /// Canary pairs routed so far.
    pub canaries: u64,
    /// Comparisons completed within tolerance.
    pub matched: u64,
    /// Canary pairs still in flight.
    pub in_flight: usize,
    /// The decision, once reached (applied after the in-flight pairs
    /// finish).
    pub decision: Option<SwapOutcome>,
}

/// The record of a finished hot swap ([`Engine::swap_reports`]).
#[derive(Debug, Clone)]
pub struct SwapReport {
    /// The model that was swapped.
    pub model: ModelId,
    /// The version that was serving when the swap was staged.
    pub from: ModelVersion,
    /// The version that was staged.
    pub to: ModelVersion,
    /// How the swap ended.
    pub outcome: SwapOutcome,
    /// Canary pairs routed.
    pub canaries: u64,
    /// Comparisons completed within tolerance.
    pub matched: u64,
    /// Largest absolute output difference observed across all
    /// comparisons.
    pub max_abs_diff: f32,
    /// Reuse counters accumulated by the staged version's canary runs.
    pub canary_stats: ReuseStats,
    /// Reuse counters accumulated by the incumbent's shadow runs.
    pub incumbent_stats: ReuseStats,
}

/// One half of a canary pair, captured at emission.
#[derive(Debug)]
struct ObservedHalf {
    done: bool,
    outputs: Vec<Vector>,
    stats: ReuseStats,
}

/// A canary pair waiting for both halves.
#[derive(Debug, Default)]
struct PendingPair {
    canary: Option<ObservedHalf>,
    incumbent: Option<ObservedHalf>,
}

/// Engine-side bookkeeping of one staged hot swap.  Lives in [`State`]
/// (mutated under the state lock by `submit` and the workers' emit
/// path); the decision is applied to the registry later by
/// [`Engine::apply_ready_swaps`] under the registry write lock.
#[derive(Debug)]
struct SwapState {
    model: ModelId,
    from: ModelVersion,
    to: ModelVersion,
    config: CanaryConfig,
    seen: u64,
    routed: u64,
    matched: u64,
    max_abs_diff: f32,
    pending: HashMap<u64, PendingPair>,
    decision: Option<SwapOutcome>,
    canary_stats: ReuseStats,
    incumbent_stats: ReuseStats,
}

/// Largest absolute element difference between two output sequences;
/// infinite when the shapes disagree or any element is non-finite (a
/// shape change across versions can never promote).
fn max_abs_diff(a: &[Vector], b: &[Vector]) -> f32 {
    if a.len() != b.len() {
        return f32::INFINITY;
    }
    let mut max = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        if x.len() != y.len() {
            return f32::INFINITY;
        }
        for n in 0..x.len() {
            let d = (x[n] - y[n]).abs();
            if !d.is_finite() {
                return f32::INFINITY;
            }
            if d > max {
                max = d;
            }
        }
    }
    max
}

/// Feeds one emitted response into the swap bookkeeping: records the
/// pair half the tag names, and when both halves are in, compares them
/// and advances the swap toward promotion or rollback.  Runs under the
/// state lock on the worker's emit path; non-canary responses (serial
/// not in any pending map) fall straight through.
fn swap_observe(state: &mut State, response: &InferenceResponse, tag: ResponseTag) {
    let Some(swap) = state
        .swaps
        .iter_mut()
        .find(|s| s.pending.contains_key(&tag.serial))
    else {
        return;
    };
    let pair = swap
        .pending
        .get_mut(&tag.serial)
        .expect("serial found above");
    let half = ObservedHalf {
        done: response.status == CompletionStatus::Done,
        outputs: response.outputs.clone(),
        stats: response.stats,
    };
    if tag.shadow {
        pair.incumbent = Some(half);
    } else {
        pair.canary = Some(half);
    }
    if pair.canary.is_none() || pair.incumbent.is_none() {
        return;
    }
    let pair = swap.pending.remove(&tag.serial).expect("pair completed");
    let (canary, incumbent) = (
        pair.canary.expect("checked above"),
        pair.incumbent.expect("checked above"),
    );
    swap.canary_stats.merge(&canary.stats);
    swap.incumbent_stats.merge(&incumbent.stats);
    // Pairs where either half expired or was rejected are inconclusive:
    // they neither promote nor roll back.
    if !(canary.done && incumbent.done) {
        return;
    }
    let diff = max_abs_diff(&canary.outputs, &incumbent.outputs);
    if diff > swap.max_abs_diff {
        swap.max_abs_diff = diff;
    }
    if swap.decision.is_some() {
        return;
    }
    if diff > swap.config.tolerance || !diff.is_finite() {
        swap.decision = Some(SwapOutcome::RolledBack);
    } else {
        swap.matched += 1;
        if swap.matched >= swap.config.min_requests {
            swap.decision = Some(SwapOutcome::Promoted);
        }
    }
}

/// Builds an [`Engine`].
///
/// Two entry points:
///
/// * [`EngineBuilder::new`] — the single-model path: one network, one
///   built-in predictor.  Sugar for a one-entry registry under
///   [`DEFAULT_MODEL`]; behavior (and results) are unchanged from the
///   pre-registry engine.
/// * [`EngineBuilder::from_registry`] — the multi-model path: serve
///   every model/predictor pair in a [`ModelRegistry`], with requests
///   choosing per submission via
///   [`RequestOptions`](crate::RequestOptions).
///
/// # Accepted ranges
///
/// All three sizing knobs accept `1..`; `0` is rejected by
/// [`build`](EngineBuilder::build) with
/// [`EngineError::InvalidConfig`] — never silently clamped:
///
/// * [`lanes`](EngineBuilder::lanes) — sequences evaluated per gate
///   invocation per worker (default 4).
/// * [`workers`](EngineBuilder::workers) — background compute threads
///   (default 1).
/// * [`queue_capacity`](EngineBuilder::queue_capacity) — bound on
///   *waiting* submissions, excluding requests already on a lane
///   (default 256).
#[derive(Debug)]
pub struct EngineBuilder {
    registry: Result<ModelRegistry, EngineError>,
    lanes: usize,
    workers: usize,
    queue_capacity: usize,
    override_context_cap: usize,
    policy: DeadlinePolicy,
    paused: bool,
    autotune: bool,
}

impl EngineBuilder {
    /// Starts a builder for the single-model path: `network` under
    /// `predictor`, registered as the model [`DEFAULT_MODEL`] of a
    /// fresh registry.
    pub fn new(network: impl Into<Arc<DeepRnn>>, predictor: PredictorKind) -> Self {
        let mut registry = ModelRegistry::new();
        let registered = registry
            .register(DEFAULT_MODEL, network, predictor)
            .map(|()| registry);
        EngineBuilder::with_registry_result(registered)
    }

    /// Starts a builder serving every model of `registry`.
    pub fn from_registry(registry: ModelRegistry) -> Self {
        EngineBuilder::with_registry_result(Ok(registry))
    }

    fn with_registry_result(registry: Result<ModelRegistry, EngineError>) -> Self {
        EngineBuilder {
            registry,
            lanes: 4,
            workers: 1,
            queue_capacity: 256,
            override_context_cap: crate::worker::DEFAULT_OVERRIDE_CONTEXT_CAP,
            policy: DeadlinePolicy::default(),
            paused: false,
            autotune: false,
        }
    }

    /// Lane count per worker (`>= 1`): how many sequences share one
    /// weight stream per gate invocation.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Worker thread count (`>= 1`).  Each worker owns its own
    /// evaluator and lane scheduler and pulls from the shared queue.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Bound on waiting submissions (`>= 1`); a full queue makes
    /// [`Engine::submit`] return [`EngineError::QueueFull`].
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Per-worker bound on *idle* execution contexts born from
    /// per-request threshold overrides (`>= 1`, default 8).  Every
    /// distinct override θ materializes one context (evaluator + lane
    /// scheduler) per worker that serves it; idle override contexts
    /// beyond this cap are evicted least-recently-used first, which
    /// bounds worker memory under clients sweeping thresholds.
    /// Registered (model, predictor) combinations are never evicted,
    /// and eviction never changes results — a re-created context
    /// resets all per-request state at admission anyway
    /// (`tests/multi_model_serving.rs` sweeps θ under a tiny cap to
    /// prove it).  Raise the cap when latency-sensitive traffic reuses
    /// many override values and the evaluator rebuild matters.
    pub fn override_context_cap(mut self, cap: usize) -> Self {
        self.override_context_cap = cap;
        self
    }

    /// What to do with requests whose deadline expired while queued.
    pub fn deadline_policy(mut self, policy: DeadlinePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Starts the engine paused: workers are spawned but do not pull
    /// work until [`Engine::resume`] (or a draining call).  Useful to
    /// stage a burst of submissions — and to test backpressure
    /// deterministically.
    pub fn start_paused(mut self) -> Self {
        self.paused = true;
        self
    }

    /// Autotunes kernel blockings at build time (default off): every
    /// registered model's distinct gate shapes are benchmarked once on
    /// the active backend at the configured lane count, and the winning
    /// traversals are recorded in the process-wide autotune cache (see
    /// [`ModelRegistry::autotune_model`]).  Hot-swapped versions are
    /// tuned when staged.  Tuning never changes results — all
    /// candidates share the canonical reduction order — it only picks
    /// the measured-fastest traversal per shape.
    pub fn autotune(mut self, autotune: bool) -> Self {
        self.autotune = autotune;
        self
    }

    /// Spawns the workers and returns the engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] when `lanes`, `workers`
    /// or `queue_capacity` is `0`, [`EngineError::EmptyRegistry`] when
    /// no model is registered, and any registration error deferred by
    /// [`EngineBuilder::new`].
    pub fn build(self) -> Result<Engine, EngineError> {
        for (what, value) in [
            ("lanes", self.lanes),
            ("workers", self.workers),
            ("queue_capacity", self.queue_capacity),
            ("override_context_cap", self.override_context_cap),
        ] {
            if value == 0 {
                return Err(EngineError::InvalidConfig {
                    what: format!(
                        "{what} must be >= 1, got 0 (degenerate configurations are rejected, \
                         not clamped)"
                    ),
                });
            }
        }
        let mut registry = self.registry?;
        if registry.is_empty() {
            return Err(EngineError::EmptyRegistry);
        }
        if self.autotune {
            let ids: Vec<ModelId> = registry.model_ids().cloned().collect();
            for id in ids {
                registry.autotune_model(&id, self.lanes)?;
            }
        }
        let registry = Arc::new(RwLock::new(registry));
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: PriorityQueue::new(),
                responses: Vec::new(),
                outstanding: 0,
                migrated: VecDeque::new(),
                idle_workers: 0,
                migrations: 0,
                lane_borrows: 0,
                context_stats: (0..self.workers).map(|_| Vec::new()).collect(),
                swaps: Vec::new(),
                swap_reports: Vec::new(),
                next_serial: 1,
                shutdown: false,
                paused: self.paused,
                error: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            capacity: self.queue_capacity,
        });
        let mut handles = Vec::with_capacity(self.workers);
        for index in 0..self.workers {
            let worker = LaneWorker::new(self.lanes, self.policy, self.override_context_cap);
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                worker_loop(shared, worker, index)
            }));
        }
        Ok(Engine {
            shared,
            registry,
            handles,
            lanes: self.lanes,
            workers: self.workers,
            override_context_cap: self.override_context_cap,
            policy: self.policy,
            autotune: self.autotune,
        })
    }
}

/// The bounded submission queue: one FIFO per [`Priority`] class,
/// drained highest class first.  Priority picks the *admission order*;
/// results never depend on it.
#[derive(Debug)]
struct PriorityQueue {
    classes: [VecDeque<QueuedRequest>; 3],
    len: usize,
}

impl PriorityQueue {
    fn new() -> Self {
        PriorityQueue {
            classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push(&mut self, request: QueuedRequest) {
        let class = request.req.options.priority.index();
        self.classes[class].push_back(request);
        self.len += 1;
    }

    /// Pops the first request (highest class first, FIFO within a
    /// class) that satisfies `admittable`.  Requests the calling worker
    /// cannot place right now are *skipped, not taken*: they stay
    /// queued — preserving backpressure accounting and leaving them
    /// available to any other worker with free capacity.
    fn pop_where(&mut self, admittable: &dyn Fn(&QueuedRequest) -> bool) -> Option<QueuedRequest> {
        for class in &mut self.classes {
            if let Some(i) = class.iter().position(admittable) {
                let request = class.remove(i).expect("index from position");
                self.len -= 1;
                return Some(request);
            }
        }
        None
    }
}

#[derive(Debug)]
struct State {
    queue: PriorityQueue,
    responses: Vec<InferenceResponse>,
    /// Submitted but not yet responded (queued or on a lane).
    outstanding: usize,
    /// In-flight lanes a saturated worker extracted for an idle one
    /// (worker work stealing); drained before any worker exits.
    migrated: VecDeque<MigratedLane>,
    /// Workers currently parked on `work_cv` — the donor-side signal
    /// that migrating a lane would buy real parallelism.
    idle_workers: usize,
    /// Lanes migrated between workers since the engine started.
    migrations: u64,
    /// Cross-context lane borrows since the engine started (a hot
    /// model admitted beyond its fair share into lanes its sibling
    /// contexts left idle).
    lane_borrows: u64,
    /// Per-worker context-stats snapshots, republished (replaced, not
    /// accumulated — evaluator counters are cumulative) every time a
    /// worker drains the queue and goes idle.  Indexed by worker.
    context_stats: Vec<Vec<(ContextKey, ReuseStats)>>,
    /// Staged hot swaps: canary bookkeeping mutated by `submit` and the
    /// emit path; decisions applied to the registry by
    /// `apply_ready_swaps`.
    swaps: Vec<SwapState>,
    /// Finished swaps awaiting collection via `Engine::swap_reports`.
    swap_reports: Vec<SwapReport>,
    /// Next submission serial (unique per admitted request; canary
    /// pairs share one serial across their two halves).
    next_serial: u64,
    shutdown: bool,
    paused: bool,
    error: Option<String>,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Workers wait here for submissions / resume / shutdown.
    work_cv: Condvar,
    /// Callers wait here for `outstanding` to reach zero.
    done_cv: Condvar,
    capacity: usize,
}

/// The engine side of worker work stealing: a thin, locked window onto
/// [`State`]'s migration pool and idle-worker count.
struct EngineBridge {
    shared: Arc<Shared>,
}

impl StealBridge for EngineBridge {
    fn try_receive(&self, admittable: &dyn Fn(&MigratedLane) -> bool) -> Option<MigratedLane> {
        let mut state = self.shared.state.lock().expect("engine state lock");
        if state.paused && !state.shutdown {
            return None;
        }
        let i = state.migrated.iter().position(admittable)?;
        state.migrated.remove(i)
    }

    fn donation_wanted(&self) -> bool {
        let state = self.shared.state.lock().expect("engine state lock");
        // Donate only into real idleness: an empty queue (otherwise the
        // idle worker has queued work to pull), an empty pool (one
        // outstanding donation at a time), and a worker parked on the
        // condvar.  Never during shutdown — workers are draining.
        !state.shutdown
            && !state.paused
            && state.queue.is_empty()
            && state.migrated.is_empty()
            && state.idle_workers > 0
    }

    fn donate(&self, lane: MigratedLane) {
        let mut state = self.shared.state.lock().expect("engine state lock");
        state.migrated.push_back(lane);
        state.migrations += 1;
        self.shared.work_cv.notify_one();
    }

    fn note_lane_borrow(&self) {
        let mut state = self.shared.state.lock().expect("engine state lock");
        state.lane_borrows += 1;
    }
}

fn worker_loop(shared: Arc<Shared>, mut worker: LaneWorker, index: usize) {
    loop {
        {
            let mut state = shared.state.lock().expect("engine state lock");
            loop {
                if state.shutdown && state.queue.is_empty() && state.migrated.is_empty() {
                    return;
                }
                // Shutdown overrides pause so the queue always drains.
                let runnable = (!state.queue.is_empty() || !state.migrated.is_empty())
                    && (!state.paused || state.shutdown);
                if runnable {
                    break;
                }
                // Parked workers are the donation signal: a saturated
                // worker migrates an in-flight lane here only while
                // someone is actually waiting to run it.  Parking also
                // wakes `drain` waiters: they wait for *quiescence*
                // (zero outstanding + every worker parked), which makes
                // the context-stats snapshots published below complete
                // by the time `drain` returns.
                state.idle_workers += 1;
                shared.done_cv.notify_all();
                state = shared.work_cv.wait(state).expect("engine state lock");
                state.idle_workers -= 1;
            }
        }
        let pull_shared = Arc::clone(&shared);
        let mut pull = move |admittable: &dyn Fn(&QueuedRequest) -> bool| {
            let mut state = pull_shared.state.lock().expect("engine state lock");
            if state.paused && !state.shutdown {
                return None;
            }
            state.queue.pop_where(admittable)
        };
        let bridge = EngineBridge {
            shared: Arc::clone(&shared),
        };
        let emit_shared = Arc::clone(&shared);
        let mut emit = move |response: InferenceResponse, tag: ResponseTag| {
            let mut state = emit_shared.state.lock().expect("engine state lock");
            swap_observe(&mut state, &response, tag);
            // Shadow halves of canary pairs are compared above but
            // never surfaced: callers see exactly one response per
            // submitted request.  They still balance `outstanding`, so
            // drain/quiescence accounting holds even for shadows that
            // land after their swap decided.
            if !tag.shadow {
                state.responses.push(response);
            }
            state.outstanding -= 1;
            emit_shared.done_cv.notify_all();
        };
        let report_shared = Arc::clone(&shared);
        let mut report = move |error: String| {
            let mut state = report_shared.state.lock().expect("engine state lock");
            state.error.get_or_insert(error);
        };
        worker.pump(&mut pull, &bridge, &mut emit, &mut report);
        // Publish this worker's per-context counters before parking (or
        // exiting): `Engine::context_stats` merges these snapshots, and
        // both quiescence points — `drain` returning, `shutdown`
        // joining — happen after the publication.
        let snapshots = worker.stats_snapshots();
        let mut state = shared.state.lock().expect("engine state lock");
        state.context_stats[index] = snapshots;
    }
}

/// Aggregate statistics of one served (model, predictor, threshold)
/// execution context, merged across workers — the engine's
/// observability surface for memoization behavior
/// ([`Engine::context_stats`]).
#[derive(Debug, Clone)]
pub struct ContextStats {
    /// The model this context serves.
    pub model: ModelId,
    /// The model weight version the context ran (canary contexts of a
    /// hot swap report the staged version).
    pub version: ModelVersion,
    /// The predictor name the context was resolved under.
    pub predictor: String,
    /// The per-request threshold override that keyed this context,
    /// `None` for the registered (model, predictor) combination.
    pub threshold_override: Option<f32>,
    /// Reuse counters accumulated by the context's evaluators across
    /// every request they served (workers merged).
    pub stats: ReuseStats,
    /// Live controller state for adaptive predictors (current per-layer
    /// θ, audit-error EWMA, hit/audit counters) — `None` for static
    /// predictors and for threshold-override contexts.
    pub control: Option<ControlSnapshot>,
}

impl ContextStats {
    /// Fraction of neuron evaluations answered from the memo table,
    /// `0.0` before any work.
    pub fn hit_rate(&self) -> f64 {
        self.stats.reuse_fraction()
    }
}

/// A request-oriented serving engine.
///
/// Built by [`EngineBuilder`] — over a single model or a whole
/// [`ModelRegistry`]; accepts [`InferenceRequest`]s through
/// [`submit`](Engine::submit) / [`submit_all`](Engine::submit_all)
/// (each request choosing its model, predictor, threshold override
/// and priority via [`RequestOptions`](crate::RequestOptions)) and
/// reports every admitted request exactly once as an
/// [`InferenceResponse`] (collect them with
/// [`take_completed`](Engine::take_completed),
/// [`drain`](Engine::drain) or [`shutdown`](Engine::shutdown)).
///
/// Internally each worker thread owns one **execution context** per
/// served (model, predictor, threshold) combination — a private
/// evaluator built by the registered
/// [`Predictor`](nfm_core::Predictor) factory plus a lane scheduler —
/// and interleaves the contexts block by block, so several models make
/// progress concurrently on one thread.  Every context runs the unified
/// [`LaneScheduler`](nfm_rnn::LaneScheduler): unidirectional stacks use
/// [`RefillPolicy::Block`](nfm_rnn::RefillPolicy), which refills a
/// drained lane from the queue *immediately* (mid-wave lane refill)
/// instead of waiting for a wave boundary, hoists all lanes' inputs
/// across a whole [`HOIST_BLOCK`](nfm_rnn::HOIST_BLOCK)-step block, and
/// aborts in-flight requests whose deadline expires between blocks
/// (under [`DeadlinePolicy::DropExpired`]).  A hot context may also
/// *borrow* idle lanes from cold contexts on the same worker
/// ([`lane_borrows`](Engine::lane_borrows)), and a saturated worker may
/// *donate* an in-flight lane to an idle worker
/// ([`migrations`](Engine::migrations)).  Scheduling never changes
/// results: per-request outputs, reuse statistics and memo-hit counts
/// are bit-identical to a dedicated
/// [`MemoizedRunner::run`](crate::MemoizedRunner::run) over the same
/// sequence.
///
/// Dropping the engine shuts it down and joins the workers (draining
/// any queued work first); pending responses are discarded — call
/// [`shutdown`](Engine::shutdown) to receive them instead.
#[derive(Debug)]
pub struct Engine {
    shared: Arc<Shared>,
    /// Lock order: registry (read or write) strictly **before** the
    /// state mutex, everywhere.  Workers never touch the registry —
    /// they run on `Arc` handles resolved at submission.
    registry: Arc<RwLock<ModelRegistry>>,
    handles: Vec<JoinHandle<()>>,
    lanes: usize,
    workers: usize,
    override_context_cap: usize,
    policy: DeadlinePolicy,
    autotune: bool,
}

impl Engine {
    /// Starts building a single-model engine for `network` under
    /// `predictor`.
    pub fn builder(network: impl Into<Arc<DeepRnn>>, predictor: PredictorKind) -> EngineBuilder {
        EngineBuilder::new(network, predictor)
    }

    /// The model registry this engine serves (a read guard: the
    /// registry is shared with the hot-swap path, which takes the write
    /// side briefly to stage, promote or evict versions).  Don't hold
    /// the guard across calls into the engine.
    pub fn registry(&self) -> RwLockReadGuard<'_, ModelRegistry> {
        self.registry.read().expect("registry lock")
    }

    /// Whether build-time/staging-time kernel autotuning is enabled
    /// (see [`EngineBuilder::autotune`]).
    pub fn autotune_enabled(&self) -> bool {
        self.autotune
    }

    /// Lanes per worker.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Bound on waiting submissions.
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Per-worker bound on idle threshold-override execution contexts
    /// (see [`EngineBuilder::override_context_cap`]).
    pub fn override_context_cap(&self) -> usize {
        self.override_context_cap
    }

    /// In-flight lanes migrated from a saturated worker to an idle one
    /// since the engine started (worker work stealing).  Purely
    /// observability: migration never changes results, only latency.
    pub fn migrations(&self) -> u64 {
        self.shared
            .state
            .lock()
            .expect("engine state lock")
            .migrations
    }

    /// Requests admitted beyond their context's fair share into lanes
    /// that sibling contexts on the same worker were leaving idle
    /// (cross-context lane stealing).  Purely observability.
    pub fn lane_borrows(&self) -> u64 {
        self.shared
            .state
            .lock()
            .expect("engine state lock")
            .lane_borrows
    }

    /// Aggregate per-context memoization statistics: one entry per
    /// served (model, predictor, threshold) combination, merged across
    /// workers and sorted by (model, predictor, override θ bits) so the
    /// listing is deterministic.  Adaptive predictors additionally
    /// carry a live [`ControlSnapshot`] (current per-layer θ,
    /// audit-error EWMA, hit/audit counters) fetched from the
    /// registered factory at call time.
    ///
    /// Each worker republishes its counters every time it drains the
    /// queue and goes idle, so under in-flight traffic the numbers can
    /// trail the responses already taken; after [`drain`](Engine::drain)
    /// (which waits for full quiescence) or
    /// [`shutdown`](Engine::shutdown) they cover every answered
    /// request.  Contexts born from threshold overrides may be
    /// LRU-evicted while idle (see
    /// [`EngineBuilder::override_context_cap`]); an evicted context's
    /// counters leave the listing with it.
    pub fn context_stats(&self) -> Vec<ContextStats> {
        let per_worker = {
            let state = self.shared.state.lock().expect("engine state lock");
            state.context_stats.clone()
        };
        let mut merged: Vec<(ContextKey, ReuseStats)> = Vec::new();
        for (key, stats) in per_worker.into_iter().flatten() {
            match merged.iter_mut().find(|(k, _)| *k == key) {
                Some((_, acc)) => acc.merge(&stats),
                None => merged.push((key, stats)),
            }
        }
        merged.sort_by(|(a, _), (b, _)| {
            (
                a.model.as_str(),
                a.version,
                a.predictor.as_ref(),
                a.threshold_bits,
            )
                .cmp(&(
                    b.model.as_str(),
                    b.version,
                    b.predictor.as_ref(),
                    b.threshold_bits,
                ))
        });
        let registry = self.registry.read().expect("registry lock");
        merged
            .into_iter()
            .map(|(key, stats)| {
                let control = if key.threshold_bits.is_none() {
                    registry
                        .find_predictor(&key.model, key.version, &key.predictor)
                        .and_then(|p| p.control_snapshot())
                } else {
                    None
                };
                ContextStats {
                    model: key.model.clone(),
                    version: key.version,
                    predictor: key.predictor.as_ref().to_string(),
                    threshold_override: key.threshold_bits.map(f32::from_bits),
                    stats,
                    control,
                }
            })
            .collect()
    }

    /// The kernel dispatch tier this process serves with (resolved once
    /// from CPU detection / `NFM_KERNEL_BACKEND` — see
    /// [`nfm_tensor::backend`]).  Purely observability: the tier never
    /// changes results, only throughput.
    pub fn kernel_backend(&self) -> nfm_tensor::backend::KernelBackend {
        nfm_tensor::backend::active()
    }

    /// The configured deadline policy.
    pub fn deadline_policy(&self) -> DeadlinePolicy {
        self.policy
    }

    /// Submits one request.  On success the request is guaranteed to
    /// produce exactly one [`InferenceResponse`].
    ///
    /// The request's [`RequestOptions`](crate::RequestOptions) are
    /// resolved against the registry *here*, synchronously: unknown
    /// ids, unknown predictor names and unsupported threshold
    /// overrides are typed errors from this call, and the sequence is
    /// validated against the **targeted model's** input width — lanes
    /// never fault mid-flight.
    ///
    /// # Errors
    ///
    /// * [`EngineError::UnknownModel`] / [`EngineError::UnknownPredictor`]
    ///   / [`EngineError::ThresholdUnsupported`] — the options do not
    ///   resolve against the registry;
    /// * [`EngineError::EmptySequence`] / [`EngineError::InputSizeMismatch`]
    ///   — the sequence cannot run on the targeted model;
    /// * [`EngineError::QueueFull`] — backpressure: the bounded queue
    ///   is at capacity;
    /// * [`EngineError::ShutDown`] — the engine no longer accepts work.
    pub fn submit(&self, request: InferenceRequest) -> Result<(), EngineError> {
        // Lock order: registry before state, always.  The read guard is
        // held across the state lock so a staged version cannot be
        // promoted or discarded between resolution and enqueue.
        let registry = self.registry.read().expect("registry lock");
        let resolved = registry.resolve(&request.options)?;
        if request.sequence.is_empty() {
            return Err(EngineError::EmptySequence { id: request.id });
        }
        let expected = resolved.network.input_size();
        for (t, x) in request.sequence.iter().enumerate() {
            if x.len() != expected {
                return Err(EngineError::InputSizeMismatch {
                    id: request.id,
                    expected,
                    found: x.len(),
                    timestep: t,
                });
            }
        }
        let mut state = self.shared.state.lock().expect("engine state lock");
        if state.shutdown {
            return Err(EngineError::ShutDown);
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(EngineError::QueueFull {
                capacity: self.shared.capacity,
            });
        }
        // Canary routing: while an undecided swap covers this model,
        // requests the rule selects run as a pair — the staged version
        // answers the caller, the incumbent shadows for comparison.
        let model = &resolved.key.model;
        if let Some(idx) = state
            .swaps
            .iter()
            .position(|s| &s.model == model && s.decision.is_none())
        {
            state.swaps[idx].seen += 1;
            let swap = &state.swaps[idx];
            let route = match swap.config.rule {
                // Deterministic proportional routing: canary exactly
                // when doing so keeps routed/seen at or under the
                // fraction.
                CanaryRule::Fraction(f) => (swap.routed + 1) as f64 <= swap.seen as f64 * f as f64,
                CanaryRule::Priority(p) => request.options.priority == p,
            };
            // A pair needs room for both halves; with one slot left the
            // request falls back to the incumbent rather than failing.
            if route && state.queue.len() + 2 <= self.shared.capacity {
                if let Ok(staged) = registry.resolve_staged(model, &request.options) {
                    let serial = state.next_serial;
                    state.next_serial += 1;
                    state.swaps[idx].routed += 1;
                    state.swaps[idx]
                        .pending
                        .insert(serial, PendingPair::default());
                    let shadow_req = request.clone();
                    let submitted_at = Instant::now();
                    state.queue.push(QueuedRequest {
                        req: request,
                        submitted_at,
                        resolved: staged,
                        serial,
                        shadow: false,
                    });
                    state.queue.push(QueuedRequest {
                        req: shadow_req,
                        submitted_at,
                        resolved,
                        serial,
                        shadow: true,
                    });
                    state.outstanding += 2;
                    if !state.paused {
                        self.shared.work_cv.notify_one();
                        self.shared.work_cv.notify_one();
                    }
                    return Ok(());
                }
                // The staged version cannot serve these options (e.g. a
                // predictor it was not staged with): serve the
                // incumbent alone.
            }
        }
        let serial = state.next_serial;
        state.next_serial += 1;
        state.queue.push(QueuedRequest {
            req: request,
            submitted_at: Instant::now(),
            resolved,
            serial,
            shadow: false,
        });
        state.outstanding += 1;
        if !state.paused {
            self.shared.work_cv.notify_one();
        }
        Ok(())
    }

    /// Submits every request in order, stopping at the first error
    /// (earlier submissions stay admitted).  Returns how many were
    /// accepted.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::submit`].
    pub fn submit_all(
        &self,
        requests: impl IntoIterator<Item = InferenceRequest>,
    ) -> Result<usize, EngineError> {
        let mut accepted = 0;
        for request in requests {
            self.submit(request)?;
            accepted += 1;
        }
        Ok(accepted)
    }

    /// Stages `network` as the next version of `model` and starts
    /// canarying live traffic onto it, without pausing the engine or
    /// dropping any in-flight request.
    ///
    /// The staged version gets predictors built from `predictors`
    /// (deduplicating BNN mirrors), version `live + 1`, and — when
    /// [`EngineBuilder::autotune`] is on — freshly tuned kernel
    /// blockings for its gate shapes.  While the swap is undecided,
    /// requests selected by `canary` run as pairs: the staged version
    /// answers the caller, the incumbent shadows for comparison.
    /// After [`CanaryConfig::min_requests`] comparisons within
    /// [`CanaryConfig::tolerance`] the staged version is promoted;
    /// the first comparison outside it rolls the swap back.  Either
    /// way the registry change is applied only once the last canary
    /// pair lands (see [`Engine::swap_status`] /
    /// [`Engine::swap_reports`]); requests already resolved keep their
    /// weight handles and always complete.
    ///
    /// # Errors
    ///
    /// * [`EngineError::UnknownModel`] — `model` is not registered;
    /// * [`EngineError::SwapInProgress`] — a swap is already staged;
    /// * [`EngineError::InvalidConfig`] — `canary` is degenerate or
    ///   `predictors` is empty;
    /// * [`EngineError::ShutDown`] — the engine no longer accepts work.
    pub fn swap_model(
        &self,
        model: impl Into<ModelId>,
        network: impl Into<Arc<DeepRnn>>,
        predictors: &[PredictorKind],
        canary: CanaryConfig,
    ) -> Result<ModelVersion, EngineError> {
        self.stage_swap(model.into(), network.into(), None, predictors, canary)
    }

    /// Like [`Engine::swap_model`], but the new version arrives as a
    /// serialized model artifact (see [`nfm_model`]).  The artifact's
    /// prebuilt binary mirror, when present, is reused for BNN
    /// predictors.
    ///
    /// # Errors
    ///
    /// [`EngineError::BadArtifact`] when the bytes do not decode, plus
    /// everything [`Engine::swap_model`] returns.
    pub fn swap_model_artifact(
        &self,
        model: impl Into<ModelId>,
        artifact: &[u8],
        predictors: &[PredictorKind],
        canary: CanaryConfig,
    ) -> Result<ModelVersion, EngineError> {
        let loaded =
            nfm_model::load_from_slice(artifact).map_err(|e| EngineError::BadArtifact {
                what: e.to_string(),
            })?;
        self.stage_swap(
            model.into(),
            Arc::new(loaded.network),
            loaded.mirror.map(Arc::new),
            predictors,
            canary,
        )
    }

    fn stage_swap(
        &self,
        model: ModelId,
        network: Arc<DeepRnn>,
        mirror: Option<Arc<BinaryNetwork>>,
        predictors: &[PredictorKind],
        canary: CanaryConfig,
    ) -> Result<ModelVersion, EngineError> {
        canary.validate()?;
        self.apply_ready_swaps();
        let mut registry = self.registry.write().expect("registry lock");
        let mut state = self.shared.state.lock().expect("engine state lock");
        if state.shutdown {
            return Err(EngineError::ShutDown);
        }
        let from = registry
            .version(&model)
            .ok_or_else(|| EngineError::UnknownModel {
                model: model.clone(),
            })?;
        // A decided-but-not-yet-applied swap still owns the staged
        // slot; `stage` rejects it below via the staged entry.
        let to = registry.stage(&model, network, mirror, predictors)?;
        if self.autotune {
            registry.autotune_staged(&model, self.lanes);
        }
        state.swaps.push(SwapState {
            model,
            from,
            to,
            config: canary,
            seen: 0,
            routed: 0,
            matched: 0,
            max_abs_diff: 0.0,
            pending: HashMap::new(),
            decision: None,
            canary_stats: ReuseStats::new(),
            incumbent_stats: ReuseStats::new(),
        });
        Ok(to)
    }

    /// Removes `model` from the registry: new submissions naming it get
    /// [`EngineError::UnknownModel`], while everything already admitted
    /// runs to its response on the retired weights.  A staged swap for
    /// the model is discarded with it.
    ///
    /// # Errors
    ///
    /// * [`EngineError::UnknownModel`] — `model` is not registered;
    /// * [`EngineError::CannotEvictLast`] — it is the only model.
    pub fn evict_model(&self, model: impl Into<ModelId>) -> Result<(), EngineError> {
        let model = model.into();
        self.apply_ready_swaps();
        let mut registry = self.registry.write().expect("registry lock");
        let mut state = self.shared.state.lock().expect("engine state lock");
        registry.evict(&model)?;
        // Orphan the model's canary bookkeeping: in-flight pair halves
        // still emit (and balance `outstanding`), they just no longer
        // find a pending slot to compare into.
        state.swaps.retain(|s| s.model != model);
        Ok(())
    }

    /// Progress of the staged swap for `model`, `None` when no swap is
    /// staged (finished swaps move to [`Engine::swap_reports`]).
    /// Applies any decision whose last canary pair has landed.
    pub fn swap_status(&self, model: impl Into<ModelId>) -> Option<SwapStatus> {
        let model = model.into();
        self.apply_ready_swaps();
        let state = self.shared.state.lock().expect("engine state lock");
        state
            .swaps
            .iter()
            .find(|s| s.model == model)
            .map(|s| SwapStatus {
                model: s.model.clone(),
                from: s.from,
                to: s.to,
                seen: s.seen,
                canaries: s.routed,
                matched: s.matched,
                in_flight: s.pending.len(),
                decision: s.decision,
            })
    }

    /// Takes the reports of every swap that finished (decision applied
    /// to the registry) since the last call.
    pub fn swap_reports(&self) -> Vec<SwapReport> {
        self.apply_ready_swaps();
        std::mem::take(
            &mut self
                .shared
                .state
                .lock()
                .expect("engine state lock")
                .swap_reports,
        )
    }

    /// Applies every decided swap whose canary pairs have all landed:
    /// promotion installs the staged version as live, rollback discards
    /// it.  Takes the registry write lock *then* the state lock (the
    /// engine-wide order), which is why the emit path only records
    /// decisions — it already holds the state lock.
    fn apply_ready_swaps(&self) {
        let mut registry = self.registry.write().expect("registry lock");
        let mut state = self.shared.state.lock().expect("engine state lock");
        let mut i = 0;
        while i < state.swaps.len() {
            let ready = state.swaps[i].decision.is_some() && state.swaps[i].pending.is_empty();
            if !ready {
                i += 1;
                continue;
            }
            let swap = state.swaps.remove(i);
            let outcome = swap.decision.expect("checked ready above");
            match outcome {
                SwapOutcome::Promoted => registry.promote(&swap.model),
                SwapOutcome::RolledBack => registry.discard_staged(&swap.model),
            }
            state.swap_reports.push(SwapReport {
                model: swap.model,
                from: swap.from,
                to: swap.to,
                outcome,
                canaries: swap.routed,
                matched: swap.matched,
                max_abs_diff: swap.max_abs_diff,
                canary_stats: swap.canary_stats,
                incumbent_stats: swap.incumbent_stats,
            });
        }
    }

    /// Lets paused workers start pulling work.
    pub fn resume(&self) {
        let mut state = self.shared.state.lock().expect("engine state lock");
        state.paused = false;
        self.shared.work_cv.notify_all();
    }

    /// Requests submitted but not yet answered (queued or in flight).
    pub fn pending(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("engine state lock")
            .outstanding
    }

    /// Requests waiting in the submission queue right now (excluding
    /// requests already on a lane).  This is the number
    /// [`queue_capacity`](Engine::queue_capacity) bounds — the signal
    /// admission control in front of the engine (e.g. the `nfm-net`
    /// listener's load shedding) watches to start rejecting
    /// low-priority traffic *before* the queue hard-fails everyone
    /// with [`EngineError::QueueFull`].
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("engine state lock")
            .queue
            .len()
    }

    /// Whether [`initiate_shutdown`](Engine::initiate_shutdown) (or a
    /// consuming [`shutdown`](Engine::shutdown)) has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("engine state lock")
            .shutdown
    }

    /// Starts a graceful drain without consuming the engine: every
    /// further [`submit`](Engine::submit) returns
    /// [`EngineError::ShutDown`], while everything already admitted
    /// keeps running to its response (paused workers are woken so the
    /// queue always drains).  Collect the tail with
    /// [`take_completed`](Engine::take_completed) /
    /// [`drain`](Engine::drain), then call
    /// [`shutdown`](Engine::shutdown) to join the workers.  Idempotent.
    pub fn initiate_shutdown(&self) {
        self.begin_shutdown();
    }

    /// Takes every response completed so far, without blocking.
    pub fn take_completed(&self) -> Vec<InferenceResponse> {
        std::mem::take(
            &mut self
                .shared
                .state
                .lock()
                .expect("engine state lock")
                .responses,
        )
    }

    /// Blocks until every submitted request has a response, then takes
    /// them all.  Resumes a paused engine first.
    ///
    /// `drain` waits for full quiescence — zero outstanding requests
    /// *and* every worker parked — so the per-context counters behind
    /// [`context_stats`](Engine::context_stats) are complete for all
    /// returned responses by the time it returns.
    pub fn drain(&self) -> Vec<InferenceResponse> {
        let responses = {
            let mut state = self.shared.state.lock().expect("engine state lock");
            if state.paused {
                state.paused = false;
                self.shared.work_cv.notify_all();
            }
            // During shutdown workers exit instead of parking, so the
            // idle-worker quiescence condition only applies to a live
            // engine (`shutdown` reaches quiescence by joining instead).
            while state.outstanding > 0 || (!state.shutdown && state.idle_workers < self.workers) {
                state = self.shared.done_cv.wait(state).expect("engine state lock");
            }
            std::mem::take(&mut state.responses)
        };
        // Quiescence means every canary pair has landed: apply any swap
        // decision now, so traffic after this drain resolves against
        // the promoted (or rolled-back) registry.
        self.apply_ready_swaps();
        responses
    }

    /// The first internal execution error any worker hit, if any (the
    /// affected requests were answered with
    /// [`CompletionStatus::Rejected`](crate::CompletionStatus::Rejected)).
    pub fn last_error(&self) -> Option<String> {
        self.shared
            .state
            .lock()
            .expect("engine state lock")
            .error
            .clone()
    }

    /// Stops accepting work, finishes everything already submitted
    /// (paused engines are resumed), joins the workers and returns the
    /// remaining responses.
    pub fn shutdown(mut self) -> Vec<InferenceResponse> {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        std::mem::take(
            &mut self
                .shared
                .state
                .lock()
                .expect("engine state lock")
                .responses,
        )
    }

    fn begin_shutdown(&self) {
        let mut state = self.shared.state.lock().expect("engine state lock");
        state.shutdown = true;
        self.shared.work_cv.notify_all();
        // Wake `drain` waiters too: their quiescence condition changes
        // shape under shutdown (workers exit instead of parking).
        self.shared.done_cv.notify_all();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
