//! # nfm-serve — request-oriented inference serving
//!
//! The serving front door of the NFM reproduction.  The paper's
//! memoization scheme targets *inference serving* — batch-of-one
//! sequences arriving continuously — so the public unit of work here is
//! a **request**, not a pre-collected workload:
//!
//! * [`InferenceRequest`] — one sequence, an optional deadline,
//!   per-request [`RequestOptions`] (model, predictor, threshold
//!   override, priority), and a caller-chosen id.
//! * [`ModelRegistry`] — the open serving surface: [`ModelId`] →
//!   network + named [`Predictor`] set.  Built-in predictors register
//!   by [`PredictorKind`]; custom [`Predictor`] implementations
//!   register next to them and are served identically.  One engine
//!   serves every registered model concurrently.
//! * [`Engine`] / [`EngineBuilder`] — a bounded, priority-aware
//!   submission queue (backpressure via [`EngineError::QueueFull`]) in
//!   front of worker threads; each worker builds one private evaluator
//!   per served (model, predictor, threshold) combination and
//!   interleaves their lane schedulers.  Every context runs the unified
//!   [`LaneScheduler`](nfm_rnn::LaneScheduler); unidirectional stacks
//!   use [`RefillPolicy::Block`](nfm_rnn::RefillPolicy), which refills
//!   a drained lane from the queue *immediately* (mid-wave lane
//!   refill), hoists inputs across whole 8-step blocks, and aborts
//!   expired in-flight requests between blocks.  Hot contexts borrow
//!   idle lanes from cold ones, and saturated workers donate in-flight
//!   lanes to idle workers — all without changing results.
//! * [`InferenceResponse`] — per-request outputs, per-request
//!   [`ReuseStats`](nfm_core::ReuseStats), queue/compute latency, and a
//!   [`CompletionStatus`] (`Done` / `DeadlineExpired` / `Rejected`);
//!   every admitted request is reported exactly once.
//! * [`MemoizedRunner`] / [`InferenceWorkload`] — the workload-level
//!   API, kept as thin wrappers over the engine (bit-identical results
//!   by test).
//!
//! # Example
//!
//! ```
//! use nfm_serve::{Engine, EngineBuilder, InferenceRequest, PredictorKind};
//! use nfm_core::BnnMemoConfig;
//! use nfm_rnn::{CellKind, DeepRnn, DeepRnnConfig};
//! use nfm_tensor::rng::DeterministicRng;
//! use nfm_tensor::Vector;
//!
//! let mut rng = DeterministicRng::seed_from_u64(9);
//! let net = DeepRnn::random(&DeepRnnConfig::new(CellKind::Lstm, 4, 8), &mut rng).unwrap();
//! let engine = EngineBuilder::new(net, PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)))
//!     .lanes(2)
//!     .workers(1)
//!     .queue_capacity(16)
//!     .build()
//!     .unwrap();
//! for id in 0..4u64 {
//!     let seq: Vec<Vector> =
//!         (0..6).map(|t| Vector::from_fn(4, |i| (id as f32) * 0.1 + (t + i) as f32 * 0.05)).collect();
//!     engine.submit(InferenceRequest::new(id, seq)).unwrap();
//! }
//! let responses = engine.shutdown();
//! assert_eq!(responses.len(), 4);
//! assert!(responses.iter().all(|r| r.is_done()));
//! ```

pub mod engine;
pub mod registry;
pub mod request;
pub mod runner;
mod worker;

pub use engine::{
    CanaryConfig, CanaryRule, ContextStats, Engine, EngineBuilder, EngineError, SwapOutcome,
    SwapReport, SwapStatus, DEFAULT_MODEL,
};
pub use nfm_tensor::backend::KernelBackend;
pub use registry::{ModelId, ModelRegistry, ModelVersion};
pub use request::{
    CompletionStatus, DeadlinePolicy, InferenceRequest, InferenceResponse, Priority, RequestId,
    RequestOptions,
};
pub use runner::{InferenceWorkload, MemoizedRunner, PredictorKind, RunOutcome};

// The open predictor abstraction lives in `nfm-core`; re-exported here
// because the serving engine is where implementations plug in.
pub use nfm_core::{BnnPredictor, ExactPredictor, OraclePredictor, Predictor, ServedEvaluator};
