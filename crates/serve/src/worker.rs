//! Per-worker execution: one evaluator plus a lane scheduler.
//!
//! Every engine worker owns a [`LaneWorker`]: its own evaluator (so no
//! synchronization ever touches the hot path) and one of three lane
//! schedules picked at construction:
//!
//! * **Single** (`lanes == 1`) — requests run one at a time through
//!   [`DeepRnn::run`], the exact single-sequence hot path.
//! * **Pipeline** (`lanes > 1`, unidirectional stack) — the
//!   step-pipelined scheduler ([`StepPipeline`]): lanes advance
//!   timestep-by-timestep through the whole stack and a drained lane is
//!   refilled from the queue *immediately* (mid-wave refill).
//! * **Wave** (`lanes > 1`, bidirectional stack) — layer-lockstep
//!   waves via [`DeepRnn::run_batch`]; freed lanes refill at wave
//!   boundaries (the backward halves need whole sequences up front).
//!
//! All three produce bit-identical per-request outputs and reuse
//! statistics: scheduling never changes results, only latency.

use crate::request::{
    CompletionStatus, DeadlinePolicy, InferenceRequest, InferenceResponse, RequestId,
};
use crate::runner::PredictorKind;
use nfm_bnn::BinaryNetwork;
use nfm_core::{BnnMemoEvaluator, OracleEvaluator, ReuseStats};
use nfm_rnn::{DeepRnn, ExactEvaluator, FinishedLane, NeuronEvaluator, StepPipeline};
use nfm_tensor::Vector;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A request plus its submission timestamp (queue-latency anchor).
#[derive(Debug)]
pub(crate) struct QueuedRequest {
    pub req: InferenceRequest,
    pub submitted_at: Instant,
}

impl QueuedRequest {
    fn expired(&self) -> bool {
        match self.req.deadline {
            Some(deadline) => self.submitted_at.elapsed() > deadline,
            None => false,
        }
    }
}

/// One worker's evaluator, constructed per worker so the hot path is
/// lock-free.
pub(crate) enum WorkerEvaluator {
    Exact(ExactEvaluator),
    Oracle(OracleEvaluator),
    Bnn(Box<BnnMemoEvaluator>),
}

impl WorkerEvaluator {
    pub(crate) fn build(
        predictor: PredictorKind,
        network: &DeepRnn,
        mirror: Option<&BinaryNetwork>,
    ) -> WorkerEvaluator {
        match predictor {
            PredictorKind::Exact => WorkerEvaluator::Exact(ExactEvaluator::new()),
            PredictorKind::Oracle(config) => {
                WorkerEvaluator::Oracle(OracleEvaluator::for_network(network, config))
            }
            PredictorKind::Bnn(config) => {
                let mirror = mirror.expect("mirror prebuilt for BNN runs").clone();
                WorkerEvaluator::Bnn(Box::new(BnnMemoEvaluator::new(mirror, config)))
            }
        }
    }

    pub(crate) fn as_dyn(&mut self) -> &mut dyn NeuronEvaluator {
        match self {
            WorkerEvaluator::Exact(e) => e,
            WorkerEvaluator::Oracle(e) => e,
            WorkerEvaluator::Bnn(e) => e.as_mut(),
        }
    }

    /// Takes the statistics attributable to the request that just
    /// finished on `lane` of a batched schedule.  The exact evaluator
    /// keeps no per-lane counters — every neuron of every timestep is
    /// computed, so its per-request statistics are exactly
    /// `timesteps * evals_per_step` computed evaluations.
    fn take_lane_stats(
        &mut self,
        lane: usize,
        timesteps: usize,
        evals_per_step: u64,
    ) -> ReuseStats {
        match self {
            WorkerEvaluator::Exact(_) => {
                let mut stats = ReuseStats::new();
                stats.record_computed_many(timesteps as u64 * evals_per_step);
                stats
            }
            WorkerEvaluator::Oracle(e) => e.take_lane_stats(lane),
            WorkerEvaluator::Bnn(e) => e.take_lane_stats(lane),
        }
    }

    /// Clears the aggregate counters before a single-mode request so
    /// the post-run snapshot is that request's own statistics.
    fn reset_stats(&mut self) {
        match self {
            WorkerEvaluator::Exact(_) => {}
            WorkerEvaluator::Oracle(e) => e.reset_stats(),
            WorkerEvaluator::Bnn(e) => e.reset_stats(),
        }
    }

    /// Snapshot of the aggregate counters after a single-mode request.
    fn stats_snapshot(&self, timesteps: usize, evals_per_step: u64) -> ReuseStats {
        match self {
            WorkerEvaluator::Exact(_) => {
                let mut stats = ReuseStats::new();
                stats.record_computed_many(timesteps as u64 * evals_per_step);
                stats
            }
            WorkerEvaluator::Oracle(e) => *e.stats(),
            WorkerEvaluator::Bnn(e) => *e.stats(),
        }
    }
}

/// A request occupying a pipeline lane.
struct Inflight {
    id: RequestId,
    deadline: Option<Duration>,
    submitted_at: Instant,
    admitted_at: Instant,
    timesteps: usize,
}

/// Step-pipeline bookkeeping (boxed in [`Mode`] to keep the enum
/// small: one worker holds exactly one of these for its lifetime).
struct PipelineMode {
    pipeline: StepPipeline,
    inflight: HashMap<u64, Inflight>,
    finished: Vec<FinishedLane>,
    next_token: u64,
}

enum Mode {
    Single,
    Pipeline(Box<PipelineMode>),
    Wave { lanes: usize },
}

/// One worker: evaluator + lane scheduler + response assembly.
pub(crate) struct LaneWorker {
    network: Arc<DeepRnn>,
    evaluator: WorkerEvaluator,
    policy: DeadlinePolicy,
    evals_per_step: u64,
    mode: Mode,
}

impl LaneWorker {
    /// Builds a worker.  The mode is picked from `lanes` and the
    /// network's direction; the caller guarantees `lanes >= 1`.
    pub(crate) fn new(
        network: Arc<DeepRnn>,
        predictor: PredictorKind,
        mirror: Option<&BinaryNetwork>,
        lanes: usize,
        policy: DeadlinePolicy,
    ) -> LaneWorker {
        debug_assert!(lanes >= 1);
        let mut evaluator = WorkerEvaluator::build(predictor, &network, mirror);
        let unidirectional = network.layers().iter().all(|l| !l.is_bidirectional());
        let mode = if lanes == 1 {
            Mode::Single
        } else if unidirectional {
            let pipeline =
                StepPipeline::new(&network, lanes).expect("unidirectional stack, lanes >= 1");
            // Size the evaluator's per-lane state once up front.
            evaluator.as_dyn().begin_batch(lanes);
            Mode::Pipeline(Box::new(PipelineMode {
                pipeline,
                inflight: HashMap::new(),
                finished: Vec::new(),
                next_token: 0,
            }))
        } else {
            Mode::Wave { lanes }
        };
        let evals_per_step = network.neuron_evaluations_per_step() as u64;
        LaneWorker {
            network,
            evaluator,
            policy,
            evals_per_step,
            mode,
        }
    }

    /// Drains work from `pull` until it returns `None` and every
    /// admitted lane has finished, emitting one response per request.
    /// Internal execution errors (which submit-time validation makes
    /// unreachable for well-formed engines) turn the affected requests
    /// into [`CompletionStatus::Rejected`] responses — never silently
    /// dropped — and are passed to `report` *before* those responses
    /// are emitted, so a caller observing a rejected response always
    /// finds the root cause already recorded.
    pub(crate) fn pump(
        &mut self,
        pull: &mut dyn FnMut() -> Option<QueuedRequest>,
        emit: &mut dyn FnMut(InferenceResponse),
        report: &mut dyn FnMut(String),
    ) {
        match &mut self.mode {
            Mode::Single => {
                while let Some(q) = pull() {
                    let queue_latency = q.submitted_at.elapsed();
                    if q.expired() && self.policy == DeadlinePolicy::DropExpired {
                        emit(expired_response(&q, queue_latency));
                        continue;
                    }
                    self.evaluator.reset_stats();
                    let started = Instant::now();
                    let result = self.network.run(&q.req.sequence, self.evaluator.as_dyn());
                    let compute_latency = started.elapsed();
                    match result {
                        Ok(outputs) => {
                            let stats = self
                                .evaluator
                                .stats_snapshot(q.req.sequence.len(), self.evals_per_step);
                            emit(InferenceResponse {
                                id: q.req.id,
                                status: completion_status(&q.req.deadline, q.submitted_at),
                                outputs,
                                stats,
                                queue_latency,
                                compute_latency,
                            });
                        }
                        Err(e) => {
                            report(e.to_string());
                            emit(rejected_response(q.req.id, queue_latency, compute_latency));
                        }
                    }
                }
            }
            Mode::Wave { lanes } => {
                let lanes = *lanes;
                loop {
                    let mut wave: Vec<QueuedRequest> = Vec::with_capacity(lanes);
                    while wave.len() < lanes {
                        match pull() {
                            Some(q) => {
                                if q.expired() && self.policy == DeadlinePolicy::DropExpired {
                                    emit(expired_response(&q, q.submitted_at.elapsed()));
                                    continue;
                                }
                                wave.push(q);
                            }
                            None => break,
                        }
                    }
                    if wave.is_empty() {
                        return;
                    }
                    // Longest-first (stable) so wave lane `l` is request
                    // `l`: run_batch re-sorts stably, which is then the
                    // identity, and per-lane stats map back directly.
                    wave.sort_by_key(|q| std::cmp::Reverse(q.req.sequence.len()));
                    let refs: Vec<&[Vector]> =
                        wave.iter().map(|q| q.req.sequence.as_slice()).collect();
                    let admitted_at = Instant::now();
                    match self.network.run_batch(&refs, self.evaluator.as_dyn()) {
                        Ok(outputs) => {
                            let compute_latency = admitted_at.elapsed();
                            for (lane, (q, outputs)) in wave.iter().zip(outputs).enumerate() {
                                let stats = self.evaluator.take_lane_stats(
                                    lane,
                                    q.req.sequence.len(),
                                    self.evals_per_step,
                                );
                                emit(InferenceResponse {
                                    id: q.req.id,
                                    status: completion_status(&q.req.deadline, q.submitted_at),
                                    outputs,
                                    stats,
                                    queue_latency: admitted_at.duration_since(q.submitted_at),
                                    compute_latency,
                                });
                            }
                        }
                        Err(e) => {
                            report(e.to_string());
                            let compute_latency = admitted_at.elapsed();
                            for q in &wave {
                                emit(rejected_response(
                                    q.req.id,
                                    admitted_at.duration_since(q.submitted_at),
                                    compute_latency,
                                ));
                            }
                        }
                    }
                }
            }
            Mode::Pipeline(mode) => {
                let PipelineMode {
                    pipeline,
                    inflight,
                    finished,
                    next_token,
                } = mode.as_mut();
                loop {
                    // Refill every free lane straight from the queue —
                    // this is the mid-wave refill: it happens per step,
                    // not per wave.
                    while pipeline.free_lanes() > 0 {
                        match pull() {
                            Some(q) => {
                                let queue_latency = q.submitted_at.elapsed();
                                if q.expired() && self.policy == DeadlinePolicy::DropExpired {
                                    emit(expired_response(&q, queue_latency));
                                    continue;
                                }
                                let token = *next_token;
                                *next_token += 1;
                                let timesteps = q.req.sequence.len();
                                // Timestamp before admit(): the
                                // admission-time W_x hoist is real
                                // compute and must land in
                                // compute_latency, not queue_latency.
                                let admitted_at = Instant::now();
                                match pipeline.admit(
                                    token,
                                    q.req.sequence,
                                    &self.network,
                                    self.evaluator.as_dyn(),
                                ) {
                                    Ok(()) => {
                                        inflight.insert(
                                            token,
                                            Inflight {
                                                id: q.req.id,
                                                deadline: q.req.deadline,
                                                submitted_at: q.submitted_at,
                                                admitted_at,
                                                timesteps,
                                            },
                                        );
                                    }
                                    Err(e) => {
                                        report(e.to_string());
                                        emit(rejected_response(
                                            q.req.id,
                                            queue_latency,
                                            Duration::ZERO,
                                        ));
                                    }
                                }
                            }
                            None => break,
                        }
                    }
                    if pipeline.is_idle() {
                        return;
                    }
                    match pipeline.step(&self.network, self.evaluator.as_dyn(), finished) {
                        Ok(_) => {
                            // Read each finished lane's stats before the
                            // next admission reuses its slot.
                            for f in finished.drain(..) {
                                let info = inflight.remove(&f.token).expect("lane tracked");
                                let stats = self.evaluator.take_lane_stats(
                                    f.stats_lane,
                                    info.timesteps,
                                    self.evals_per_step,
                                );
                                emit(InferenceResponse {
                                    id: info.id,
                                    status: completion_status(&info.deadline, info.submitted_at),
                                    outputs: f.outputs,
                                    stats,
                                    queue_latency: info
                                        .admitted_at
                                        .duration_since(info.submitted_at),
                                    compute_latency: info.admitted_at.elapsed(),
                                });
                            }
                        }
                        Err(e) => {
                            // Unreachable for validated submissions; fail
                            // the in-flight requests loudly and restart
                            // the pipeline with fresh lanes.
                            report(e.to_string());
                            for (_, info) in inflight.drain() {
                                emit(rejected_response(
                                    info.id,
                                    info.admitted_at.duration_since(info.submitted_at),
                                    info.admitted_at.elapsed(),
                                ));
                            }
                            let lanes = pipeline.lanes();
                            *pipeline = StepPipeline::new(&self.network, lanes)
                                .expect("same network accepted these lanes before");
                            self.evaluator.as_dyn().begin_batch(lanes);
                            finished.clear();
                        }
                    }
                }
            }
        }
    }
}

/// Status of a computed request: late if its deadline elapsed anywhere
/// between submission and now.
fn completion_status(deadline: &Option<Duration>, submitted_at: Instant) -> CompletionStatus {
    match deadline {
        Some(d) if submitted_at.elapsed() > *d => CompletionStatus::DeadlineExpired,
        _ => CompletionStatus::Done,
    }
}

fn expired_response(q: &QueuedRequest, queue_latency: Duration) -> InferenceResponse {
    InferenceResponse {
        id: q.req.id,
        status: CompletionStatus::DeadlineExpired,
        outputs: Vec::new(),
        stats: ReuseStats::new(),
        queue_latency,
        compute_latency: Duration::ZERO,
    }
}

fn rejected_response(
    id: RequestId,
    queue_latency: Duration,
    compute_latency: Duration,
) -> InferenceResponse {
    InferenceResponse {
        id,
        status: CompletionStatus::Rejected,
        outputs: Vec::new(),
        stats: ReuseStats::new(),
        queue_latency,
        compute_latency,
    }
}
