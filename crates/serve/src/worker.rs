//! Per-worker execution: one lane scheduler + evaluator per served
//! (model, predictor, threshold) combination.
//!
//! Every engine worker owns a [`LaneWorker`].  Requests arrive already
//! resolved against the registry (network +
//! [`Predictor`](nfm_core::Predictor) factory + [`ContextKey`]); the
//! worker groups them into **execution contexts** — one per distinct
//! key, created lazily on first use — and interleaves the non-idle
//! contexts one timestep at a time, so an engine serving several
//! models makes progress on all of them concurrently even with a
//! single worker thread.  The exception is bidirectional models: their
//! waves run to completion in one piece (`run_batch` needs whole
//! sequences), pausing the worker's other contexts for the wave's
//! duration — give latency-sensitive mixes of uni- and bidirectional
//! models separate workers.
//!
//! Each context owns a private evaluator (built once from the shared
//! factory — no weight or mirror clones) and one of three lane
//! schedules picked from the engine's lane count and the model's
//! direction:
//!
//! * **Single** (`lanes == 1`) — requests run one at a time through
//!   [`DeepRnn::run`], the exact single-sequence hot path.
//! * **Pipeline** (`lanes > 1`, unidirectional stack) — the
//!   step-pipelined scheduler ([`StepPipeline`]): lanes advance
//!   timestep-by-timestep through the whole stack, a drained lane is
//!   refilled from the queue *immediately* (mid-wave refill), and an
//!   in-flight request whose deadline expires is aborted **between
//!   timesteps** (under [`DeadlinePolicy::DropExpired`]), freeing its
//!   lane without computing the remaining steps.
//! * **Wave** (`lanes > 1`, bidirectional stack) — layer-lockstep
//!   waves via [`DeepRnn::run_batch`]; freed lanes refill at wave
//!   boundaries (the backward halves need whole sequences up front).
//!
//! All three produce bit-identical per-request outputs and reuse
//! statistics: scheduling never changes results, only latency.

use crate::registry::{ContextKey, Resolved};
use crate::request::{
    CompletionStatus, DeadlinePolicy, InferenceRequest, InferenceResponse, RequestId,
};
use nfm_core::{ReuseStats, ServedEvaluator};
use nfm_rnn::{DeepRnn, FinishedLane, StepPipeline};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A request plus its submission timestamp (queue-latency anchor) and
/// its registry resolution.
#[derive(Debug)]
pub(crate) struct QueuedRequest {
    pub req: InferenceRequest,
    pub submitted_at: Instant,
    pub resolved: Resolved,
}

impl QueuedRequest {
    fn expired(&self) -> bool {
        match self.req.deadline {
            Some(deadline) => self.submitted_at.elapsed() > deadline,
            None => false,
        }
    }
}

/// A request occupying a pipeline lane.
struct Inflight {
    id: RequestId,
    deadline: Option<Duration>,
    submitted_at: Instant,
    admitted_at: Instant,
    timesteps: usize,
}

/// Step-pipeline bookkeeping.
struct PipelineSched {
    pipeline: StepPipeline,
    inflight: HashMap<u64, Inflight>,
    finished: Vec<FinishedLane>,
    next_token: u64,
}

/// The lane schedule of one execution context.
enum Scheduler {
    /// `lanes == 1`: requests run one at a time, synchronously at
    /// routing.
    Single,
    /// Unidirectional, `lanes > 1`: step-pipelined with mid-wave refill
    /// and per-step deadline aborts.
    Pipeline(Box<PipelineSched>),
    /// Bidirectional, `lanes > 1`: whole waves through `run_batch`;
    /// `pending` stages the wave (capped at `lanes` by routing).
    Wave { pending: Vec<QueuedRequest> },
}

/// One (model, predictor, threshold) combination being served: private
/// evaluator + lane scheduler.
struct ExecContext {
    key: ContextKey,
    network: Arc<DeepRnn>,
    evaluator: Box<dyn ServedEvaluator>,
    evals_per_step: u64,
    sched: Scheduler,
    /// Worker-clock value of the last request routed here (LRU
    /// eviction of idle threshold-override contexts).
    last_used: u64,
}

impl ExecContext {
    /// Builds a context, reviving a parked evaluator when the worker
    /// held on to one for this key (LRU-evicted override contexts park
    /// their evaluators so recreation reuses the allocations — memo
    /// tables, sign buffers, lane state — instead of rebuilding them).
    fn new(
        key: ContextKey,
        resolved: &Resolved,
        lanes: usize,
        revived: Option<Box<dyn ServedEvaluator>>,
    ) -> ExecContext {
        let network = Arc::clone(&resolved.network);
        let mut evaluator = revived.unwrap_or_else(|| resolved.predictor.build_evaluator(&network));
        // A revived evaluator carries stale aggregate counters; all
        // per-request state is reset at admission, but the counters
        // must start from zero like a fresh build's.
        evaluator.reset_stats();
        let unidirectional = network.layers().iter().all(|l| !l.is_bidirectional());
        let sched = if lanes == 1 {
            Scheduler::Single
        } else if unidirectional {
            let pipeline =
                StepPipeline::new(&network, lanes).expect("unidirectional stack, lanes >= 1");
            // Size the evaluator's per-lane state once up front.
            evaluator.begin_batch(lanes);
            Scheduler::Pipeline(Box::new(PipelineSched {
                pipeline,
                inflight: HashMap::new(),
                finished: Vec::new(),
                next_token: 0,
            }))
        } else {
            Scheduler::Wave {
                pending: Vec::with_capacity(lanes),
            }
        };
        let evals_per_step = network.neuron_evaluations_per_step() as u64;
        ExecContext {
            key,
            network,
            evaluator,
            evals_per_step,
            sched,
            last_used: 0,
        }
    }

    /// Whether this context holds no admitted or staged work.
    fn is_idle(&self) -> bool {
        match &self.sched {
            Scheduler::Single => true,
            Scheduler::Pipeline(p) => p.pipeline.is_idle(),
            Scheduler::Wave { pending } => pending.is_empty(),
        }
    }

    /// Whether this context can take one more request right now (the
    /// worker's queue-pull admissibility predicate).
    fn can_accept(&self, lanes: usize) -> bool {
        match &self.sched {
            Scheduler::Single => true,
            Scheduler::Pipeline(p) => p.pipeline.free_lanes() > 0,
            Scheduler::Wave { pending } => pending.len() < lanes,
        }
    }

    /// Statistics attributable to the request that just left `lane`
    /// (see [`harvest_lane_stats`]).
    fn take_lane_stats(&mut self, lane: usize, timesteps: usize) -> ReuseStats {
        harvest_lane_stats(
            self.evaluator.as_mut(),
            self.evals_per_step,
            lane,
            timesteps,
        )
    }

    /// Snapshot of the aggregate counters after a single-mode request
    /// (the evaluator was [`reset`](ServedEvaluator::reset_stats)
    /// before it ran); synthesized for untracked evaluators.
    fn stats_snapshot(&self, timesteps: usize) -> ReuseStats {
        self.evaluator.stats_snapshot().unwrap_or_else(|| {
            let mut stats = ReuseStats::new();
            stats.record_computed_many(timesteps as u64 * self.evals_per_step);
            stats
        })
    }
}

/// Statistics attributable to the request that just left `lane`:
/// harvested from the evaluator when it tracks per-lane counters,
/// synthesized as all-computed otherwise (correct for evaluators that
/// never skip work — the exact baseline and plain custom evaluators).
fn harvest_lane_stats(
    evaluator: &mut dyn ServedEvaluator,
    evals_per_step: u64,
    lane: usize,
    timesteps: usize,
) -> ReuseStats {
    evaluator.take_lane_stats(lane).unwrap_or_else(|| {
        let mut stats = ReuseStats::new();
        stats.record_computed_many(timesteps as u64 * evals_per_step);
        stats
    })
}

/// Default for how many execution contexts born from per-request
/// threshold overrides one worker keeps alive at once.  Registered
/// (model, predictor) combinations are never evicted — their count is
/// bounded by the registry — but every distinct override θ materializes
/// its own context, and clients sweeping thresholds would otherwise
/// grow worker memory without bound.  Idle override contexts beyond the
/// cap are dropped least-recently-used first, their evaluators parked
/// (also LRU-bounded by the cap) so recreating one revives the parked
/// allocations instead of rebuilding; a miss is just an evaluator build
/// (all per-request state is reset at admission anyway, so neither
/// eviction nor revival ever changes results).  Tune per engine with
/// [`EngineBuilder::override_context_cap`](crate::EngineBuilder::override_context_cap).
pub(crate) const DEFAULT_OVERRIDE_CONTEXT_CAP: usize = 8;

/// The queue-pull callback handed to [`LaneWorker::pump`]: pops the
/// highest-priority queued request satisfying the worker's
/// admissibility predicate, leaving everything else queued.
pub(crate) type PullFn<'a> =
    dyn FnMut(&dyn Fn(&QueuedRequest) -> bool) -> Option<QueuedRequest> + 'a;

/// One worker: a set of execution contexts fed from the shared queue.
pub(crate) struct LaneWorker {
    lanes: usize,
    policy: DeadlinePolicy,
    /// Per-worker bound on idle threshold-override contexts (the
    /// [`EngineBuilder::override_context_cap`](crate::EngineBuilder::override_context_cap)
    /// knob).
    override_context_cap: usize,
    /// Live contexts in creation order (deterministic stepping; one
    /// entry per served combination, override contexts capped by
    /// `override_context_cap`).
    contexts: Vec<ExecContext>,
    /// Evaluators of LRU-evicted override contexts, parked for reuse:
    /// a client sweeping back to a recently-evicted θ gets its old
    /// evaluator's allocations back (memo tables, sign buffers, lane
    /// state) instead of a rebuild.  Bounded by `override_context_cap`,
    /// least-recently-used entries dropped first; per-request state is
    /// reset at admission anyway, so revival never changes results.
    parked: Vec<(ContextKey, Box<dyn ServedEvaluator>, u64)>,
    /// Monotonic routing counter backing context LRU eviction.
    clock: u64,
}

impl LaneWorker {
    /// Builds a worker; contexts appear lazily as resolved requests
    /// arrive.  The caller guarantees `lanes >= 1` and
    /// `override_context_cap >= 1`.
    pub(crate) fn new(
        lanes: usize,
        policy: DeadlinePolicy,
        override_context_cap: usize,
    ) -> LaneWorker {
        debug_assert!(lanes >= 1);
        debug_assert!(override_context_cap >= 1);
        LaneWorker {
            lanes,
            policy,
            override_context_cap,
            contexts: Vec::new(),
            parked: Vec::new(),
            clock: 0,
        }
    }

    /// Drains work from `pull` until it returns `None` and every
    /// context is idle, emitting one response per request.  Internal
    /// execution errors (which submit-time validation makes
    /// unreachable for well-formed engines) turn the affected requests
    /// into [`CompletionStatus::Rejected`] responses — never silently
    /// dropped — and are passed to `report` *before* those responses
    /// are emitted, so a caller observing a rejected response always
    /// finds the root cause already recorded.
    pub(crate) fn pump(
        &mut self,
        pull: &mut PullFn<'_>,
        emit: &mut dyn FnMut(InferenceResponse),
        report: &mut dyn FnMut(String),
    ) {
        loop {
            // Fill phase: pull until the queue has nothing this worker
            // can place right now.  The admissibility predicate keeps
            // requests for saturated contexts *on the shared queue*
            // (skipped, not taken), so this worker never hoards work
            // another worker could serve, a saturated model never
            // stalls the other models, and backpressure accounting
            // stays truthful.  Requests a worker can place are taken
            // strictly in queue priority order.
            loop {
                let lanes = self.lanes;
                let contexts = &self.contexts;
                let admittable = |q: &QueuedRequest| -> bool {
                    match contexts.iter().find(|c| c.key == q.resolved.key) {
                        // New combination: a fresh context always has room.
                        None => true,
                        Some(ctx) => ctx.can_accept(lanes),
                    }
                };
                let Some(q) = pull(&admittable) else { break };
                self.route(q, emit, report);
            }
            // Step phase: one timestep for every active pipeline.
            // Non-empty waves are due now — the fill phase just proved
            // the queue holds nothing more this worker could add.
            let progressed = self.step_contexts(emit, report);
            if !progressed && self.contexts.iter().all(ExecContext::is_idle) {
                return;
            }
        }
    }

    /// Index of the context for `key`, creating it on first use (and
    /// evicting a stale idle threshold-override context when the
    /// override population outgrows the configured cap).
    fn context_index(&mut self, q: &QueuedRequest) -> usize {
        self.clock += 1;
        let clock = self.clock;
        match self.contexts.iter().position(|c| c.key == q.resolved.key) {
            Some(i) => {
                self.contexts[i].last_used = clock;
                i
            }
            None => {
                let mut revived = None;
                if q.resolved.key.threshold_bits.is_some() {
                    self.evict_stale_override_contexts();
                    // Evict first, then check the parked pool: a θ the
                    // client swept away from and is now sweeping back
                    // to gets its old evaluator's allocations back.
                    if let Some(pos) = self
                        .parked
                        .iter()
                        .position(|(key, _, _)| *key == q.resolved.key)
                    {
                        revived = Some(self.parked.remove(pos).1);
                    }
                }
                let mut ctx =
                    ExecContext::new(q.resolved.key.clone(), &q.resolved, self.lanes, revived);
                ctx.last_used = clock;
                self.contexts.push(ctx);
                self.contexts.len() - 1
            }
        }
    }

    /// Drops least-recently-used *idle* threshold-override contexts
    /// until their population is back under the cap (a burst of
    /// distinct overrides can overshoot it while every context still
    /// holds work — this shrinks the population as they drain, instead
    /// of ratcheting).  Contexts with admitted or staged work are
    /// never touched, and neither are the registered (no-override)
    /// combinations.
    fn evict_stale_override_contexts(&mut self) {
        loop {
            let overrides = self
                .contexts
                .iter()
                .filter(|c| c.key.threshold_bits.is_some())
                .count();
            if overrides < self.override_context_cap {
                return;
            }
            let victim = self
                .contexts
                .iter()
                .enumerate()
                .filter(|(_, c)| c.key.threshold_bits.is_some() && c.is_idle())
                .min_by_key(|(_, c)| c.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let ctx = self.contexts.remove(i);
                    self.park_evaluator(ctx);
                }
                // Everything over the cap is busy; try again when the
                // next override context is created.
                None => return,
            }
        }
    }

    /// Parks an evicted override context's evaluator for later revival,
    /// keeping the pool itself under the override cap (oldest parked
    /// entry dropped first).
    fn park_evaluator(&mut self, ctx: ExecContext) {
        self.parked.push((ctx.key, ctx.evaluator, ctx.last_used));
        while self.parked.len() > self.override_context_cap {
            let oldest = self
                .parked
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, last_used))| *last_used)
                .map(|(i, _)| i)
                .expect("pool is non-empty past the cap");
            self.parked.remove(oldest);
        }
    }

    /// Routes one pulled request: runs it (single mode), admits it
    /// (pipeline), or stages it (wave).  The pull predicate guarantees
    /// the context has room; the full-context branches below are
    /// defensive (they fail the request loudly instead of hanging the
    /// engine if that invariant is ever broken).
    fn route(
        &mut self,
        q: QueuedRequest,
        emit: &mut dyn FnMut(InferenceResponse),
        report: &mut dyn FnMut(String),
    ) {
        let queue_latency = q.submitted_at.elapsed();
        if q.expired() && self.policy == DeadlinePolicy::DropExpired {
            emit(expired_response(&q, queue_latency, Duration::ZERO));
            return;
        }
        let lanes = self.lanes;
        let idx = self.context_index(&q);
        let ctx = &mut self.contexts[idx];
        match &mut ctx.sched {
            Scheduler::Single => {
                run_single(ctx, q, queue_latency, emit, report);
            }
            Scheduler::Wave { pending } => {
                if pending.len() >= lanes {
                    debug_assert!(false, "pull predicate admitted into a full wave");
                    report("request routed to a full wave context".into());
                    emit(rejected_response(q.req.id, queue_latency, Duration::ZERO));
                    return;
                }
                pending.push(q);
            }
            Scheduler::Pipeline(sched) => {
                if sched.pipeline.free_lanes() == 0 {
                    debug_assert!(false, "pull predicate admitted into a full pipeline");
                    report("request routed to a full pipeline context".into());
                    emit(rejected_response(q.req.id, queue_latency, Duration::ZERO));
                    return;
                }
                let token = sched.next_token;
                sched.next_token += 1;
                let timesteps = q.req.sequence.len();
                // Timestamp before admit(): the admission-time W_x
                // hoist is real compute and must land in
                // compute_latency, not queue_latency.
                let admitted_at = Instant::now();
                match sched.pipeline.admit(
                    token,
                    q.req.sequence,
                    &ctx.network,
                    ctx.evaluator.as_mut(),
                ) {
                    Ok(()) => {
                        sched.inflight.insert(
                            token,
                            Inflight {
                                id: q.req.id,
                                deadline: q.req.deadline,
                                submitted_at: q.submitted_at,
                                admitted_at,
                                timesteps,
                            },
                        );
                    }
                    Err(e) => {
                        report(e.to_string());
                        emit(rejected_response(q.req.id, queue_latency, Duration::ZERO));
                    }
                }
            }
        }
    }

    /// Advances every non-idle context: active pipelines by exactly one
    /// timestep (after aborting expired in-flight requests), staged
    /// waves in full.  Returns whether any compute happened.
    fn step_contexts(
        &mut self,
        emit: &mut dyn FnMut(InferenceResponse),
        report: &mut dyn FnMut(String),
    ) -> bool {
        let mut progressed = false;
        let policy = self.policy;
        for ctx in &mut self.contexts {
            match &mut ctx.sched {
                Scheduler::Single => {}
                Scheduler::Wave { pending } => {
                    // Any staged wave is due: the fill phase stops only
                    // when the queue holds nothing more this worker
                    // could stage, so waiting longer gains nothing.
                    if !pending.is_empty() {
                        let wave = std::mem::take(pending);
                        run_wave(ctx, wave, policy, emit, report);
                        progressed = true;
                    }
                }
                Scheduler::Pipeline(_) => {
                    if step_pipeline(ctx, policy, emit, report) {
                        progressed = true;
                    }
                }
            }
        }
        progressed
    }
}

/// Runs one request synchronously on a `lanes == 1` context.
fn run_single(
    ctx: &mut ExecContext,
    q: QueuedRequest,
    queue_latency: Duration,
    emit: &mut dyn FnMut(InferenceResponse),
    report: &mut dyn FnMut(String),
) {
    ctx.evaluator.reset_stats();
    let started = Instant::now();
    let result = ctx.network.run(&q.req.sequence, ctx.evaluator.as_mut());
    let compute_latency = started.elapsed();
    match result {
        Ok(outputs) => {
            let stats = ctx.stats_snapshot(q.req.sequence.len());
            emit(InferenceResponse {
                id: q.req.id,
                status: completion_status(&q.req.deadline, q.submitted_at),
                outputs,
                stats,
                queue_latency,
                compute_latency,
            });
        }
        Err(e) => {
            report(e.to_string());
            emit(rejected_response(q.req.id, queue_latency, compute_latency));
        }
    }
}

/// Runs one staged wave to completion on a bidirectional context.
fn run_wave(
    ctx: &mut ExecContext,
    mut wave: Vec<QueuedRequest>,
    policy: DeadlinePolicy,
    emit: &mut dyn FnMut(InferenceResponse),
    report: &mut dyn FnMut(String),
) {
    // Deadlines may have expired while the wave was staged; re-check so
    // a hopeless request does not occupy a wave lane.
    if policy == DeadlinePolicy::DropExpired {
        wave.retain(|q| {
            if q.expired() {
                emit(expired_response(
                    q,
                    q.submitted_at.elapsed(),
                    Duration::ZERO,
                ));
                false
            } else {
                true
            }
        });
    }
    if wave.is_empty() {
        return;
    }
    // Longest-first (stable) so wave lane `l` is request `l`: run_batch
    // re-sorts stably, which is then the identity, and per-lane stats
    // map back directly.
    wave.sort_by_key(|q| std::cmp::Reverse(q.req.sequence.len()));
    let refs: Vec<&[nfm_tensor::Vector]> = wave.iter().map(|q| q.req.sequence.as_slice()).collect();
    let admitted_at = Instant::now();
    match ctx.network.run_batch(&refs, ctx.evaluator.as_mut()) {
        Ok(outputs) => {
            let compute_latency = admitted_at.elapsed();
            for (lane, (q, outputs)) in wave.iter().zip(outputs).enumerate() {
                let stats = ctx.take_lane_stats(lane, q.req.sequence.len());
                emit(InferenceResponse {
                    id: q.req.id,
                    status: completion_status(&q.req.deadline, q.submitted_at),
                    outputs,
                    stats,
                    queue_latency: admitted_at.duration_since(q.submitted_at),
                    compute_latency,
                });
            }
        }
        Err(e) => {
            report(e.to_string());
            let compute_latency = admitted_at.elapsed();
            for q in &wave {
                emit(rejected_response(
                    q.req.id,
                    admitted_at.duration_since(q.submitted_at),
                    compute_latency,
                ));
            }
        }
    }
}

/// Aborts expired in-flight requests, then advances an active pipeline
/// context by one timestep.  Returns whether a step ran.
fn step_pipeline(
    ctx: &mut ExecContext,
    policy: DeadlinePolicy,
    emit: &mut dyn FnMut(InferenceResponse),
    report: &mut dyn FnMut(String),
) -> bool {
    // Split the context's fields so the scheduler, evaluator and
    // network can be borrowed side by side.
    let ExecContext {
        network,
        evaluator,
        evals_per_step,
        sched,
        ..
    } = ctx;
    let evals_per_step = *evals_per_step;
    let Scheduler::Pipeline(sched) = sched else {
        unreachable!("caller matched Pipeline");
    };
    if sched.pipeline.is_idle() {
        return false;
    }
    // Per-step deadline aborts: a request whose budget ran out
    // mid-sequence frees its lane *now* (mid-wave, like refill) instead
    // of computing its remaining timesteps.  Only DropExpired aborts;
    // RunToCompletion keeps computing and reports the late result.
    if policy == DeadlinePolicy::DropExpired {
        let expired: Vec<u64> = sched
            .inflight
            .iter()
            .filter(|(_, info)| match info.deadline {
                Some(d) => info.submitted_at.elapsed() > d,
                None => false,
            })
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            let cancelled = sched
                .pipeline
                .cancel(token, evaluator.as_mut())
                .expect("inflight tokens are on lanes");
            let info = sched.inflight.remove(&token).expect("lane tracked");
            // Zero the lane's counters (the partial work is discarded
            // with the outputs) and report the abort with partial
            // latency accounting: the queue wait it really had, the
            // compute time it really consumed.
            let _ = harvest_lane_stats(
                evaluator.as_mut(),
                evals_per_step,
                cancelled.stats_lane,
                cancelled.outputs.len(),
            );
            emit(InferenceResponse {
                id: info.id,
                status: CompletionStatus::DeadlineExpired,
                outputs: Vec::new(),
                stats: ReuseStats::new(),
                queue_latency: info.admitted_at.duration_since(info.submitted_at),
                compute_latency: info.admitted_at.elapsed(),
            });
        }
        if sched.pipeline.is_idle() {
            return false;
        }
    }
    match sched
        .pipeline
        .step(network, evaluator.as_mut(), &mut sched.finished)
    {
        Ok(_) => {
            // Read each finished lane's stats before the next admission
            // reuses its slot.
            let finished = std::mem::take(&mut sched.finished);
            for f in finished {
                let info = sched.inflight.remove(&f.token).expect("lane tracked");
                let stats = harvest_lane_stats(
                    evaluator.as_mut(),
                    evals_per_step,
                    f.stats_lane,
                    info.timesteps,
                );
                emit(InferenceResponse {
                    id: info.id,
                    status: completion_status(&info.deadline, info.submitted_at),
                    outputs: f.outputs,
                    stats,
                    queue_latency: info.admitted_at.duration_since(info.submitted_at),
                    compute_latency: info.admitted_at.elapsed(),
                });
            }
            true
        }
        Err(e) => {
            // Unreachable for validated submissions; fail the in-flight
            // requests loudly and restart the pipeline with fresh
            // lanes.
            report(e.to_string());
            for (_, info) in sched.inflight.drain() {
                emit(rejected_response(
                    info.id,
                    info.admitted_at.duration_since(info.submitted_at),
                    info.admitted_at.elapsed(),
                ));
            }
            let lanes = sched.pipeline.lanes();
            sched.pipeline = StepPipeline::new(network, lanes)
                .expect("same network accepted these lanes before");
            evaluator.begin_batch(lanes);
            sched.finished.clear();
            true
        }
    }
}

/// Status of a computed request: late if its deadline elapsed anywhere
/// between submission and now.
fn completion_status(deadline: &Option<Duration>, submitted_at: Instant) -> CompletionStatus {
    match deadline {
        Some(d) if submitted_at.elapsed() > *d => CompletionStatus::DeadlineExpired,
        _ => CompletionStatus::Done,
    }
}

fn expired_response(
    q: &QueuedRequest,
    queue_latency: Duration,
    compute_latency: Duration,
) -> InferenceResponse {
    InferenceResponse {
        id: q.req.id,
        status: CompletionStatus::DeadlineExpired,
        outputs: Vec::new(),
        stats: ReuseStats::new(),
        queue_latency,
        compute_latency,
    }
}

fn rejected_response(
    id: RequestId,
    queue_latency: Duration,
    compute_latency: Duration,
) -> InferenceResponse {
    InferenceResponse {
        id,
        status: CompletionStatus::Rejected,
        outputs: Vec::new(),
        stats: ReuseStats::new(),
        queue_latency,
        compute_latency,
    }
}
