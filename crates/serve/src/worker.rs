//! Per-worker execution: one unified lane scheduler + evaluator per
//! served (model, predictor, threshold) combination.
//!
//! Every engine worker owns a [`LaneWorker`].  Requests arrive already
//! resolved against the registry (network +
//! [`Predictor`](nfm_core::Predictor) factory + [`ContextKey`]); the
//! worker groups them into **execution contexts** — one per distinct
//! key, created lazily on first use — and interleaves the non-idle
//! contexts one scheduling block at a time, so an engine serving
//! several models makes progress on all of them concurrently even with
//! a single worker thread.  The exception is bidirectional models:
//! their waves run to completion in one piece (`run_batch` needs whole
//! sequences), pausing the worker's other contexts for the wave's
//! duration — give latency-sensitive mixes of uni- and bidirectional
//! models separate workers.
//!
//! Each context owns a private evaluator (built once from the shared
//! factory — no weight or mirror clones) and one [`LaneScheduler`],
//! its refill policy picked from the model's direction:
//!
//! * [`RefillPolicy::Block`] (unidirectional stacks, any lane count) —
//!   lanes advance through the whole stack in [`HOIST_BLOCK`]-step
//!   blocks with every layer's input projections hoisted across all
//!   active lanes, a drained lane is refilled from the queue at the
//!   next block boundary (mid-wave refill), and an in-flight request
//!   whose deadline expires is aborted **between blocks** (under
//!   [`DeadlinePolicy::DropExpired`]), freeing its lane without
//!   computing the remaining steps.
//! * [`RefillPolicy::Wave`] (bidirectional stacks) — layer-lockstep
//!   waves via `DeepRnn::run_batch`; freed lanes refill at wave
//!   boundaries (the backward halves need whole sequences up front).
//!
//! Both policies produce bit-identical per-request outputs and reuse
//! statistics: scheduling never changes results, only latency.
//!
//! # Cross-context lane stealing
//!
//! A block scheduler is built with **twice** the engine's configured
//! lane count; the extra lanes are *borrowed* capacity.  The worker's
//! queue-pull predicate admits a request beyond a context's fair share
//! (the configured lane count) only while the worker's *total* active
//! lanes stay under `lanes × contexts` — i.e. a hot model may borrow
//! exactly the lanes its sibling contexts are leaving idle, and a
//! worker serving a single context never exceeds the configured count.
//! Borrowing widens the hoisted matrix products of the hot context
//! (more rows per weight stream) without starving anyone: the moment a
//! cold context gets traffic, its fair share is free by construction.
//!
//! # Worker work stealing
//!
//! When another engine worker goes idle while this one still holds two
//! or more active lanes, the worker **migrates** one in-flight lane to
//! it through the engine's [`StealBridge`]: the lane with the most
//! remaining timesteps (at least [`MIN_STEAL_REMAINING`]) is extracted
//! as a [`LaneSnapshot`] together with the evaluator's per-lane state
//! ([`ServedEvaluator::export_lane_state`]), and the receiving worker
//! implants it into its own context and resumes mid-sequence.
//! Migration is bit-transparent — the resumed lane consumes the same
//! inputs and recurrent state in the same scalar order — and
//! exactly-once: the donor forgets the request without emitting, the
//! receiver emits its single response.  Evaluators that do not
//! implement the export/import hooks never migrate.

use crate::registry::{ContextKey, Resolved};
use crate::request::{
    CompletionStatus, DeadlinePolicy, InferenceRequest, InferenceResponse, RequestId,
};
use nfm_core::{LaneState, ReuseStats, ServedEvaluator};
use nfm_rnn::{DeepRnn, FinishedLane, LaneScheduler, LaneSnapshot, RefillPolicy, HOIST_BLOCK};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Routes a response back to the engine's swap observer: the
/// submission serial (unique per admitted request) plus whether this is
/// the suppressed shadow half of a canary pair.  Workers thread the tag
/// through unchanged; only the engine's emit closure interprets it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResponseTag {
    pub(crate) serial: u64,
    pub(crate) shadow: bool,
}

/// A request plus its submission timestamp (queue-latency anchor) and
/// its registry resolution.
#[derive(Debug)]
pub(crate) struct QueuedRequest {
    pub req: InferenceRequest,
    pub submitted_at: Instant,
    pub resolved: Resolved,
    /// Engine-issued submission serial (see [`ResponseTag`]).
    pub serial: u64,
    /// Whether this is the suppressed shadow half of a canary pair.
    pub shadow: bool,
}

impl QueuedRequest {
    fn expired(&self) -> bool {
        match self.req.deadline {
            Some(deadline) => self.submitted_at.elapsed() > deadline,
            None => false,
        }
    }

    fn tag(&self) -> ResponseTag {
        ResponseTag {
            serial: self.serial,
            shadow: self.shadow,
        }
    }
}

/// A request occupying a scheduler lane (or staged for the next wave).
pub(crate) struct Inflight {
    id: RequestId,
    deadline: Option<Duration>,
    submitted_at: Instant,
    admitted_at: Instant,
    timesteps: usize,
    serial: u64,
    shadow: bool,
}

impl Inflight {
    fn expired(&self) -> bool {
        match self.deadline {
            Some(d) => self.submitted_at.elapsed() > d,
            None => false,
        }
    }

    fn tag(&self) -> ResponseTag {
        ResponseTag {
            serial: self.serial,
            shadow: self.shadow,
        }
    }
}

/// Fewest remaining timesteps an in-flight lane must have to be worth
/// migrating to an idle worker: below two full hoist blocks the donor
/// finishes the lane faster than the handoff amortizes.
pub(crate) const MIN_STEAL_REMAINING: usize = 2 * HOIST_BLOCK;

/// An in-flight lane migrating from a saturated worker to an idle one:
/// the scheduler-side snapshot, the evaluator's per-lane state, and the
/// request bookkeeping (original timestamps, so latency accounting
/// spans the migration).
pub(crate) struct MigratedLane {
    pub(crate) resolved: Resolved,
    pub(crate) inflight: Inflight,
    pub(crate) snapshot: LaneSnapshot,
    pub(crate) eval_state: LaneState,
}

impl fmt::Debug for MigratedLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MigratedLane")
            .field("key", &self.resolved.key)
            .field("request", &self.inflight.id)
            .field("remaining", &self.snapshot.remaining())
            .finish_non_exhaustive()
    }
}

/// The worker's window onto the engine's migration pool.  All methods
/// are called from the worker thread between scheduling blocks.
pub(crate) trait StealBridge {
    /// Pops a migrated lane this worker can host right now, leaving the
    /// rest pooled.
    fn try_receive(&self, admittable: &dyn Fn(&MigratedLane) -> bool) -> Option<MigratedLane>;
    /// Whether some other worker is idle and the pool is empty — the
    /// donor-side precondition for extracting a lane.
    fn donation_wanted(&self) -> bool;
    /// Hands an extracted lane to the pool and wakes an idle worker.
    fn donate(&self, lane: MigratedLane);
    /// Records a cross-context lane borrow (observability only).
    fn note_lane_borrow(&self);
}

/// Unified scheduler bookkeeping of one execution context.
struct LaneSched {
    scheduler: LaneScheduler,
    /// Requests on lanes (or staged for the next wave), by token.
    inflight: HashMap<u64, Inflight>,
    /// Scratch for [`LaneScheduler::step`] results.
    finished: Vec<FinishedLane>,
    /// Tokens are context-local and never reused.
    next_token: u64,
}

/// One (model, predictor, threshold) combination being served: private
/// evaluator + lane scheduler.
struct ExecContext {
    key: ContextKey,
    /// The registry resolution that created this context, kept so a
    /// migrating lane carries everything its receiver needs.
    resolved: Resolved,
    network: Arc<DeepRnn>,
    evaluator: Box<dyn ServedEvaluator>,
    evals_per_step: u64,
    sched: LaneSched,
    /// Worker-clock value of the last request routed here (LRU
    /// eviction of idle threshold-override contexts).
    last_used: u64,
}

impl ExecContext {
    /// Builds a context, reviving a parked evaluator when the worker
    /// held on to one for this key (LRU-evicted override contexts park
    /// their evaluators so recreation reuses the allocations — memo
    /// tables, sign buffers, lane state — instead of rebuilding them).
    fn new(
        key: ContextKey,
        resolved: &Resolved,
        lanes: usize,
        revived: Option<Box<dyn ServedEvaluator>>,
    ) -> ExecContext {
        let network = Arc::clone(&resolved.network);
        let mut evaluator = revived.unwrap_or_else(|| resolved.predictor.build_evaluator(&network));
        // A revived evaluator carries stale aggregate counters; all
        // per-request state is reset at admission, but the counters
        // must start from zero like a fresh build's.
        evaluator.reset_stats();
        let unidirectional = network.layers().iter().all(|l| !l.is_bidirectional());
        let (policy, capacity) = if unidirectional {
            // Twice the fair share: the extra lanes are borrowable
            // capacity for cross-context lane stealing.  The queue-pull
            // predicate keeps a context at its fair share unless
            // sibling contexts leave lanes idle.
            (RefillPolicy::Block, lanes * 2)
        } else {
            (RefillPolicy::Wave, lanes)
        };
        let scheduler = LaneScheduler::new(&network, capacity, policy)
            .expect("lanes >= 1, and Wave accepts any stack");
        if policy == RefillPolicy::Block {
            // Size the evaluator's per-lane state once up front (wave
            // schedulers size it per wave inside run_batch).
            evaluator.begin_batch(capacity);
        }
        let evals_per_step = network.neuron_evaluations_per_step() as u64;
        ExecContext {
            key,
            resolved: resolved.clone(),
            network,
            evaluator,
            evals_per_step,
            sched: LaneSched {
                scheduler,
                inflight: HashMap::new(),
                finished: Vec::new(),
                next_token: 0,
            },
            last_used: 0,
        }
    }

    /// Whether this context holds no admitted or staged work.
    fn is_idle(&self) -> bool {
        self.sched.scheduler.is_idle()
    }

    /// Whether this context can take one more request right now (the
    /// worker's queue-pull admissibility predicate): room within its
    /// fair share, or a borrowable lane some sibling context is leaving
    /// idle (cross-context lane stealing — block schedulers only, and
    /// never past the worker-wide fair-share total, so a single-context
    /// worker never exceeds the configured lane count).
    fn can_accept(&self, fair_share: usize, total_active: usize, contexts: usize) -> bool {
        let active = self.sched.scheduler.active_lanes();
        if active < fair_share {
            return true;
        }
        self.sched.scheduler.policy() == RefillPolicy::Block
            && total_active < fair_share * contexts
            && self.sched.scheduler.free_lanes() > 0
    }
}

/// Statistics attributable to the request that just left `lane`:
/// harvested from the evaluator when it tracks per-lane counters,
/// synthesized as all-computed otherwise (correct for evaluators that
/// never skip work — the exact baseline and plain custom evaluators).
fn harvest_lane_stats(
    evaluator: &mut dyn ServedEvaluator,
    evals_per_step: u64,
    lane: usize,
    timesteps: usize,
) -> ReuseStats {
    evaluator.take_lane_stats(lane).unwrap_or_else(|| {
        let mut stats = ReuseStats::new();
        stats.record_computed_many(timesteps as u64 * evals_per_step);
        stats
    })
}

/// Default for how many execution contexts born from per-request
/// threshold overrides one worker keeps alive at once.  Registered
/// (model, predictor) combinations are never evicted — their count is
/// bounded by the registry — but every distinct override θ materializes
/// its own context, and clients sweeping thresholds would otherwise
/// grow worker memory without bound.  Idle override contexts beyond the
/// cap are dropped least-recently-used first, their evaluators parked
/// (also LRU-bounded by the cap) so recreating one revives the parked
/// allocations instead of rebuilding; a miss is just an evaluator build
/// (all per-request state is reset at admission anyway, so neither
/// eviction nor revival ever changes results).  Tune per engine with
/// [`EngineBuilder::override_context_cap`](crate::EngineBuilder::override_context_cap).
pub(crate) const DEFAULT_OVERRIDE_CONTEXT_CAP: usize = 8;

/// The queue-pull callback handed to [`LaneWorker::pump`]: pops the
/// highest-priority queued request satisfying the worker's
/// admissibility predicate, leaving everything else queued.
pub(crate) type PullFn<'a> =
    dyn FnMut(&dyn Fn(&QueuedRequest) -> bool) -> Option<QueuedRequest> + 'a;

/// One worker: a set of execution contexts fed from the shared queue.
pub(crate) struct LaneWorker {
    lanes: usize,
    policy: DeadlinePolicy,
    /// Per-worker bound on idle threshold-override contexts (the
    /// [`EngineBuilder::override_context_cap`](crate::EngineBuilder::override_context_cap)
    /// knob).
    override_context_cap: usize,
    /// Live contexts in creation order (deterministic stepping; one
    /// entry per served combination, override contexts capped by
    /// `override_context_cap`).
    contexts: Vec<ExecContext>,
    /// Evaluators of LRU-evicted override contexts, parked for reuse:
    /// a client sweeping back to a recently-evicted θ gets its old
    /// evaluator's allocations back (memo tables, sign buffers, lane
    /// state) instead of a rebuild.  Bounded by `override_context_cap`,
    /// least-recently-used entries dropped first; per-request state is
    /// reset at admission anyway, so revival never changes results.
    parked: Vec<(ContextKey, Box<dyn ServedEvaluator>, u64)>,
    /// Monotonic routing counter backing context LRU eviction.
    clock: u64,
}

impl LaneWorker {
    /// Builds a worker; contexts appear lazily as resolved requests
    /// arrive.  The caller guarantees `lanes >= 1` and
    /// `override_context_cap >= 1`.
    pub(crate) fn new(
        lanes: usize,
        policy: DeadlinePolicy,
        override_context_cap: usize,
    ) -> LaneWorker {
        debug_assert!(lanes >= 1);
        debug_assert!(override_context_cap >= 1);
        LaneWorker {
            lanes,
            policy,
            override_context_cap,
            contexts: Vec::new(),
            parked: Vec::new(),
            clock: 0,
        }
    }

    /// Aggregate reuse counters of every live execution context, keyed
    /// by context identity — the feed behind
    /// [`Engine::context_stats`](crate::Engine::context_stats).
    /// Evaluators that keep no counters (custom predictors without
    /// [`ServedEvaluator::stats_snapshot`]) report empty stats.
    pub(crate) fn stats_snapshots(&self) -> Vec<(ContextKey, ReuseStats)> {
        self.contexts
            .iter()
            .map(|c| {
                let stats = c.evaluator.stats_snapshot().unwrap_or_default();
                (c.key.clone(), stats)
            })
            .collect()
    }

    /// Drains work from `pull` (and migrated lanes from `bridge`) until
    /// both run dry and every context is idle, emitting one response
    /// per request.  Internal execution errors (which submit-time
    /// validation makes unreachable for well-formed engines) turn the
    /// affected requests into [`CompletionStatus::Rejected`] responses
    /// — never silently dropped — and are passed to `report` *before*
    /// those responses are emitted, so a caller observing a rejected
    /// response always finds the root cause already recorded.
    pub(crate) fn pump(
        &mut self,
        pull: &mut PullFn<'_>,
        bridge: &dyn StealBridge,
        emit: &mut dyn FnMut(InferenceResponse, ResponseTag),
        report: &mut dyn FnMut(String),
    ) {
        loop {
            // Migrated lanes first: they carry in-flight work another
            // worker already started, so they outrank fresh queue
            // pulls.
            loop {
                let contexts = &self.contexts;
                let receivable = |m: &MigratedLane| -> bool {
                    match contexts.iter().find(|c| c.key == m.resolved.key) {
                        // A fresh context always has room.
                        None => true,
                        Some(ctx) => {
                            ctx.sched.scheduler.policy() == RefillPolicy::Block
                                && ctx.sched.scheduler.free_lanes() > 0
                        }
                    }
                };
                let Some(lane) = bridge.try_receive(&receivable) else {
                    break;
                };
                self.receive(lane, emit, report);
            }
            // Fill phase: pull until the queue has nothing this worker
            // can place right now.  The admissibility predicate keeps
            // requests for saturated contexts *on the shared queue*
            // (skipped, not taken), so this worker never hoards work
            // another worker could serve, a saturated model never
            // stalls the other models, and backpressure accounting
            // stays truthful.  Requests a worker can place are taken
            // strictly in queue priority order.
            loop {
                let lanes = self.lanes;
                let contexts = &self.contexts;
                let total_active: usize = contexts
                    .iter()
                    .map(|c| c.sched.scheduler.active_lanes())
                    .sum();
                let count = contexts.len();
                let admittable = |q: &QueuedRequest| -> bool {
                    match contexts.iter().find(|c| c.key == q.resolved.key) {
                        // New combination: a fresh context always has room.
                        None => true,
                        Some(ctx) => ctx.can_accept(lanes, total_active, count),
                    }
                };
                let Some(q) = pull(&admittable) else { break };
                self.route(q, bridge, emit, report);
            }
            // Step phase: one scheduling block for every active
            // context.  Non-empty waves are due now — the fill phase
            // just proved the queue holds nothing more this worker
            // could add.
            let progressed = self.step_contexts(emit, report);
            // Donate phase: if another worker went idle while this one
            // still holds several active lanes, hand one over.
            let donated = self.try_donate(bridge);
            if !progressed && !donated && self.contexts.iter().all(ExecContext::is_idle) {
                return;
            }
        }
    }

    /// Index of the context for `resolved`, creating it on first use
    /// (and evicting a stale idle threshold-override context when the
    /// override population outgrows the configured cap).
    fn context_index(&mut self, resolved: &Resolved) -> usize {
        self.clock += 1;
        let clock = self.clock;
        match self.contexts.iter().position(|c| c.key == resolved.key) {
            Some(i) => {
                self.contexts[i].last_used = clock;
                i
            }
            None => {
                let mut revived = None;
                if resolved.key.threshold_bits.is_some() {
                    self.evict_stale_override_contexts();
                    // Evict first, then check the parked pool: a θ the
                    // client swept away from and is now sweeping back
                    // to gets its old evaluator's allocations back.
                    if let Some(pos) = self
                        .parked
                        .iter()
                        .position(|(key, _, _)| *key == resolved.key)
                    {
                        revived = Some(self.parked.remove(pos).1);
                    }
                }
                let mut ctx = ExecContext::new(resolved.key.clone(), resolved, self.lanes, revived);
                ctx.last_used = clock;
                self.contexts.push(ctx);
                self.contexts.len() - 1
            }
        }
    }

    /// Drops least-recently-used *idle* threshold-override contexts
    /// until their population is back under the cap (a burst of
    /// distinct overrides can overshoot it while every context still
    /// holds work — this shrinks the population as they drain, instead
    /// of ratcheting).  Contexts with admitted or staged work are
    /// never touched, and neither are the registered (no-override)
    /// combinations.
    fn evict_stale_override_contexts(&mut self) {
        loop {
            let overrides = self
                .contexts
                .iter()
                .filter(|c| c.key.threshold_bits.is_some())
                .count();
            if overrides < self.override_context_cap {
                return;
            }
            let victim = self
                .contexts
                .iter()
                .enumerate()
                .filter(|(_, c)| c.key.threshold_bits.is_some() && c.is_idle())
                .min_by_key(|(_, c)| c.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let ctx = self.contexts.remove(i);
                    self.park_evaluator(ctx);
                }
                // Everything over the cap is busy; try again when the
                // next override context is created.
                None => return,
            }
        }
    }

    /// Parks an evicted override context's evaluator for later revival,
    /// keeping the pool itself under the override cap (oldest parked
    /// entry dropped first).
    fn park_evaluator(&mut self, ctx: ExecContext) {
        self.parked.push((ctx.key, ctx.evaluator, ctx.last_used));
        while self.parked.len() > self.override_context_cap {
            let oldest = self
                .parked
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, last_used))| *last_used)
                .map(|(i, _)| i)
                .expect("pool is non-empty past the cap");
            self.parked.remove(oldest);
        }
    }

    /// Routes one pulled request: admits it into its context's
    /// scheduler (block lanes start at the next step phase, wave
    /// admissions stage until their wave is due).  The pull predicate
    /// guarantees the context has room; the full-context branch below
    /// is defensive (it fails the request loudly instead of hanging
    /// the engine if that invariant is ever broken).
    fn route(
        &mut self,
        q: QueuedRequest,
        bridge: &dyn StealBridge,
        emit: &mut dyn FnMut(InferenceResponse, ResponseTag),
        report: &mut dyn FnMut(String),
    ) {
        let queue_latency = q.submitted_at.elapsed();
        let tag = q.tag();
        if q.expired() && self.policy == DeadlinePolicy::DropExpired {
            emit(
                expired_response(q.req.id, queue_latency, Duration::ZERO),
                tag,
            );
            return;
        }
        let fair_share = self.lanes;
        let idx = self.context_index(&q.resolved);
        let ctx = &mut self.contexts[idx];
        if ctx.sched.scheduler.free_lanes() == 0 {
            debug_assert!(false, "pull predicate admitted into a full scheduler");
            report("request routed to a full execution context".into());
            emit(
                rejected_response(q.req.id, queue_latency, Duration::ZERO),
                tag,
            );
            return;
        }
        // An admission past the fair share is a borrowed sibling lane.
        let borrows = ctx.sched.scheduler.policy() == RefillPolicy::Block
            && ctx.sched.scheduler.active_lanes() >= fair_share;
        let token = ctx.sched.next_token;
        ctx.sched.next_token += 1;
        let timesteps = q.req.sequence.len();
        // Timestamp before admit(): lane setup is the request's own
        // compute, not queue wait.  (Wave admissions re-stamp when
        // their wave actually starts.)
        let admitted_at = Instant::now();
        match ctx
            .sched
            .scheduler
            .admit(token, q.req.sequence, &ctx.network, ctx.evaluator.as_mut())
        {
            Ok(()) => {
                ctx.sched.inflight.insert(
                    token,
                    Inflight {
                        id: q.req.id,
                        deadline: q.req.deadline,
                        submitted_at: q.submitted_at,
                        admitted_at,
                        timesteps,
                        serial: q.serial,
                        shadow: q.shadow,
                    },
                );
                if borrows {
                    bridge.note_lane_borrow();
                }
            }
            Err(e) => {
                report(e.to_string());
                emit(
                    rejected_response(q.req.id, queue_latency, Duration::ZERO),
                    tag,
                );
            }
        }
    }

    /// Advances every non-idle context by one scheduling block (block
    /// policy) or one whole staged wave (wave policy), after aborting
    /// expired in-flight requests.  Returns whether any compute
    /// happened.
    fn step_contexts(
        &mut self,
        emit: &mut dyn FnMut(InferenceResponse, ResponseTag),
        report: &mut dyn FnMut(String),
    ) -> bool {
        let mut progressed = false;
        let policy = self.policy;
        for ctx in &mut self.contexts {
            if step_context(ctx, policy, emit, report) {
                progressed = true;
            }
        }
        progressed
    }

    /// Donor half of worker work stealing: when another worker is idle
    /// and this one still holds two or more active lanes, extract the
    /// lane with the most remaining work (evaluator state included) and
    /// hand it over.  At most one lane per pump round — the pool is
    /// drained before anyone donates again, so workers cannot flood it.
    fn try_donate(&mut self, bridge: &dyn StealBridge) -> bool {
        if !bridge.donation_wanted() {
            return false;
        }
        let total_active: usize = self
            .contexts
            .iter()
            .map(|c| c.sched.scheduler.active_lanes())
            .sum();
        // Never donate the last active lane: that just moves the work.
        if total_active < 2 {
            return false;
        }
        for ctx in &mut self.contexts {
            let Some(token) = ctx.sched.scheduler.steal_candidate(MIN_STEAL_REMAINING) else {
                continue;
            };
            let Some(lane) = ctx.sched.scheduler.lane_of(token) else {
                continue;
            };
            // Export the evaluator's lane state *before* extraction
            // compacts the lane prefix; evaluators without the hook
            // keep their lanes.
            let Some(eval_state) = ctx.evaluator.export_lane_state(lane) else {
                continue;
            };
            let snapshot = ctx
                .sched
                .scheduler
                .extract(token, ctx.evaluator.as_mut())
                .expect("steal candidate is an active lane");
            let inflight = ctx
                .sched
                .inflight
                .remove(&token)
                .expect("active lanes are tracked");
            bridge.donate(MigratedLane {
                resolved: ctx.resolved.clone(),
                inflight,
                snapshot,
                eval_state,
            });
            return true;
        }
        false
    }

    /// Receiver half of worker work stealing: implant a migrated lane
    /// into this worker's context for the same key and resume it
    /// mid-sequence.  The failure paths are defensive — the donor only
    /// exports through the same evaluator hooks — and fail the request
    /// loudly rather than losing it.
    fn receive(
        &mut self,
        lane: MigratedLane,
        emit: &mut dyn FnMut(InferenceResponse, ResponseTag),
        report: &mut dyn FnMut(String),
    ) {
        let MigratedLane {
            resolved,
            inflight,
            snapshot,
            eval_state,
        } = lane;
        let queue_latency = inflight.admitted_at.duration_since(inflight.submitted_at);
        let compute_latency = inflight.admitted_at.elapsed();
        let idx = self.context_index(&resolved);
        let ctx = &mut self.contexts[idx];
        let token = ctx.sched.next_token;
        ctx.sched.next_token += 1;
        match ctx.sched.scheduler.implant(token, snapshot) {
            Ok(lane_idx) => {
                if ctx.evaluator.import_lane_state(lane_idx, eval_state) {
                    ctx.sched.inflight.insert(token, inflight);
                } else {
                    let _ = ctx.sched.scheduler.cancel(token, ctx.evaluator.as_mut());
                    report("migrated lane rejected: evaluator refused the lane state".into());
                    emit(
                        rejected_response(inflight.id, queue_latency, compute_latency),
                        inflight.tag(),
                    );
                }
            }
            Err(e) => {
                report(e.to_string());
                emit(
                    rejected_response(inflight.id, queue_latency, compute_latency),
                    inflight.tag(),
                );
            }
        }
    }
}

/// Aborts expired in-flight requests, then advances one context by a
/// scheduling block (or a whole staged wave).  Returns whether any
/// compute happened.
fn step_context(
    ctx: &mut ExecContext,
    policy: DeadlinePolicy,
    emit: &mut dyn FnMut(InferenceResponse, ResponseTag),
    report: &mut dyn FnMut(String),
) -> bool {
    // Split the context's fields so the scheduler, evaluator and
    // network can be borrowed side by side.
    let ExecContext {
        network,
        evaluator,
        evals_per_step,
        sched,
        ..
    } = ctx;
    let evals_per_step = *evals_per_step;
    if sched.scheduler.is_idle() {
        return false;
    }
    // Block-boundary deadline aborts: a request whose budget ran out
    // mid-sequence frees its lane *now* (mid-wave, like refill) instead
    // of computing its remaining timesteps; a staged wave admission
    // whose budget ran out is unstaged before it costs anything.  Only
    // DropExpired aborts; RunToCompletion keeps computing and reports
    // the late result.
    if policy == DeadlinePolicy::DropExpired {
        let expired: Vec<u64> = sched
            .inflight
            .iter()
            .filter(|(_, info)| info.expired())
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            let cancelled = sched
                .scheduler
                .cancel(token, evaluator.as_mut())
                .expect("inflight tokens are scheduled");
            let info = sched.inflight.remove(&token).expect("lane tracked");
            match cancelled.stats_lane {
                // The lane ran: zero its counters (the partial work is
                // discarded with the outputs) and report the abort with
                // partial latency accounting — the queue wait it really
                // had, the compute time it really consumed.
                Some(lane) => {
                    let _ = harvest_lane_stats(
                        evaluator.as_mut(),
                        evals_per_step,
                        lane,
                        cancelled.outputs.len(),
                    );
                    emit(
                        InferenceResponse {
                            id: info.id,
                            status: CompletionStatus::DeadlineExpired,
                            outputs: Vec::new(),
                            stats: ReuseStats::new(),
                            queue_latency: info.admitted_at.duration_since(info.submitted_at),
                            compute_latency: info.admitted_at.elapsed(),
                        },
                        info.tag(),
                    );
                }
                // A staged wave admission that never entered the
                // evaluator: pure queue wait, zero compute.
                None => {
                    emit(
                        expired_response(info.id, info.submitted_at.elapsed(), Duration::ZERO),
                        info.tag(),
                    );
                }
            }
        }
        if sched.scheduler.is_idle() {
            return false;
        }
    }
    // A staged wave starts computing *now*: re-stamp its admissions so
    // queue latency covers the whole staging wait and compute latency
    // the wave itself.
    if sched.scheduler.policy() == RefillPolicy::Wave {
        let wave_start = Instant::now();
        for info in sched.inflight.values_mut() {
            info.admitted_at = wave_start;
        }
    }
    match sched
        .scheduler
        .step(network, evaluator.as_mut(), &mut sched.finished)
    {
        Ok(advanced) => {
            // Read each finished lane's stats before the next admission
            // reuses its slot.
            let finished = std::mem::take(&mut sched.finished);
            for f in finished {
                let info = sched.inflight.remove(&f.token).expect("lane tracked");
                let stats = match f.stats_lane {
                    Some(lane) => {
                        harvest_lane_stats(evaluator.as_mut(), evals_per_step, lane, info.timesteps)
                    }
                    // Unreachable for finished lanes (only cancelled
                    // wave-pending admissions lack a lane).
                    None => ReuseStats::new(),
                };
                emit(
                    InferenceResponse {
                        id: info.id,
                        status: completion_status(&info.deadline, info.submitted_at),
                        outputs: f.outputs,
                        stats,
                        queue_latency: info.admitted_at.duration_since(info.submitted_at),
                        compute_latency: info.admitted_at.elapsed(),
                    },
                    info.tag(),
                );
            }
            advanced > 0
        }
        Err(e) => {
            // Unreachable for validated submissions; fail the in-flight
            // requests loudly and restart the scheduler with fresh
            // lanes.
            report(e.to_string());
            for (_, info) in sched.inflight.drain() {
                emit(
                    rejected_response(
                        info.id,
                        info.admitted_at.duration_since(info.submitted_at),
                        info.admitted_at.elapsed(),
                    ),
                    info.tag(),
                );
            }
            let capacity = sched.scheduler.lanes();
            let refill = sched.scheduler.policy();
            sched.scheduler = LaneScheduler::new(network, capacity, refill)
                .expect("same network accepted this configuration before");
            if refill == RefillPolicy::Block {
                evaluator.begin_batch(capacity);
            }
            sched.finished.clear();
            true
        }
    }
}

/// Status of a computed request: late if its deadline elapsed anywhere
/// between submission and now.
fn completion_status(deadline: &Option<Duration>, submitted_at: Instant) -> CompletionStatus {
    match deadline {
        Some(d) if submitted_at.elapsed() > *d => CompletionStatus::DeadlineExpired,
        _ => CompletionStatus::Done,
    }
}

fn expired_response(
    id: RequestId,
    queue_latency: Duration,
    compute_latency: Duration,
) -> InferenceResponse {
    InferenceResponse {
        id,
        status: CompletionStatus::DeadlineExpired,
        outputs: Vec::new(),
        stats: ReuseStats::new(),
        queue_latency,
        compute_latency,
    }
}

fn rejected_response(
    id: RequestId,
    queue_latency: Duration,
    compute_latency: Duration,
) -> InferenceResponse {
    InferenceResponse {
        id,
        status: CompletionStatus::Rejected,
        outputs: Vec::new(),
        stats: ReuseStats::new(),
        queue_latency,
        compute_latency,
    }
}
