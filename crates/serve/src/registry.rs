//! The model registry: which models an [`Engine`](crate::Engine)
//! serves, which predictors each model can be served under, and which
//! **version** of each model is live.
//!
//! A registry maps a [`ModelId`] to one network plus a named set of
//! [`Predictor`] factories.  Entries are keyed `(ModelId, version)`:
//! exactly one entry per id is *live* (the one `resolve` routes to) and
//! at most one higher-versioned entry is *staged* during a hot swap.
//! Weights and mirrors are immutable and `Arc`-shared once registered:
//! workers clone `Arc` handles, never weights or mirrors (one
//! [`BinaryNetwork`] mirror is prebuilt per model version and shared by
//! every BNN predictor and every worker).
//!
//! Requests pick a model and predictor through
//! [`RequestOptions`]; submission resolves the options against the
//! registry **synchronously**, so unknown ids and unsupported
//! overrides surface as typed [`EngineError`]s from
//! [`Engine::submit`](crate::Engine::submit), never mid-flight.
//!
//! Registration can also **autotune** a model: benchmark every kernel
//! blocking for each distinct gate shape once and record the winners in
//! the process-wide [`nfm_tensor::autotune`] cache, so every worker's
//! batched kernels run the measured-fastest traversal for that shape on
//! this machine.

use crate::engine::EngineError;
use crate::request::RequestOptions;
use nfm_bnn::BinaryNetwork;
use nfm_core::{Predictor, PredictorKind};
use nfm_model::LoadedModel;
use nfm_rnn::DeepRnn;
use nfm_tensor::autotune::{tune_gate_shape, GateShapePlan};
use std::fmt;
use std::sync::Arc;

/// Identifies a registered model.  Cheap to clone (shared string);
/// build one from any string type: `ModelId::from("kws")`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelId(Arc<str>);

/// Monotonic version of a registered model's weights.  Registration
/// starts at 1; each staged hot swap targets the incumbent's version
/// plus one.
pub type ModelVersion = u32;

impl ModelId {
    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ModelId {
    fn from(s: &str) -> Self {
        ModelId(Arc::from(s))
    }
}

impl From<String> for ModelId {
    fn from(s: String) -> Self {
        ModelId(Arc::from(s))
    }
}

impl From<&ModelId> for ModelId {
    fn from(id: &ModelId) -> Self {
        id.clone()
    }
}

/// One registered model version: the network plus its named predictors.
#[derive(Debug)]
pub(crate) struct ModelEntry {
    pub(crate) id: ModelId,
    /// This entry's weight version.
    pub(crate) version: ModelVersion,
    /// Whether `resolve` routes to this entry.  Exactly one entry per
    /// id is live; a non-live entry is a staged hot-swap candidate.
    pub(crate) live: bool,
    pub(crate) network: Arc<DeepRnn>,
    /// `(name, factory)` in registration order; the first is the
    /// model's default.
    pub(crate) predictors: Vec<(Arc<str>, Arc<dyn Predictor>)>,
    /// The model's binary mirror, built once when the first BNN
    /// predictor is registered (or carried over from an artifact) and
    /// shared from then on.
    mirror: Option<Arc<BinaryNetwork>>,
    /// Autotuned kernel plans, one per distinct gate shape, recorded by
    /// [`ModelRegistry::autotune_model`].  Empty when never tuned.
    pub(crate) tuning: Vec<GateShapePlan>,
}

/// A request resolved against the registry: the exact network and
/// predictor factory the worker must use, plus the context key workers
/// group lane schedulers by.
#[derive(Debug, Clone)]
pub(crate) struct Resolved {
    pub(crate) key: ContextKey,
    pub(crate) network: Arc<DeepRnn>,
    pub(crate) predictor: Arc<dyn Predictor>,
}

/// Identity of one execution context on a worker: requests with equal
/// keys share a lane scheduler and an evaluator (same model version,
/// same predictor, same effective threshold).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ContextKey {
    pub(crate) model: ModelId,
    /// Weight version the context runs — a hot swap's canary requests
    /// key separate contexts from incumbent traffic.
    pub(crate) version: ModelVersion,
    pub(crate) predictor: Arc<str>,
    /// Bit pattern of the per-request threshold override, `None` when
    /// the predictor's configured threshold applies.
    pub(crate) threshold_bits: Option<u32>,
}

/// Maps [`ModelId`]s to versioned networks and named [`Predictor`]
/// sets.
///
/// The first registered model is the engine's **default model** (used
/// by requests that name none — the entire single-model API), and each
/// model's first predictor is its **default predictor**.
///
/// ```
/// use nfm_serve::{ModelRegistry, PredictorKind};
/// use nfm_core::BnnMemoConfig;
/// use nfm_rnn::{CellKind, DeepRnn, DeepRnnConfig};
/// use nfm_tensor::rng::DeterministicRng;
///
/// let mut rng = DeterministicRng::seed_from_u64(3);
/// let kws = DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, 4, 6), &mut rng).unwrap();
/// let asr = DeepRnn::random(&DeepRnnConfig::new(CellKind::Lstm, 5, 8), &mut rng).unwrap();
/// let mut registry = ModelRegistry::new();
/// registry.register("kws", kws, PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5))).unwrap();
/// registry.register("asr", asr, PredictorKind::Exact).unwrap();
/// registry.add_predictor("asr", PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.3))).unwrap();
/// assert_eq!(registry.default_model().unwrap().as_str(), "kws");
/// assert_eq!(registry.version("kws"), Some(1));
/// assert_eq!(registry.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: Vec<ModelEntry>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry { models: Vec::new() }
    }

    /// Registers `network` under `id` (as version 1) with a built-in
    /// default predictor.  The first registration becomes the engine's
    /// default model.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DuplicateModel`] when `id` is taken.
    pub fn register(
        &mut self,
        id: impl Into<ModelId>,
        network: impl Into<Arc<DeepRnn>>,
        predictor: PredictorKind,
    ) -> Result<(), EngineError> {
        let id = id.into();
        self.register_entry(id.clone(), network.into(), None)?;
        self.add_predictor(&id, predictor)
    }

    /// Registers a model loaded from a versioned artifact (see
    /// [`nfm_model`]).  The artifact's prebuilt [`BinaryNetwork`]
    /// mirror, when present, is reused — a BNN predictor never
    /// rebuilds sign rows the artifact already carries.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DuplicateModel`] when `id` is taken.
    pub fn register_loaded(
        &mut self,
        id: impl Into<ModelId>,
        loaded: LoadedModel,
        predictor: PredictorKind,
    ) -> Result<(), EngineError> {
        let id = id.into();
        let mirror = loaded.mirror.map(Arc::new);
        self.register_entry(id.clone(), Arc::new(loaded.network), mirror)?;
        self.add_predictor(&id, predictor)
    }

    /// Registers `network` under `id` with a custom [`Predictor`]
    /// factory as its default, filed under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DuplicateModel`] when `id` is taken.
    pub fn register_custom(
        &mut self,
        id: impl Into<ModelId>,
        network: impl Into<Arc<DeepRnn>>,
        name: impl Into<Arc<str>>,
        predictor: Arc<dyn Predictor>,
    ) -> Result<(), EngineError> {
        let id = id.into();
        self.register_entry(id.clone(), network.into(), None)?;
        self.add_custom_predictor(&id, name, predictor)
    }

    /// Adds a built-in predictor to an already-registered model's
    /// **live** version, filed under [`PredictorKind::name`].  A BNN
    /// kind reuses the model's prebuilt mirror (building it on first
    /// need).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownModel`] when `model` is not
    /// registered and [`EngineError::DuplicatePredictor`] when the name
    /// is taken for this model.
    pub fn add_predictor(
        &mut self,
        model: impl Into<ModelId>,
        predictor: PredictorKind,
    ) -> Result<(), EngineError> {
        let model = model.into();
        let entry = self.entry_mut(&model)?;
        let mirror = if predictor.needs_mirror() {
            Some(
                entry
                    .mirror
                    .get_or_insert_with(|| Arc::new(BinaryNetwork::mirror(&entry.network)))
                    .clone(),
            )
        } else {
            None
        };
        let factory = predictor.instantiate(&entry.network, mirror);
        Self::push_predictor(entry, Arc::from(predictor.name()), factory)
    }

    /// Adds a custom predictor to an already-registered model's live
    /// version under `name`.
    ///
    /// # Errors
    ///
    /// Same as [`ModelRegistry::add_predictor`].
    pub fn add_custom_predictor(
        &mut self,
        model: impl Into<ModelId>,
        name: impl Into<Arc<str>>,
        predictor: Arc<dyn Predictor>,
    ) -> Result<(), EngineError> {
        let model = model.into();
        let entry = self.entry_mut(&model)?;
        Self::push_predictor(entry, name.into(), predictor)
    }

    /// Benchmarks every kernel blocking for each distinct gate shape of
    /// `model`'s live version at `lanes` lanes on the active backend,
    /// records the winners in the process-wide autotune cache, and
    /// stores the measured plans in the registry entry (see
    /// [`ModelRegistry::tuned_plans`]).  Returns the number of distinct
    /// shapes tuned.
    ///
    /// Tuning changes only *traversal order candidates that share the
    /// canonical reduction order*, so outputs stay bit-identical to the
    /// untuned kernels.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownModel`] when `model` is not
    /// registered and [`EngineError::InvalidConfig`] when `lanes` is 0.
    pub fn autotune_model(
        &mut self,
        model: impl Into<ModelId>,
        lanes: usize,
    ) -> Result<usize, EngineError> {
        if lanes == 0 {
            return Err(EngineError::InvalidConfig {
                what: "autotune lane count must be at least 1".into(),
            });
        }
        let model = model.into();
        let entry = self.entry_mut(&model)?;
        Ok(Self::tune_entry(entry, lanes))
    }

    /// The autotuned kernel plans recorded for `model`'s live version,
    /// one per distinct gate shape.  Empty when the model was never
    /// autotuned; `None` for an unknown model.
    pub fn tuned_plans(&self, model: impl Into<ModelId>) -> Option<&[GateShapePlan]> {
        let model = model.into();
        self.live_entry(&model).map(|e| e.tuning.as_slice())
    }

    /// Number of registered models (staged swap candidates do not
    /// count).
    pub fn len(&self) -> usize {
        self.models.iter().filter(|e| e.live).count()
    }

    /// Whether no model is registered (an empty registry cannot build
    /// an engine).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The default model: the first registered, `None` while empty.
    pub fn default_model(&self) -> Option<&ModelId> {
        self.models.iter().find(|e| e.live).map(|e| &e.id)
    }

    /// Registered model ids, in registration order.
    pub fn model_ids(&self) -> impl Iterator<Item = &ModelId> {
        self.models.iter().filter(|e| e.live).map(|e| &e.id)
    }

    /// The live version of `model`, `None` for an unknown model.
    /// Versions start at 1 and increase by one per promoted hot swap.
    pub fn version(&self, model: impl Into<ModelId>) -> Option<ModelVersion> {
        let model = model.into();
        self.live_entry(&model).map(|e| e.version)
    }

    /// The version staged for hot swap on `model`, if a swap is in
    /// progress.
    pub fn staged_version(&self, model: impl Into<ModelId>) -> Option<ModelVersion> {
        let model = model.into();
        self.staged_entry(&model).map(|e| e.version)
    }

    /// The predictor names registered for `model`'s live version,
    /// default first (`None` for an unknown model).
    pub fn predictor_names(&self, model: impl Into<ModelId>) -> Option<Vec<&str>> {
        let model = model.into();
        self.live_entry(&model)
            .map(|e| e.predictors.iter().map(|(n, _)| n.as_ref()).collect())
    }

    /// The network registered under `model`'s live version.
    pub fn network(&self, model: impl Into<ModelId>) -> Option<&Arc<DeepRnn>> {
        let model = model.into();
        self.live_entry(&model).map(|e| &e.network)
    }

    /// The registered factory for `(model, version, name)`, if any.
    /// The engine's observability path resolves live
    /// [`control_snapshot`](nfm_core::Predictor::control_snapshot)s
    /// through it.
    pub(crate) fn find_predictor(
        &self,
        model: &ModelId,
        version: ModelVersion,
        name: &str,
    ) -> Option<&Arc<dyn Predictor>> {
        self.models
            .iter()
            .find(|e| &e.id == model && e.version == version)
            .and_then(|e| e.predictors.iter().find(|(n, _)| n.as_ref() == name))
            .map(|(_, predictor)| predictor)
    }

    /// Resolves a request's options to the concrete network + predictor
    /// pair a worker must serve it with.  Routes to live versions only;
    /// staged swap candidates are reached through
    /// [`ModelRegistry::resolve_staged`].
    pub(crate) fn resolve(&self, options: &RequestOptions) -> Result<Resolved, EngineError> {
        let entry = match &options.model {
            Some(id) => self
                .live_entry(id)
                .ok_or_else(|| EngineError::UnknownModel { model: id.clone() })?,
            None => self
                .models
                .iter()
                .find(|e| e.live)
                .ok_or(EngineError::EmptyRegistry)?,
        };
        Self::resolve_in(entry, options)
    }

    /// Resolves `options` against the **staged** entry of `model` — the
    /// canary side of a hot swap.  The caller guarantees a staged entry
    /// exists.
    pub(crate) fn resolve_staged(
        &self,
        model: &ModelId,
        options: &RequestOptions,
    ) -> Result<Resolved, EngineError> {
        let entry = self
            .staged_entry(model)
            .ok_or_else(|| EngineError::UnknownModel {
                model: model.clone(),
            })?;
        Self::resolve_in(entry, options)
    }

    fn resolve_in(entry: &ModelEntry, options: &RequestOptions) -> Result<Resolved, EngineError> {
        let (name, factory) = match &options.predictor {
            Some(wanted) => entry
                .predictors
                .iter()
                .find(|(name, _)| name.as_ref() == wanted.as_str())
                .ok_or_else(|| EngineError::UnknownPredictor {
                    model: entry.id.clone(),
                    predictor: wanted.clone(),
                })?,
            None => entry
                .predictors
                .first()
                .expect("registration always installs a predictor"),
        };
        let (predictor, threshold_bits) = match options.threshold {
            None => (Arc::clone(factory), None),
            // A no-op override (θ equal to the configured threshold)
            // resolves to the registered combination itself: same
            // results either way, and workers must not materialize a
            // duplicate evaluator for it.
            Some(theta) if factory.threshold().map(f32::to_bits) == Some(theta.to_bits()) => {
                (Arc::clone(factory), None)
            }
            Some(theta) => (
                factory
                    .with_threshold(theta)
                    .ok_or_else(|| EngineError::ThresholdUnsupported {
                        model: entry.id.clone(),
                        predictor: name.as_ref().to_string(),
                    })?,
                Some(theta.to_bits()),
            ),
        };
        Ok(Resolved {
            key: ContextKey {
                model: entry.id.clone(),
                version: entry.version,
                predictor: Arc::clone(name),
                threshold_bits,
            },
            network: Arc::clone(&entry.network),
            predictor,
        })
    }

    /// Stages `network` as the next version of `model` for hot swap.
    /// The staged entry gets predictors built from `kinds` (reusing
    /// `mirror` when supplied, e.g. from an artifact) and version
    /// `live + 1`.  It is invisible to [`ModelRegistry::resolve`] until
    /// promoted.
    pub(crate) fn stage(
        &mut self,
        model: &ModelId,
        network: Arc<DeepRnn>,
        mirror: Option<Arc<BinaryNetwork>>,
        kinds: &[PredictorKind],
    ) -> Result<ModelVersion, EngineError> {
        if kinds.is_empty() {
            return Err(EngineError::InvalidConfig {
                what: "a staged model needs at least one predictor".into(),
            });
        }
        let live = self
            .live_entry(model)
            .ok_or_else(|| EngineError::UnknownModel {
                model: model.clone(),
            })?;
        let version = live.version + 1;
        if self.staged_entry(model).is_some() {
            return Err(EngineError::SwapInProgress {
                model: model.clone(),
            });
        }
        let mut entry = ModelEntry {
            id: model.clone(),
            version,
            live: false,
            network,
            predictors: Vec::new(),
            mirror,
            tuning: Vec::new(),
        };
        for kind in kinds {
            let mirror = if kind.needs_mirror() {
                Some(
                    entry
                        .mirror
                        .get_or_insert_with(|| Arc::new(BinaryNetwork::mirror(&entry.network)))
                        .clone(),
                )
            } else {
                None
            };
            let factory = kind.instantiate(&entry.network, mirror);
            Self::push_predictor(&mut entry, Arc::from(kind.name()), factory)?;
        }
        self.models.push(entry);
        Ok(version)
    }

    /// Autotunes the staged entry of `model` (no-op when none exists).
    /// Returns the number of distinct shapes tuned.
    pub(crate) fn autotune_staged(&mut self, model: &ModelId, lanes: usize) -> usize {
        match self.models.iter_mut().find(|e| &e.id == model && !e.live) {
            Some(entry) => Self::tune_entry(entry, lanes),
            None => 0,
        }
    }

    /// Promotes `model`'s staged entry to live, retiring the incumbent.
    /// The new version takes the incumbent's registration slot so
    /// default-model ordering never changes.  In-flight requests keep
    /// their `Arc` handles to the retired weights; nothing is freed
    /// until they finish.  No-op when no swap is staged.
    pub(crate) fn promote(&mut self, model: &ModelId) {
        let Some(live_idx) = self.models.iter().position(|e| &e.id == model && e.live) else {
            return;
        };
        let Some(staged_idx) = self.models.iter().position(|e| &e.id == model && !e.live) else {
            return;
        };
        self.models[staged_idx].live = true;
        self.models.swap(live_idx, staged_idx);
        self.models.remove(staged_idx);
    }

    /// Drops `model`'s staged entry (hot-swap rollback).  No-op when no
    /// swap is staged.
    pub(crate) fn discard_staged(&mut self, model: &ModelId) {
        self.models.retain(|e| &e.id != model || e.live);
    }

    /// Removes `model` entirely — live entry and any staged candidate.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownModel`] when `model` is not
    /// registered and [`EngineError::CannotEvictLast`] when it is the
    /// only live model (an engine cannot serve an empty registry).
    pub(crate) fn evict(&mut self, model: &ModelId) -> Result<(), EngineError> {
        if self.live_entry(model).is_none() {
            return Err(EngineError::UnknownModel {
                model: model.clone(),
            });
        }
        if self.len() == 1 {
            return Err(EngineError::CannotEvictLast {
                model: model.clone(),
            });
        }
        self.models.retain(|e| &e.id != model);
        Ok(())
    }

    fn live_entry(&self, id: &ModelId) -> Option<&ModelEntry> {
        self.models.iter().find(|e| &e.id == id && e.live)
    }

    fn staged_entry(&self, id: &ModelId) -> Option<&ModelEntry> {
        self.models.iter().find(|e| &e.id == id && !e.live)
    }

    fn tune_entry(entry: &mut ModelEntry, lanes: usize) -> usize {
        let backend = nfm_tensor::backend::active();
        let mut shapes: Vec<(usize, usize, usize)> = Vec::new();
        for (_, gate) in entry.network.gates() {
            let shape = (gate.neurons(), gate.input_size(), gate.hidden_size());
            if !shapes.contains(&shape) {
                shapes.push(shape);
            }
        }
        entry.tuning.clear();
        for (rows, xc, hc) in shapes {
            let plan = tune_gate_shape(rows, xc, hc, lanes, backend);
            plan.install();
            entry.tuning.push(plan);
        }
        entry.tuning.len()
    }

    fn register_entry(
        &mut self,
        id: ModelId,
        network: Arc<DeepRnn>,
        mirror: Option<Arc<BinaryNetwork>>,
    ) -> Result<(), EngineError> {
        if self.models.iter().any(|e| e.id == id) {
            return Err(EngineError::DuplicateModel { model: id });
        }
        self.models.push(ModelEntry {
            id,
            version: 1,
            live: true,
            network,
            predictors: Vec::new(),
            mirror,
            tuning: Vec::new(),
        });
        Ok(())
    }

    fn entry_mut(&mut self, id: &ModelId) -> Result<&mut ModelEntry, EngineError> {
        self.models
            .iter_mut()
            .find(|e| &e.id == id && e.live)
            .ok_or_else(|| EngineError::UnknownModel { model: id.clone() })
    }

    fn push_predictor(
        entry: &mut ModelEntry,
        name: Arc<str>,
        predictor: Arc<dyn Predictor>,
    ) -> Result<(), EngineError> {
        if entry.predictors.iter().any(|(n, _)| *n == name) {
            return Err(EngineError::DuplicatePredictor {
                model: entry.id.clone(),
                predictor: name.as_ref().to_string(),
            });
        }
        entry.predictors.push((name, predictor));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_core::BnnMemoConfig;
    use nfm_rnn::{CellKind, DeepRnnConfig};
    use nfm_tensor::rng::DeterministicRng;

    fn network(seed: u64) -> DeepRnn {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        DeepRnn::random(&DeepRnnConfig::new(CellKind::Lstm, 4, 6), &mut rng).unwrap()
    }

    #[test]
    fn duplicate_model_and_predictor_are_rejected() {
        let mut registry = ModelRegistry::new();
        registry
            .register("m", network(1), PredictorKind::Exact)
            .unwrap();
        assert_eq!(
            registry.register("m", network(2), PredictorKind::Exact),
            Err(EngineError::DuplicateModel { model: "m".into() })
        );
        assert_eq!(
            registry.add_predictor("m", PredictorKind::Exact),
            Err(EngineError::DuplicatePredictor {
                model: "m".into(),
                predictor: "exact".into(),
            })
        );
    }

    #[test]
    fn resolve_defaults_to_first_model_and_first_predictor() {
        let mut registry = ModelRegistry::new();
        registry
            .register("a", network(1), PredictorKind::Exact)
            .unwrap();
        registry
            .register(
                "b",
                network(2),
                PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
            )
            .unwrap();
        let resolved = registry.resolve(&RequestOptions::default()).unwrap();
        assert_eq!(resolved.key.model.as_str(), "a");
        assert_eq!(resolved.key.predictor.as_ref(), "exact");
        assert_eq!(resolved.key.version, 1);
        assert!(resolved.key.threshold_bits.is_none());
        let resolved = registry
            .resolve(&RequestOptions::default().model("b"))
            .unwrap();
        assert_eq!(resolved.key.model.as_str(), "b");
        assert_eq!(resolved.key.predictor.as_ref(), "bnn");
    }

    #[test]
    fn resolve_reports_typed_errors() {
        let mut registry = ModelRegistry::new();
        registry
            .register("m", network(1), PredictorKind::Exact)
            .unwrap();
        assert_eq!(
            registry
                .resolve(&RequestOptions::default().model("ghost"))
                .unwrap_err(),
            EngineError::UnknownModel {
                model: "ghost".into()
            }
        );
        assert_eq!(
            registry
                .resolve(&RequestOptions::default().predictor("bnn"))
                .unwrap_err(),
            EngineError::UnknownPredictor {
                model: "m".into(),
                predictor: "bnn".into(),
            }
        );
        assert_eq!(
            registry
                .resolve(&RequestOptions::default().threshold(0.5))
                .unwrap_err(),
            EngineError::ThresholdUnsupported {
                model: "m".into(),
                predictor: "exact".into(),
            }
        );
        assert_eq!(
            ModelRegistry::new()
                .resolve(&RequestOptions::default())
                .unwrap_err(),
            EngineError::EmptyRegistry
        );
    }

    #[test]
    fn bnn_predictors_share_one_mirror_per_model() {
        let mut registry = ModelRegistry::new();
        registry
            .register(
                "m",
                network(1),
                PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
            )
            .unwrap();
        registry
            .add_custom_predictor(
                "m",
                "bnn-loose",
                PredictorKind::Bnn(BnnMemoConfig::with_threshold(2.0)).instantiate(
                    registry.network("m").unwrap(),
                    None, // deliberately separate: custom registration path
                ),
            )
            .unwrap();
        // The built-in path shares the entry's mirror.
        registry
            .add_predictor(
                "m",
                PredictorKind::Oracle(nfm_core::OracleMemoConfig::with_threshold(0.1)),
            )
            .unwrap();
        assert_eq!(
            registry.predictor_names("m").unwrap(),
            vec!["bnn", "bnn-loose", "oracle"]
        );
        let resolved = registry
            .resolve(&RequestOptions::default().threshold(0.25))
            .unwrap();
        assert_eq!(resolved.key.threshold_bits, Some(0.25f32.to_bits()));
    }

    #[test]
    fn noop_threshold_override_resolves_to_the_registered_combination() {
        let mut registry = ModelRegistry::new();
        registry
            .register(
                "m",
                network(1),
                PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
            )
            .unwrap();
        let base = registry.resolve(&RequestOptions::default()).unwrap();
        // θ equal to the configured threshold is not an override:
        // same context key, same factory — workers never build a
        // duplicate evaluator for it.
        let noop = registry
            .resolve(&RequestOptions::default().threshold(0.5))
            .unwrap();
        assert_eq!(noop.key, base.key);
        assert!(noop.key.threshold_bits.is_none());
        assert!(Arc::ptr_eq(&noop.predictor, &base.predictor));
        // A genuinely different θ still keys its own context.
        let real = registry
            .resolve(&RequestOptions::default().threshold(0.75))
            .unwrap();
        assert_eq!(real.key.threshold_bits, Some(0.75f32.to_bits()));
    }

    #[test]
    fn stage_promote_and_rollback_manage_versions() {
        let mut registry = ModelRegistry::new();
        registry
            .register("a", network(1), PredictorKind::Exact)
            .unwrap();
        registry
            .register("b", network(2), PredictorKind::Exact)
            .unwrap();
        assert_eq!(registry.version("a"), Some(1));
        assert_eq!(registry.staged_version("a"), None);

        // Stage v2 of "a": invisible to resolve, visible to
        // resolve_staged.
        let v = registry
            .stage(
                &"a".into(),
                Arc::new(network(3)),
                None,
                &[PredictorKind::Exact],
            )
            .unwrap();
        assert_eq!(v, 2);
        assert_eq!(registry.staged_version("a"), Some(2));
        assert_eq!(registry.version("a"), Some(1));
        assert_eq!(registry.len(), 2, "staged entries do not count");
        let live = registry.resolve(&RequestOptions::default()).unwrap();
        assert_eq!(live.key.version, 1);
        let staged = registry
            .resolve_staged(&"a".into(), &RequestOptions::default())
            .unwrap();
        assert_eq!(staged.key.version, 2);

        // A second stage while one is pending is a typed error.
        assert!(matches!(
            registry.stage(
                &"a".into(),
                Arc::new(network(4)),
                None,
                &[PredictorKind::Exact]
            ),
            Err(EngineError::SwapInProgress { .. })
        ));

        // Rollback: staged entry vanishes, live untouched.
        registry.discard_staged(&"a".into());
        assert_eq!(registry.staged_version("a"), None);
        assert_eq!(registry.version("a"), Some(1));

        // Promote: staged becomes live, version advances, default-model
        // ordering is preserved.
        registry
            .stage(
                &"a".into(),
                Arc::new(network(3)),
                None,
                &[PredictorKind::Exact],
            )
            .unwrap();
        registry.promote(&"a".into());
        assert_eq!(registry.version("a"), Some(2));
        assert_eq!(registry.staged_version("a"), None);
        assert_eq!(registry.default_model().unwrap().as_str(), "a");
        let resolved = registry.resolve(&RequestOptions::default()).unwrap();
        assert_eq!(resolved.key.version, 2);
    }

    #[test]
    fn evict_requires_known_model_and_refuses_the_last() {
        let mut registry = ModelRegistry::new();
        registry
            .register("a", network(1), PredictorKind::Exact)
            .unwrap();
        assert!(matches!(
            registry.evict(&"ghost".into()),
            Err(EngineError::UnknownModel { .. })
        ));
        assert!(matches!(
            registry.evict(&"a".into()),
            Err(EngineError::CannotEvictLast { .. })
        ));
        registry
            .register("b", network(2), PredictorKind::Exact)
            .unwrap();
        registry.evict(&"a".into()).unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.default_model().unwrap().as_str(), "b");
        assert!(registry.version("a").is_none());
    }

    #[test]
    fn stage_errors_are_typed() {
        let mut registry = ModelRegistry::new();
        registry
            .register("a", network(1), PredictorKind::Exact)
            .unwrap();
        assert!(matches!(
            registry.stage(
                &"ghost".into(),
                Arc::new(network(2)),
                None,
                &[PredictorKind::Exact]
            ),
            Err(EngineError::UnknownModel { .. })
        ));
        assert!(matches!(
            registry.stage(&"a".into(), Arc::new(network(2)), None, &[]),
            Err(EngineError::InvalidConfig { .. })
        ));
    }
}
