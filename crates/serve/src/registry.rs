//! The model registry: which models an [`Engine`](crate::Engine)
//! serves, and which predictors each model can be served under.
//!
//! A registry maps a [`ModelId`] to one network plus a named set of
//! [`Predictor`] factories.  Everything inside is immutable and
//! `Arc`-shared once the engine is built: workers clone `Arc` handles,
//! never weights or mirrors (one [`BinaryNetwork`] mirror is prebuilt
//! per model at registration and shared by every BNN predictor and
//! every worker).
//!
//! Requests pick a model and predictor through
//! [`RequestOptions`]; submission resolves the options against the
//! registry **synchronously**, so unknown ids and unsupported
//! overrides surface as typed [`EngineError`]s from
//! [`Engine::submit`](crate::Engine::submit), never mid-flight.

use crate::engine::EngineError;
use crate::request::RequestOptions;
use nfm_bnn::BinaryNetwork;
use nfm_core::{Predictor, PredictorKind};
use nfm_rnn::DeepRnn;
use std::fmt;
use std::sync::Arc;

/// Identifies a registered model.  Cheap to clone (shared string);
/// build one from any string type: `ModelId::from("kws")`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelId(Arc<str>);

impl ModelId {
    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ModelId {
    fn from(s: &str) -> Self {
        ModelId(Arc::from(s))
    }
}

impl From<String> for ModelId {
    fn from(s: String) -> Self {
        ModelId(Arc::from(s))
    }
}

impl From<&ModelId> for ModelId {
    fn from(id: &ModelId) -> Self {
        id.clone()
    }
}

/// One registered model: the network plus its named predictors.
#[derive(Debug)]
pub(crate) struct ModelEntry {
    pub(crate) id: ModelId,
    pub(crate) network: Arc<DeepRnn>,
    /// `(name, factory)` in registration order; the first is the
    /// model's default.
    pub(crate) predictors: Vec<(Arc<str>, Arc<dyn Predictor>)>,
    /// The model's binary mirror, built once when the first BNN
    /// predictor is registered and shared from then on.
    mirror: Option<Arc<BinaryNetwork>>,
}

/// A request resolved against the registry: the exact network and
/// predictor factory the worker must use, plus the context key workers
/// group lane schedulers by.
#[derive(Debug, Clone)]
pub(crate) struct Resolved {
    pub(crate) key: ContextKey,
    pub(crate) network: Arc<DeepRnn>,
    pub(crate) predictor: Arc<dyn Predictor>,
}

/// Identity of one execution context on a worker: requests with equal
/// keys share a lane scheduler and an evaluator (same model, same
/// predictor, same effective threshold).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ContextKey {
    pub(crate) model: ModelId,
    pub(crate) predictor: Arc<str>,
    /// Bit pattern of the per-request threshold override, `None` when
    /// the predictor's configured threshold applies.
    pub(crate) threshold_bits: Option<u32>,
}

/// Maps [`ModelId`]s to networks and named [`Predictor`] sets.
///
/// The first registered model is the engine's **default model** (used
/// by requests that name none — the entire single-model API), and each
/// model's first predictor is its **default predictor**.
///
/// ```
/// use nfm_serve::{ModelRegistry, PredictorKind};
/// use nfm_core::BnnMemoConfig;
/// use nfm_rnn::{CellKind, DeepRnn, DeepRnnConfig};
/// use nfm_tensor::rng::DeterministicRng;
///
/// let mut rng = DeterministicRng::seed_from_u64(3);
/// let kws = DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, 4, 6), &mut rng).unwrap();
/// let asr = DeepRnn::random(&DeepRnnConfig::new(CellKind::Lstm, 5, 8), &mut rng).unwrap();
/// let mut registry = ModelRegistry::new();
/// registry.register("kws", kws, PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5))).unwrap();
/// registry.register("asr", asr, PredictorKind::Exact).unwrap();
/// registry.add_predictor("asr", PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.3))).unwrap();
/// assert_eq!(registry.default_model().unwrap().as_str(), "kws");
/// assert_eq!(registry.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: Vec<ModelEntry>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry { models: Vec::new() }
    }

    /// Registers `network` under `id` with a built-in default
    /// predictor.  The first registration becomes the engine's default
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DuplicateModel`] when `id` is taken.
    pub fn register(
        &mut self,
        id: impl Into<ModelId>,
        network: impl Into<Arc<DeepRnn>>,
        predictor: PredictorKind,
    ) -> Result<(), EngineError> {
        let id = id.into();
        self.register_entry(id.clone(), network.into())?;
        self.add_predictor(&id, predictor)
    }

    /// Registers `network` under `id` with a custom [`Predictor`]
    /// factory as its default, filed under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DuplicateModel`] when `id` is taken.
    pub fn register_custom(
        &mut self,
        id: impl Into<ModelId>,
        network: impl Into<Arc<DeepRnn>>,
        name: impl Into<Arc<str>>,
        predictor: Arc<dyn Predictor>,
    ) -> Result<(), EngineError> {
        let id = id.into();
        self.register_entry(id.clone(), network.into())?;
        self.add_custom_predictor(&id, name, predictor)
    }

    /// Adds a built-in predictor to an already-registered model, filed
    /// under [`PredictorKind::name`].  A BNN kind reuses the model's
    /// prebuilt mirror (building it on first need).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownModel`] when `model` is not
    /// registered and [`EngineError::DuplicatePredictor`] when the name
    /// is taken for this model.
    pub fn add_predictor(
        &mut self,
        model: impl Into<ModelId>,
        predictor: PredictorKind,
    ) -> Result<(), EngineError> {
        let model = model.into();
        let entry = self.entry_mut(&model)?;
        let mirror = if predictor.needs_mirror() {
            Some(
                entry
                    .mirror
                    .get_or_insert_with(|| Arc::new(BinaryNetwork::mirror(&entry.network)))
                    .clone(),
            )
        } else {
            None
        };
        let factory = predictor.instantiate(&entry.network, mirror);
        Self::push_predictor(entry, Arc::from(predictor.name()), factory)
    }

    /// Adds a custom predictor to an already-registered model under
    /// `name`.
    ///
    /// # Errors
    ///
    /// Same as [`ModelRegistry::add_predictor`].
    pub fn add_custom_predictor(
        &mut self,
        model: impl Into<ModelId>,
        name: impl Into<Arc<str>>,
        predictor: Arc<dyn Predictor>,
    ) -> Result<(), EngineError> {
        let model = model.into();
        let entry = self.entry_mut(&model)?;
        Self::push_predictor(entry, name.into(), predictor)
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model is registered (an empty registry cannot build
    /// an engine).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The default model: the first registered, `None` while empty.
    pub fn default_model(&self) -> Option<&ModelId> {
        self.models.first().map(|e| &e.id)
    }

    /// Registered model ids, in registration order.
    pub fn model_ids(&self) -> impl Iterator<Item = &ModelId> {
        self.models.iter().map(|e| &e.id)
    }

    /// The predictor names registered for `model`, default first
    /// (`None` for an unknown model).
    pub fn predictor_names(&self, model: impl Into<ModelId>) -> Option<Vec<&str>> {
        let model = model.into();
        self.models
            .iter()
            .find(|e| e.id == model)
            .map(|e| e.predictors.iter().map(|(n, _)| n.as_ref()).collect())
    }

    /// The network registered under `model`.
    pub fn network(&self, model: impl Into<ModelId>) -> Option<&Arc<DeepRnn>> {
        let model = model.into();
        self.models
            .iter()
            .find(|e| e.id == model)
            .map(|e| &e.network)
    }

    /// The registered factory for `(model, name)`, if any.  The
    /// engine's observability path resolves live
    /// [`control_snapshot`](nfm_core::Predictor::control_snapshot)s
    /// through it.
    pub(crate) fn find_predictor(
        &self,
        model: &ModelId,
        name: &str,
    ) -> Option<&Arc<dyn Predictor>> {
        self.models
            .iter()
            .find(|e| &e.id == model)
            .and_then(|e| e.predictors.iter().find(|(n, _)| n.as_ref() == name))
            .map(|(_, predictor)| predictor)
    }

    /// Resolves a request's options to the concrete network + predictor
    /// pair a worker must serve it with.
    pub(crate) fn resolve(&self, options: &RequestOptions) -> Result<Resolved, EngineError> {
        let entry = match &options.model {
            Some(id) => self
                .models
                .iter()
                .find(|e| &e.id == id)
                .ok_or_else(|| EngineError::UnknownModel { model: id.clone() })?,
            None => self.models.first().ok_or(EngineError::EmptyRegistry)?,
        };
        let (name, factory) = match &options.predictor {
            Some(wanted) => entry
                .predictors
                .iter()
                .find(|(name, _)| name.as_ref() == wanted.as_str())
                .ok_or_else(|| EngineError::UnknownPredictor {
                    model: entry.id.clone(),
                    predictor: wanted.clone(),
                })?,
            None => entry
                .predictors
                .first()
                .expect("registration always installs a predictor"),
        };
        let (predictor, threshold_bits) = match options.threshold {
            None => (Arc::clone(factory), None),
            // A no-op override (θ equal to the configured threshold)
            // resolves to the registered combination itself: same
            // results either way, and workers must not materialize a
            // duplicate evaluator for it.
            Some(theta) if factory.threshold().map(f32::to_bits) == Some(theta.to_bits()) => {
                (Arc::clone(factory), None)
            }
            Some(theta) => (
                factory
                    .with_threshold(theta)
                    .ok_or_else(|| EngineError::ThresholdUnsupported {
                        model: entry.id.clone(),
                        predictor: name.as_ref().to_string(),
                    })?,
                Some(theta.to_bits()),
            ),
        };
        Ok(Resolved {
            key: ContextKey {
                model: entry.id.clone(),
                predictor: Arc::clone(name),
                threshold_bits,
            },
            network: Arc::clone(&entry.network),
            predictor,
        })
    }

    fn register_entry(&mut self, id: ModelId, network: Arc<DeepRnn>) -> Result<(), EngineError> {
        if self.models.iter().any(|e| e.id == id) {
            return Err(EngineError::DuplicateModel { model: id });
        }
        self.models.push(ModelEntry {
            id,
            network,
            predictors: Vec::new(),
            mirror: None,
        });
        Ok(())
    }

    fn entry_mut(&mut self, id: &ModelId) -> Result<&mut ModelEntry, EngineError> {
        self.models
            .iter_mut()
            .find(|e| &e.id == id)
            .ok_or_else(|| EngineError::UnknownModel { model: id.clone() })
    }

    fn push_predictor(
        entry: &mut ModelEntry,
        name: Arc<str>,
        predictor: Arc<dyn Predictor>,
    ) -> Result<(), EngineError> {
        if entry.predictors.iter().any(|(n, _)| *n == name) {
            return Err(EngineError::DuplicatePredictor {
                model: entry.id.clone(),
                predictor: name.as_ref().to_string(),
            });
        }
        entry.predictors.push((name, predictor));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_core::BnnMemoConfig;
    use nfm_rnn::{CellKind, DeepRnnConfig};
    use nfm_tensor::rng::DeterministicRng;

    fn network(seed: u64) -> DeepRnn {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        DeepRnn::random(&DeepRnnConfig::new(CellKind::Lstm, 4, 6), &mut rng).unwrap()
    }

    #[test]
    fn duplicate_model_and_predictor_are_rejected() {
        let mut registry = ModelRegistry::new();
        registry
            .register("m", network(1), PredictorKind::Exact)
            .unwrap();
        assert_eq!(
            registry.register("m", network(2), PredictorKind::Exact),
            Err(EngineError::DuplicateModel { model: "m".into() })
        );
        assert_eq!(
            registry.add_predictor("m", PredictorKind::Exact),
            Err(EngineError::DuplicatePredictor {
                model: "m".into(),
                predictor: "exact".into(),
            })
        );
    }

    #[test]
    fn resolve_defaults_to_first_model_and_first_predictor() {
        let mut registry = ModelRegistry::new();
        registry
            .register("a", network(1), PredictorKind::Exact)
            .unwrap();
        registry
            .register(
                "b",
                network(2),
                PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
            )
            .unwrap();
        let resolved = registry.resolve(&RequestOptions::default()).unwrap();
        assert_eq!(resolved.key.model.as_str(), "a");
        assert_eq!(resolved.key.predictor.as_ref(), "exact");
        assert!(resolved.key.threshold_bits.is_none());
        let resolved = registry
            .resolve(&RequestOptions::default().model("b"))
            .unwrap();
        assert_eq!(resolved.key.model.as_str(), "b");
        assert_eq!(resolved.key.predictor.as_ref(), "bnn");
    }

    #[test]
    fn resolve_reports_typed_errors() {
        let mut registry = ModelRegistry::new();
        registry
            .register("m", network(1), PredictorKind::Exact)
            .unwrap();
        assert_eq!(
            registry
                .resolve(&RequestOptions::default().model("ghost"))
                .unwrap_err(),
            EngineError::UnknownModel {
                model: "ghost".into()
            }
        );
        assert_eq!(
            registry
                .resolve(&RequestOptions::default().predictor("bnn"))
                .unwrap_err(),
            EngineError::UnknownPredictor {
                model: "m".into(),
                predictor: "bnn".into(),
            }
        );
        assert_eq!(
            registry
                .resolve(&RequestOptions::default().threshold(0.5))
                .unwrap_err(),
            EngineError::ThresholdUnsupported {
                model: "m".into(),
                predictor: "exact".into(),
            }
        );
        assert_eq!(
            ModelRegistry::new()
                .resolve(&RequestOptions::default())
                .unwrap_err(),
            EngineError::EmptyRegistry
        );
    }

    #[test]
    fn bnn_predictors_share_one_mirror_per_model() {
        let mut registry = ModelRegistry::new();
        registry
            .register(
                "m",
                network(1),
                PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
            )
            .unwrap();
        registry
            .add_custom_predictor(
                "m",
                "bnn-loose",
                PredictorKind::Bnn(BnnMemoConfig::with_threshold(2.0)).instantiate(
                    registry.network("m").unwrap(),
                    None, // deliberately separate: custom registration path
                ),
            )
            .unwrap();
        // The built-in path shares the entry's mirror.
        registry
            .add_predictor(
                "m",
                PredictorKind::Oracle(nfm_core::OracleMemoConfig::with_threshold(0.1)),
            )
            .unwrap();
        assert_eq!(
            registry.predictor_names("m").unwrap(),
            vec!["bnn", "bnn-loose", "oracle"]
        );
        let resolved = registry
            .resolve(&RequestOptions::default().threshold(0.25))
            .unwrap();
        assert_eq!(resolved.key.threshold_bits, Some(0.25f32.to_bits()));
    }

    #[test]
    fn noop_threshold_override_resolves_to_the_registered_combination() {
        let mut registry = ModelRegistry::new();
        registry
            .register(
                "m",
                network(1),
                PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
            )
            .unwrap();
        let base = registry.resolve(&RequestOptions::default()).unwrap();
        // θ equal to the configured threshold is not an override:
        // same context key, same factory — workers never build a
        // duplicate evaluator for it.
        let noop = registry
            .resolve(&RequestOptions::default().threshold(0.5))
            .unwrap();
        assert_eq!(noop.key, base.key);
        assert!(noop.key.threshold_bits.is_none());
        assert!(Arc::ptr_eq(&noop.predictor, &base.predictor));
        // A genuinely different θ still keys its own context.
        let real = registry
            .resolve(&RequestOptions::default().threshold(0.75))
            .unwrap();
        assert_eq!(real.key.threshold_bits, Some(0.75f32.to_bits()));
    }
}
