//! The workload-level façade: `MemoizedRunner` as a thin wrapper over
//! the request [`Engine`](crate::Engine).

use crate::engine::EngineBuilder;
use crate::request::{CompletionStatus, InferenceRequest};
use nfm_core::config::{BnnMemoConfig, OracleMemoConfig};
use nfm_core::ReuseStats;
use nfm_rnn::{DeepRnn, Result as RnnResult, RnnError};
use nfm_tensor::Vector;

pub use nfm_core::PredictorKind;

/// Anything that can be run through the memoization schemes: a network
/// plus a set of input sequences.
///
/// The `nfm-workloads` crate implements this for the four Table 1
/// networks; tests implement it for small ad-hoc models.
pub trait InferenceWorkload {
    /// The network to evaluate.
    fn network(&self) -> &DeepRnn;

    /// The input sequences to process (each is one utterance / review /
    /// sentence, matching the batch-of-one inference regime of the paper).
    fn input_sequences(&self) -> &[Vec<Vector>];
}

/// The result of running a workload: per-sequence outputs plus the
/// aggregated reuse statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Network outputs, one `Vec<Vector>` per input sequence.
    pub outputs: Vec<Vec<Vector>>,
    /// Aggregated reuse statistics across all sequences.
    pub stats: ReuseStats,
}

impl RunOutcome {
    /// Fraction of neuron evaluations avoided, in `[0, 1]`.
    pub fn reuse_fraction(&self) -> f64 {
        self.stats.reuse_fraction()
    }

    /// Computation reuse as a percentage (the paper's unit).
    pub fn reuse_percent(&self) -> f64 {
        self.stats.reuse_percent()
    }
}

/// Estimated work (in weight-MAC units: one fetched weight multiplied
/// and accumulated once) below which [`MemoizedRunner::run`] stays on a
/// single engine worker: spawning and joining worker threads plus
/// merging their statistics costs tens of microseconds, so small runs
/// lose more to spawn overhead than they gain from extra cores (the
/// `runner/parallel` regression in early `BENCH_inference.json`
/// snapshots).  At roughly one MAC per nanosecond per core this
/// threshold corresponds to tens of milliseconds of single-core work —
/// comfortably past the spawn-amortization point.
///
/// [`MemoizedRunner::with_workers`] bypasses the heuristic entirely: an
/// explicit worker count always fans out.
const SPAWN_AMORTIZATION_MACS: u64 = 50_000_000;

/// Estimated cost of running `sequences` through `network`, in
/// weight-MAC units (`total timesteps x recurrent weights per step`).
/// Memoized predictors skip some of this work, but the estimate only
/// gates the spawn decision and an upper bound is the safe side.
fn estimated_work_macs(network: &DeepRnn, sequences: &[Vec<Vector>]) -> u64 {
    let per_step = network.weight_count() as u64;
    let timesteps: u64 = sequences.iter().map(|s| s.len() as u64).sum();
    timesteps.saturating_mul(per_step)
}

/// Runs a workload end-to-end under a chosen predictor — a thin
/// wrapper over the request [`Engine`](crate::Engine): every sequence
/// becomes one [`InferenceRequest`], and the outcome is the responses
/// reassembled in submission order with their statistics merged.
///
/// [`MemoizedRunner::run`] processes sequences independently (one lane
/// per worker, the classic per-sequence hot path), fanned out over
/// engine workers when the estimated work amortizes the threads —
/// outputs and statistics are *identical* to a sequential run either
/// way.  [`MemoizedRunner::run_batched`] gives the engine `batch_size`
/// lanes so gates evaluate many sequences per weight stream (the
/// unified lane scheduler's block policy with mid-wave refill on
/// unidirectional stacks, layer-lockstep waves otherwise).
///
/// [`MemoizedRunner::sequential`] remains as the
/// deterministic-scheduling escape hatch: exactly one engine worker,
/// requests processed in submission order.  Note that every `run` call
/// now builds a transient engine — one worker thread spawn/join plus
/// an owned copy of each input sequence — so callers timing the run
/// itself (figure experiments, the `runner/*` bench entries) measure
/// that small constant alongside inference;
/// [`MemoizedRunner::with_workers`] forces a worker count regardless
/// of the heuristic.
///
/// ```
/// use nfm_serve::{InferenceWorkload, MemoizedRunner};
/// use nfm_core::BnnMemoConfig;
/// use nfm_rnn::{CellKind, DeepRnn, DeepRnnConfig};
/// use nfm_tensor::rng::DeterministicRng;
/// use nfm_tensor::Vector;
///
/// struct Tiny { net: DeepRnn, seqs: Vec<Vec<Vector>> }
/// impl InferenceWorkload for Tiny {
///     fn network(&self) -> &DeepRnn { &self.net }
///     fn input_sequences(&self) -> &[Vec<Vector>] { &self.seqs }
/// }
///
/// let mut rng = DeterministicRng::seed_from_u64(5);
/// let net = DeepRnn::random(&DeepRnnConfig::new(CellKind::Lstm, 4, 6), &mut rng).unwrap();
/// let seqs = vec![(0..8).map(|t| Vector::from_fn(4, |i| (t + i) as f32 * 0.05)).collect()];
/// let workload = Tiny { net, seqs };
/// let outcome = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(0.5)).run(&workload).unwrap();
/// assert_eq!(outcome.outputs.len(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoizedRunner {
    predictor: PredictorKind,
    parallel: bool,
    /// Explicit worker-count override (`None` = available parallelism).
    workers: Option<usize>,
}

impl MemoizedRunner {
    /// A runner that performs exact inference (the baseline).
    pub fn exact() -> Self {
        MemoizedRunner {
            predictor: PredictorKind::Exact,
            parallel: true,
            workers: None,
        }
    }

    /// A runner using the oracle predictor.
    pub fn oracle(config: OracleMemoConfig) -> Self {
        MemoizedRunner {
            predictor: PredictorKind::Oracle(config),
            parallel: true,
            workers: None,
        }
    }

    /// A runner using the BNN predictor.
    pub fn bnn(config: BnnMemoConfig) -> Self {
        MemoizedRunner {
            predictor: PredictorKind::Bnn(config),
            parallel: true,
            workers: None,
        }
    }

    /// Disables the cross-sequence parallel fan-out (exactly one
    /// engine worker).  Results are bitwise identical either way; use
    /// this when the caller wants one compute thread and fully
    /// deterministic scheduling.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Overrides the engine worker count used by [`MemoizedRunner::run`]
    /// (clamped to the number of sequences).  Useful to exercise or
    /// bound the threaded path regardless of the host's core count;
    /// results stay identical for any worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Whether the runner fans sequences out across cores.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// The predictor this runner applies.
    pub fn predictor(&self) -> PredictorKind {
        self.predictor
    }

    /// Runs every sequence of `workload` through its network.
    ///
    /// # Errors
    ///
    /// Propagates any inference error (shape mismatches, empty
    /// sequences).
    pub fn run(&self, workload: &impl InferenceWorkload) -> RnnResult<RunOutcome> {
        let network = workload.network();
        let sequences = workload.input_sequences();
        let workers = if self.parallel {
            match self.workers {
                // Explicit override: always fan out as requested.
                Some(n) => n.min(sequences.len().max(1)),
                // Auto: only spawn when the work amortizes the threads.
                None if estimated_work_macs(network, sequences) < SPAWN_AMORTIZATION_MACS => 1,
                None => std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(sequences.len().max(1)),
            }
        } else {
            1
        };
        self.run_with_engine(network, sequences, 1, workers)
    }

    /// Runs every sequence of `workload` with **multi-sequence batched
    /// inference**: the engine gets `batch_size` lanes, so up to that
    /// many sequences are evaluated through each gate invocation at
    /// once and one weight stream serves all of them.
    ///
    /// On unidirectional stacks the lanes are driven by the unified
    /// [`LaneScheduler`](nfm_rnn::LaneScheduler) under
    /// [`RefillPolicy::Block`](nfm_rnn::RefillPolicy): a lane that
    /// finishes its sequence is refilled from the queue *immediately* —
    /// mid-wave — so ragged-length traffic keeps every lane busy, and
    /// all lanes' inputs are hoisted per 8-step block.  Bidirectional
    /// stacks fall back to layer-lockstep waves
    /// ([`DeepRnn::run_batch`]) with refill at wave boundaries.
    ///
    /// Outputs, reuse statistics and memo-hit behavior are
    /// **bit-identical** to [`MemoizedRunner::run`] for every
    /// predictor: memoizing evaluators keep one
    /// [`MemoTable`](nfm_core::MemoTable) per lane, reset when a lane
    /// admits a new sequence, exactly like the per-sequence path.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] when `batch_size == 0` (the
    /// accepted range is `batch_size >= 1`; `1` degenerates to
    /// sequential per-sequence inference), and propagates any inference
    /// error (shape mismatches, empty sequences).
    pub fn run_batched(
        &self,
        workload: &impl InferenceWorkload,
        batch_size: usize,
    ) -> RnnResult<RunOutcome> {
        if batch_size == 0 {
            return Err(RnnError::InvalidConfig {
                what: "run_batched requires batch_size >= 1 (0 lanes cannot make progress); \
                       pass 1 for sequential per-sequence inference"
                    .into(),
            });
        }
        self.run_with_engine(
            workload.network(),
            workload.input_sequences(),
            batch_size,
            1,
        )
    }

    /// Shared wrapper core: submit every sequence to a fresh engine,
    /// drain it, and reassemble the responses in submission order.
    ///
    /// The transient engine owns its inputs, so each call copies the
    /// network's weights once (an `Arc` hands them to the workers) and
    /// each sequence once — a constant that one weight-pass of
    /// inference already dwarfs; long-lived callers that care should
    /// hold an [`Engine`](crate::Engine) directly.
    fn run_with_engine(
        &self,
        network: &DeepRnn,
        sequences: &[Vec<Vector>],
        lanes: usize,
        workers: usize,
    ) -> RnnResult<RunOutcome> {
        if sequences.is_empty() {
            return Ok(RunOutcome {
                outputs: Vec::new(),
                stats: ReuseStats::new(),
            });
        }
        // Paused start: every request is queued before compute begins,
        // so wave grouping (bidirectional stacks) matches the chunk
        // boundaries of a pre-collected workload.
        let engine = EngineBuilder::new(network.clone(), self.predictor)
            .lanes(lanes)
            .workers(workers.min(sequences.len()).max(1))
            .queue_capacity(sequences.len())
            .start_paused()
            .build()
            .map_err(RnnError::from)?;
        for (i, sequence) in sequences.iter().enumerate() {
            engine
                .submit(InferenceRequest::new(i as u64, sequence.clone()))
                .map_err(RnnError::from)?;
        }
        // Drain (which resumes the paused workers) before reading the
        // error slot, so any failure recorded mid-run is visible; the
        // drop then joins the worker threads.
        let mut responses = engine.drain();
        let worker_error = engine.last_error();
        drop(engine);
        debug_assert_eq!(responses.len(), sequences.len());
        responses.sort_by_key(|r| r.id);
        let mut outputs = Vec::with_capacity(responses.len());
        let mut stats = ReuseStats::new();
        for response in responses {
            if response.status != CompletionStatus::Done {
                let cause = worker_error
                    .as_deref()
                    .map(|e| format!(": {e}"))
                    .unwrap_or_default();
                return Err(RnnError::InvalidConfig {
                    what: format!(
                        "engine aborted request {} ({:?}){cause}",
                        response.id, response.status
                    ),
                });
            }
            stats.merge(&response.stats);
            outputs.push(response.outputs);
        }
        Ok(RunOutcome { outputs, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_rnn::{CellKind, DeepRnnConfig};
    use nfm_tensor::rng::DeterministicRng;

    struct Tiny {
        net: DeepRnn,
        seqs: Vec<Vec<Vector>>,
    }

    impl InferenceWorkload for Tiny {
        fn network(&self) -> &DeepRnn {
            &self.net
        }
        fn input_sequences(&self) -> &[Vec<Vector>] {
            &self.seqs
        }
    }

    fn workload(sequences: usize, len: usize) -> Tiny {
        let mut rng = DeterministicRng::seed_from_u64(17);
        let net = DeepRnn::random(&DeepRnnConfig::new(CellKind::Lstm, 5, 8), &mut rng).unwrap();
        let seqs = (0..sequences)
            .map(|_| {
                let mut x = Vector::from_fn(5, |_| rng.uniform(-0.5, 0.5));
                (0..len)
                    .map(|_| {
                        x = x
                            .add(&Vector::from_fn(5, |_| rng.uniform(-0.05, 0.05)))
                            .unwrap();
                        x.clone()
                    })
                    .collect()
            })
            .map(|v: Vec<Vector>| v)
            .collect::<Vec<_>>()
            .into_iter()
            .enumerate()
            .map(|(i, mut v)| {
                // Slightly perturb each sequence so they are distinct.
                if i > 0 {
                    for x in &mut v {
                        *x = x.scale(1.0 + 0.01 * i as f32);
                    }
                }
                v
            })
            .collect();
        Tiny { net, seqs }
    }

    #[test]
    fn exact_runner_has_zero_reuse() {
        let w = workload(2, 10);
        let outcome = MemoizedRunner::exact().run(&w).unwrap();
        assert_eq!(outcome.outputs.len(), 2);
        assert_eq!(outcome.reuse_fraction(), 0.0);
        assert_eq!(
            outcome.stats.evaluations(),
            (2 * 10 * w.net.neuron_evaluations_per_step()) as u64
        );
    }

    #[test]
    fn oracle_and_bnn_runners_report_reuse() {
        let w = workload(2, 20);
        let oracle = MemoizedRunner::oracle(OracleMemoConfig::with_threshold(0.5))
            .run(&w)
            .unwrap();
        let bnn = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(2.0))
            .run(&w)
            .unwrap();
        assert!(oracle.reuse_fraction() > 0.0);
        assert!(bnn.reuse_fraction() > 0.0);
        assert!(oracle.reuse_percent() <= 100.0);
        assert!(bnn.reuse_percent() <= 100.0);
    }

    #[test]
    fn predictor_kind_is_observable() {
        let r = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(0.1));
        assert!(matches!(r.predictor(), PredictorKind::Bnn(_)));
        assert!(matches!(
            MemoizedRunner::exact().predictor(),
            PredictorKind::Exact
        ));
        assert!(matches!(
            MemoizedRunner::oracle(OracleMemoConfig::default()).predictor(),
            PredictorKind::Oracle(_)
        ));
    }

    #[test]
    fn exact_and_zero_threshold_oracle_agree() {
        let w = workload(1, 12);
        let exact = MemoizedRunner::exact().run(&w).unwrap();
        let oracle = MemoizedRunner::oracle(OracleMemoConfig::with_threshold(0.0))
            .run(&w)
            .unwrap();
        assert_eq!(exact.outputs, oracle.outputs);
    }

    #[test]
    fn parallel_and_sequential_runs_are_identical() {
        // More sequences than cores in most CI boxes, with every
        // predictor kind.
        let w = workload(7, 12);
        for runner in [
            MemoizedRunner::exact(),
            MemoizedRunner::oracle(OracleMemoConfig::with_threshold(0.4)),
            MemoizedRunner::bnn(BnnMemoConfig::with_threshold(1.0)),
        ] {
            assert!(runner.is_parallel());
            let par = runner.run(&w).unwrap();
            let seq = runner.sequential().run(&w).unwrap();
            assert!(!runner.sequential().is_parallel());
            assert_eq!(par.outputs, seq.outputs);
            assert_eq!(par.stats, seq.stats);
            // Any explicit worker count must not change the results,
            // including counts above the sequence count.
            for workers in [2usize, 3, 16] {
                let forced = runner.with_workers(workers).run(&w).unwrap();
                assert_eq!(forced.outputs, seq.outputs);
                assert_eq!(forced.stats, seq.stats);
            }
        }
    }

    #[test]
    fn empty_sequence_errors_propagate_from_workers() {
        let mut w = workload(3, 6);
        w.seqs[1].clear();
        assert!(MemoizedRunner::exact().run(&w).is_err());
        assert!(MemoizedRunner::exact().sequential().run(&w).is_err());
        assert!(MemoizedRunner::exact().run_batched(&w, 2).is_err());
    }

    #[test]
    fn estimated_work_scales_with_timesteps_and_weights() {
        let w = workload(2, 10);
        let per_step = w.net.weight_count() as u64;
        assert_eq!(estimated_work_macs(&w.net, &w.seqs), 2 * 10 * per_step);
        assert_eq!(estimated_work_macs(&w.net, &[]), 0);
        // Small test workloads sit far below the spawn-amortization
        // threshold, so the auto-parallel path must fall back to one
        // worker (with_workers still forces a fan-out).
        assert!(estimated_work_macs(&w.net, &w.seqs) < SPAWN_AMORTIZATION_MACS);
    }

    #[test]
    fn small_runs_fall_back_to_one_worker_but_stay_identical() {
        // Below the threshold the auto runner must behave exactly like
        // the sequential runner (it IS a one-worker engine), and the
        // explicit override must still match bit for bit.
        let w = workload(5, 8);
        let auto = MemoizedRunner::exact().run(&w).unwrap();
        let seq = MemoizedRunner::exact().sequential().run(&w).unwrap();
        let forced = MemoizedRunner::exact().with_workers(3).run(&w).unwrap();
        assert_eq!(auto.outputs, seq.outputs);
        assert_eq!(auto.stats, seq.stats);
        assert_eq!(forced.outputs, seq.outputs);
        assert_eq!(forced.stats, seq.stats);
    }

    #[test]
    fn run_batched_matches_run_for_every_predictor() {
        let w = workload(5, 12);
        for runner in [
            MemoizedRunner::exact(),
            MemoizedRunner::oracle(OracleMemoConfig::with_threshold(0.4)),
            MemoizedRunner::bnn(BnnMemoConfig::with_threshold(1.0)),
        ] {
            let reference = runner.sequential().run(&w).unwrap();
            // 2 leaves lanes draining at different steps over 5
            // sequences; 8 exceeds the sequence count.
            for batch in [1usize, 2, 5, 8] {
                let batched = runner.run_batched(&w, batch).unwrap();
                assert_eq!(batched.outputs, reference.outputs, "batch={batch}");
                assert_eq!(batched.stats, reference.stats, "batch={batch}");
            }
        }
    }

    #[test]
    fn run_batched_rejects_zero_lanes() {
        let w = workload(2, 6);
        let err = MemoizedRunner::exact().run_batched(&w, 0).unwrap_err();
        assert!(matches!(err, RnnError::InvalidConfig { .. }));
        assert!(err.to_string().contains("batch_size >= 1"), "{err}");
    }

    #[test]
    fn empty_workload_yields_empty_outcome() {
        let w = Tiny {
            net: workload(1, 4).net,
            seqs: Vec::new(),
        };
        let outcome = MemoizedRunner::exact().run(&w).unwrap();
        assert!(outcome.outputs.is_empty());
        assert_eq!(outcome.stats, ReuseStats::new());
        let outcome = MemoizedRunner::exact().run_batched(&w, 3).unwrap();
        assert!(outcome.outputs.is_empty());
    }
}
