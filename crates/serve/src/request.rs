//! The unit of work the serving engine deals in: one request, one
//! response.

use crate::registry::ModelId;
use nfm_core::ReuseStats;
use nfm_tensor::Vector;
use std::time::Duration;

/// Caller-chosen identifier carried from an [`InferenceRequest`] to its
/// [`InferenceResponse`].  The engine attaches no meaning to it (and
/// does not deduplicate), so callers are free to reuse ids — but then
/// they must disambiguate responses themselves.
pub type RequestId = u64;

/// Scheduling priority of a request.  Workers drain higher classes
/// first; within a class, submissions stay first-in-first-out.
/// Priority affects *when* a request is admitted to a lane, never its
/// results.
///
/// Workers take requests strictly in queue order (class, then FIFO)
/// among the requests they can place *right now*: a request whose
/// (model, predictor, threshold) combination has no free lane on any
/// worker waits on the queue — without blocking it — so an admittable
/// lower-priority request for a different combination may start
/// first.  Within one combination, priority order is strict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Admitted before everything else.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Admitted only when no higher class is waiting.
    Low,
}

impl Priority {
    /// All classes, highest first (the queue drain order).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Dense index of this class (`High = 0`).
    pub(crate) fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Per-request serving options: which model and predictor to run under,
/// an optional reuse-threshold override, and the scheduling priority.
///
/// The default options (`RequestOptions::default()`) reproduce the
/// single-model API exactly: the engine's default model under that
/// model's default predictor at its configured threshold, at
/// [`Priority::Normal`].
///
/// Options are resolved against the engine's
/// [`ModelRegistry`](crate::ModelRegistry) at submission time, so a
/// request naming an unknown model or predictor — or overriding the
/// threshold of a predictor that has none — is rejected synchronously
/// with a typed [`EngineError`](crate::EngineError).
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct RequestOptions {
    /// The model to run, `None` for the engine's default model.
    pub model: Option<ModelId>,
    /// The registered predictor name to serve under ("exact",
    /// "oracle", "bnn", or a custom registration name); `None` for the
    /// model's default predictor.
    pub predictor: Option<String>,
    /// Overrides the predictor's reuse threshold `θ` for this request
    /// only.  Requests sharing a threshold share memoization state
    /// machinery (per worker); the override never leaks into other
    /// requests.
    pub threshold: Option<f32>,
    /// Scheduling priority.
    pub priority: Priority,
}

impl RequestOptions {
    /// Options for the engine's default model — the start of a fluent
    /// chain, equivalent to `RequestOptions::default()`.
    pub fn new() -> Self {
        RequestOptions::default()
    }

    /// Options targeting a registered model — the canonical start of
    /// the fluent chain:
    ///
    /// ```
    /// use nfm_serve::{Priority, RequestOptions};
    ///
    /// let options = RequestOptions::for_model("kws")
    ///     .predictor("bnn")
    ///     .threshold(0.4)
    ///     .priority(Priority::High);
    /// assert_eq!(options.model, Some("kws".into()));
    /// ```
    pub fn for_model(model: impl Into<ModelId>) -> Self {
        RequestOptions::default().model(model)
    }

    /// Targets a registered model.
    pub fn model(mut self, model: impl Into<ModelId>) -> Self {
        self.model = Some(model.into());
        self
    }

    /// Picks a registered predictor by name.
    pub fn predictor(mut self, predictor: impl Into<String>) -> Self {
        self.predictor = Some(predictor.into());
        self
    }

    /// Overrides the reuse threshold `θ` for this request.
    pub fn threshold(mut self, threshold: f32) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Sets the scheduling priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// One inference submission: a sequence to run, an optional deadline,
/// per-request [`RequestOptions`], and the id under which the result is
/// reported.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    /// Echoed on the response.
    pub id: RequestId,
    /// The input sequence (one vector per timestep, widths matching the
    /// targeted model's network; must be non-empty).
    pub sequence: Vec<Vector>,
    /// Latency budget measured from submission.  `None` means the
    /// request never expires.
    pub deadline: Option<Duration>,
    /// Model / predictor / threshold / priority choices; the default
    /// reproduces the single-model path.
    pub options: RequestOptions,
}

impl InferenceRequest {
    /// A request with no deadline and default options (the engine's
    /// default model and predictor).
    pub fn new(id: RequestId, sequence: Vec<Vector>) -> Self {
        InferenceRequest {
            id,
            sequence,
            deadline: None,
            options: RequestOptions::default(),
        }
    }

    /// Sets the latency budget (queue wait + compute), measured from
    /// the moment [`Engine::submit`](crate::Engine::submit) accepts the
    /// request.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replaces all options at once — the canonical way to choose a
    /// model, predictor, threshold and priority, paired with the
    /// [`RequestOptions`] fluent builder:
    ///
    /// ```
    /// use nfm_serve::{InferenceRequest, Priority, RequestOptions};
    /// use nfm_tensor::Vector;
    ///
    /// let request = InferenceRequest::new(1, vec![Vector::zeros(4)])
    ///     .with_options(RequestOptions::for_model("kws").priority(Priority::High));
    /// ```
    pub fn with_options(mut self, options: RequestOptions) -> Self {
        self.options = options;
        self
    }

    /// Targets a registered model (see [`RequestOptions::model`]).
    #[deprecated(
        since = "0.1.0",
        note = "build options with `RequestOptions::for_model(..)` and attach them via \
                `with_options`"
    )]
    pub fn for_model(mut self, model: impl Into<ModelId>) -> Self {
        self.options.model = Some(model.into());
        self
    }

    /// Picks a registered predictor by name (see
    /// [`RequestOptions::predictor`]).
    #[deprecated(
        since = "0.1.0",
        note = "build options with `RequestOptions::..predictor(..)` and attach them via \
                `with_options`"
    )]
    pub fn with_predictor(mut self, predictor: impl Into<String>) -> Self {
        self.options.predictor = Some(predictor.into());
        self
    }

    /// Overrides the reuse threshold for this request (see
    /// [`RequestOptions::threshold`]).
    #[deprecated(
        since = "0.1.0",
        note = "build options with `RequestOptions::..threshold(..)` and attach them via \
                `with_options`"
    )]
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.options.threshold = Some(threshold);
        self
    }

    /// Sets the scheduling priority.
    #[deprecated(
        since = "0.1.0",
        note = "build options with `RequestOptions::..priority(..)` and attach them via \
                `with_options`"
    )]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.options.priority = priority;
        self
    }
}

/// How a request left the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// Computed within its deadline (or with no deadline).
    Done,
    /// The deadline elapsed.  Under
    /// [`DeadlinePolicy::DropExpired`] the request was never computed
    /// and `outputs` is empty; under
    /// [`DeadlinePolicy::RunToCompletion`] (or when the deadline
    /// expired only *during* compute) `outputs` holds the full result.
    /// Expired requests are always reported — never silently dropped.
    DeadlineExpired,
    /// The engine aborted the request after admission (an internal
    /// execution error; see
    /// [`Engine::last_error`](crate::Engine::last_error)).  Submission
    /// failures are *not* reported this way — they surface as
    /// [`EngineError`](crate::EngineError)s from `submit` itself.
    Rejected,
}

/// What to do with a request whose deadline has already expired while
/// it waited in the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlinePolicy {
    /// Skip the computation and report
    /// [`CompletionStatus::DeadlineExpired`] with empty outputs — the
    /// lane goes to a request that can still meet its deadline.  This
    /// is the default.
    #[default]
    DropExpired,
    /// Compute anyway and report the (late) outputs, still marked
    /// [`CompletionStatus::DeadlineExpired`].
    RunToCompletion,
}

/// The per-request result: outputs, this request's own reuse
/// statistics, and where its latency went.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResponse {
    /// The id of the request this answers.
    pub id: RequestId,
    /// How the request completed.
    pub status: CompletionStatus,
    /// One output per timestep (empty when the request was dropped
    /// before compute).
    pub outputs: Vec<Vector>,
    /// Reuse statistics attributable to *this request alone* —
    /// bit-identical to what a dedicated
    /// [`MemoizedRunner::run`](crate::MemoizedRunner::run) over the
    /// same sequence would report.
    pub stats: ReuseStats,
    /// Time spent waiting in the queue before a lane picked the
    /// request up.
    pub queue_latency: Duration,
    /// Wall time from lane admission to the last timestep's output
    /// (or to the mid-sequence abort, for requests dropped by a
    /// per-step deadline check).  Lanes advance together, so this
    /// includes the steps shared with the other requests in flight (in
    /// wave mode it is the whole wave's duration), and on a worker
    /// serving several (model, predictor, threshold) combinations it
    /// also includes the interleaved timesteps of the *other*
    /// contexts: it measures lane occupancy, not this request's
    /// exclusive compute.
    pub compute_latency: Duration,
}

impl InferenceResponse {
    /// Whether the request completed normally.
    pub fn is_done(&self) -> bool {
        self.status == CompletionStatus::Done
    }

    /// Queue plus compute latency.
    pub fn total_latency(&self) -> Duration {
        self.queue_latency + self.compute_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_sets_deadline() {
        let r = InferenceRequest::new(7, vec![Vector::zeros(2)]);
        assert_eq!(r.id, 7);
        assert!(r.deadline.is_none());
        assert_eq!(r.options, RequestOptions::default());
        let r = r.with_deadline(Duration::from_millis(5));
        assert_eq!(r.deadline, Some(Duration::from_millis(5)));
    }

    #[test]
    #[allow(deprecated)] // the shims must keep working until removal
    fn request_builder_sets_options() {
        let r = InferenceRequest::new(1, vec![Vector::zeros(2)])
            .for_model("asr")
            .with_predictor("bnn")
            .with_threshold(0.25)
            .with_priority(Priority::High);
        assert_eq!(r.options.model, Some("asr".into()));
        assert_eq!(r.options.predictor.as_deref(), Some("bnn"));
        assert_eq!(r.options.threshold, Some(0.25));
        assert_eq!(r.options.priority, Priority::High);
        // with_options replaces everything at once.
        let r = r.with_options(RequestOptions::default().model("kws"));
        assert_eq!(r.options.model, Some("kws".into()));
        assert!(r.options.predictor.is_none());
        assert_eq!(r.options.priority, Priority::Normal);
    }

    #[test]
    fn options_fluent_builder_composes() {
        let o = RequestOptions::for_model("kws")
            .predictor("bnn")
            .threshold(0.4)
            .priority(Priority::High);
        assert_eq!(o.model, Some("kws".into()));
        assert_eq!(o.predictor.as_deref(), Some("bnn"));
        assert_eq!(o.threshold, Some(0.4));
        assert_eq!(o.priority, Priority::High);
        assert_eq!(RequestOptions::new(), RequestOptions::default());
    }

    #[test]
    fn priority_orders_high_first() {
        assert_eq!(Priority::default(), Priority::Normal);
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        assert_eq!(
            Priority::ALL.map(|p| p.index()),
            [0, 1, 2],
            "dense indices follow drain order"
        );
    }

    #[test]
    fn response_latency_sums() {
        let r = InferenceResponse {
            id: 1,
            status: CompletionStatus::Done,
            outputs: Vec::new(),
            stats: ReuseStats::new(),
            queue_latency: Duration::from_millis(2),
            compute_latency: Duration::from_millis(3),
        };
        assert!(r.is_done());
        assert_eq!(r.total_latency(), Duration::from_millis(5));
    }

    #[test]
    fn default_policy_drops_expired() {
        assert_eq!(DeadlinePolicy::default(), DeadlinePolicy::DropExpired);
    }
}
