//! The unit of work the serving engine deals in: one request, one
//! response.

use nfm_core::ReuseStats;
use nfm_tensor::Vector;
use std::time::Duration;

/// Caller-chosen identifier carried from an [`InferenceRequest`] to its
/// [`InferenceResponse`].  The engine attaches no meaning to it (and
/// does not deduplicate), so callers are free to reuse ids — but then
/// they must disambiguate responses themselves.
pub type RequestId = u64;

/// One inference submission: a sequence to run, an optional deadline,
/// and the id under which the result is reported.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    /// Echoed on the response.
    pub id: RequestId,
    /// The input sequence (one vector per timestep, widths matching the
    /// engine's network; must be non-empty).
    pub sequence: Vec<Vector>,
    /// Latency budget measured from submission.  `None` means the
    /// request never expires.
    pub deadline: Option<Duration>,
}

impl InferenceRequest {
    /// A request with no deadline.
    pub fn new(id: RequestId, sequence: Vec<Vector>) -> Self {
        InferenceRequest {
            id,
            sequence,
            deadline: None,
        }
    }

    /// Sets the latency budget (queue wait + compute), measured from
    /// the moment [`Engine::submit`](crate::Engine::submit) accepts the
    /// request.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// How a request left the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// Computed within its deadline (or with no deadline).
    Done,
    /// The deadline elapsed.  Under
    /// [`DeadlinePolicy::DropExpired`] the request was never computed
    /// and `outputs` is empty; under
    /// [`DeadlinePolicy::RunToCompletion`] (or when the deadline
    /// expired only *during* compute) `outputs` holds the full result.
    /// Expired requests are always reported — never silently dropped.
    DeadlineExpired,
    /// The engine aborted the request after admission (an internal
    /// execution error; see
    /// [`Engine::last_error`](crate::Engine::last_error)).  Submission
    /// failures are *not* reported this way — they surface as
    /// [`EngineError`](crate::EngineError)s from `submit` itself.
    Rejected,
}

/// What to do with a request whose deadline has already expired while
/// it waited in the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlinePolicy {
    /// Skip the computation and report
    /// [`CompletionStatus::DeadlineExpired`] with empty outputs — the
    /// lane goes to a request that can still meet its deadline.  This
    /// is the default.
    #[default]
    DropExpired,
    /// Compute anyway and report the (late) outputs, still marked
    /// [`CompletionStatus::DeadlineExpired`].
    RunToCompletion,
}

/// The per-request result: outputs, this request's own reuse
/// statistics, and where its latency went.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResponse {
    /// The id of the request this answers.
    pub id: RequestId,
    /// How the request completed.
    pub status: CompletionStatus,
    /// One output per timestep (empty when the request was dropped
    /// before compute).
    pub outputs: Vec<Vector>,
    /// Reuse statistics attributable to *this request alone* —
    /// bit-identical to what a dedicated
    /// [`MemoizedRunner::run`](crate::MemoizedRunner::run) over the
    /// same sequence would report.
    pub stats: ReuseStats,
    /// Time spent waiting in the queue before a lane picked the
    /// request up.
    pub queue_latency: Duration,
    /// Time from lane admission to the last timestep's output.  Lanes
    /// advance together, so this includes the steps shared with the
    /// other requests in flight (in wave mode it is the whole wave's
    /// duration).
    pub compute_latency: Duration,
}

impl InferenceResponse {
    /// Whether the request completed normally.
    pub fn is_done(&self) -> bool {
        self.status == CompletionStatus::Done
    }

    /// Queue plus compute latency.
    pub fn total_latency(&self) -> Duration {
        self.queue_latency + self.compute_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_sets_deadline() {
        let r = InferenceRequest::new(7, vec![Vector::zeros(2)]);
        assert_eq!(r.id, 7);
        assert!(r.deadline.is_none());
        let r = r.with_deadline(Duration::from_millis(5));
        assert_eq!(r.deadline, Some(Duration::from_millis(5)));
    }

    #[test]
    fn response_latency_sums() {
        let r = InferenceResponse {
            id: 1,
            status: CompletionStatus::Done,
            outputs: Vec::new(),
            stats: ReuseStats::new(),
            queue_latency: Duration::from_millis(2),
            compute_latency: Duration::from_millis(3),
        };
        assert!(r.is_done());
        assert_eq!(r.total_latency(), Duration::from_millis(5));
    }

    #[test]
    fn default_policy_drops_expired() {
        assert_eq!(DeadlinePolicy::default(), DeadlinePolicy::DropExpired);
    }
}
