//! Property-based tests on RNN inference invariants.

use nfm_rnn::{CellKind, DeepRnn, DeepRnnConfig, Direction, ExactEvaluator, GruCell, GruState, LstmCell, LstmState};
use nfm_tensor::rng::DeterministicRng;
use nfm_tensor::Vector;
use proptest::prelude::*;

fn sequence(len: usize, width: usize, seed: u64) -> Vec<Vector> {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    (0..len)
        .map(|_| Vector::from_fn(width, |_| rng.uniform(-1.5, 1.5)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gru_hidden_state_is_a_convex_combination(seed in 0u64..500, steps in 1usize..10) {
        // h_t is elementwise between h_{t-1} and tanh(...) in [-1, 1], so
        // it can never leave [-1, 1].
        let mut rng = DeterministicRng::seed_from_u64(seed);
        let cell = GruCell::random(5, 7, &mut rng).unwrap();
        let mut state = GruState::zeros(7);
        let mut eval = ExactEvaluator::new();
        for (t, x) in sequence(steps, 5, seed ^ 0xABC).iter().enumerate() {
            state = cell.step(0, 0, t, x, &state, &mut eval).unwrap();
            prop_assert!(state.h.norm_inf() <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn lstm_hidden_output_is_bounded_by_one(seed in 0u64..500, steps in 1usize..10) {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        let cell = LstmCell::random(4, 6, true, &mut rng).unwrap();
        let mut state = LstmState::zeros(6);
        let mut eval = ExactEvaluator::new();
        for (t, x) in sequence(steps, 4, seed ^ 0xDEF).iter().enumerate() {
            state = cell.step(0, 0, t, x, &state, &mut eval).unwrap();
            prop_assert!(state.h.norm_inf() <= 1.0 + 1e-5);
            prop_assert!(state.c.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn inference_is_deterministic_and_counts_are_exact(
        seed in 0u64..300,
        layers in 1usize..3,
        steps in 1usize..6,
        bidirectional in any::<bool>(),
    ) {
        let direction = if bidirectional { Direction::Bidirectional } else { Direction::Unidirectional };
        let cfg = DeepRnnConfig::new(CellKind::Lstm, 4, 5)
            .layers(layers)
            .direction(direction);
        let mut rng = DeterministicRng::seed_from_u64(seed);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        let seq = sequence(steps, 4, seed ^ 0x123);
        let mut e1 = ExactEvaluator::new();
        let mut e2 = ExactEvaluator::new();
        let a = net.run(&seq, &mut e1).unwrap();
        let b = net.run(&seq, &mut e2).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(e1.evaluations(), e2.evaluations());
        prop_assert_eq!(
            e1.evaluations() as usize,
            steps * net.neuron_evaluations_per_step()
        );
    }

    #[test]
    fn output_width_matches_configuration(
        seed in 0u64..200,
        hidden in 2usize..8,
        head in prop::option::of(1usize..5),
        bidirectional in any::<bool>(),
    ) {
        let direction = if bidirectional { Direction::Bidirectional } else { Direction::Unidirectional };
        let mut cfg = DeepRnnConfig::new(CellKind::Gru, 3, hidden).direction(direction);
        if let Some(h) = head {
            cfg = cfg.output_size(h);
        }
        let mut rng = DeterministicRng::seed_from_u64(seed);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        let out = net.run(&sequence(3, 3, seed), &mut ExactEvaluator::new()).unwrap();
        let expected = match head {
            Some(h) => h,
            None => hidden * direction.cells_per_layer(),
        };
        prop_assert!(out.iter().all(|v| v.len() == expected));
    }
}
