//! Property-style tests on RNN inference invariants, exercised over
//! seeded deterministic sampling loops (the container has no `proptest`).

use nfm_rnn::{
    CellKind, DeepRnn, DeepRnnConfig, Direction, ExactEvaluator, GruCell, GruState, LstmCell,
    LstmState,
};
use nfm_tensor::rng::DeterministicRng;
use nfm_tensor::Vector;

fn sequence(len: usize, width: usize, seed: u64) -> Vec<Vector> {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    (0..len)
        .map(|_| Vector::from_fn(width, |_| rng.uniform(-1.5, 1.5)))
        .collect()
}

#[test]
fn gru_hidden_state_is_a_convex_combination() {
    let mut outer = DeterministicRng::seed_from_u64(10);
    for _ in 0..24 {
        let seed = outer.index(500) as u64;
        let steps = 1 + outer.index(9);
        // h_t is elementwise between h_{t-1} and tanh(...) in [-1, 1], so
        // it can never leave [-1, 1].
        let mut rng = DeterministicRng::seed_from_u64(seed);
        let cell = GruCell::random(5, 7, &mut rng).unwrap();
        let mut state = GruState::zeros(7);
        let mut eval = ExactEvaluator::new();
        for (t, x) in sequence(steps, 5, seed ^ 0xABC).iter().enumerate() {
            state = cell.step(0, 0, t, x, &state, &mut eval).unwrap();
            assert!(state.h.norm_inf() <= 1.0 + 1e-5);
        }
    }
}

#[test]
fn lstm_hidden_output_is_bounded_by_one() {
    let mut outer = DeterministicRng::seed_from_u64(11);
    for _ in 0..24 {
        let seed = outer.index(500) as u64;
        let steps = 1 + outer.index(9);
        let mut rng = DeterministicRng::seed_from_u64(seed);
        let cell = LstmCell::random(4, 6, true, &mut rng).unwrap();
        let mut state = LstmState::zeros(6);
        let mut eval = ExactEvaluator::new();
        for (t, x) in sequence(steps, 4, seed ^ 0xDEF).iter().enumerate() {
            state = cell.step(0, 0, t, x, &state, &mut eval).unwrap();
            assert!(state.h.norm_inf() <= 1.0 + 1e-5);
            assert!(state.c.iter().all(|v| v.is_finite()));
        }
    }
}

#[test]
fn inference_is_deterministic_and_counts_are_exact() {
    let mut outer = DeterministicRng::seed_from_u64(12);
    for _ in 0..24 {
        let seed = outer.index(300) as u64;
        let layers = 1 + outer.index(2);
        let steps = 1 + outer.index(5);
        let bidirectional = outer.coin(0.5);
        let direction = if bidirectional {
            Direction::Bidirectional
        } else {
            Direction::Unidirectional
        };
        let cfg = DeepRnnConfig::new(CellKind::Lstm, 4, 5)
            .layers(layers)
            .direction(direction);
        let mut rng = DeterministicRng::seed_from_u64(seed);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        let seq = sequence(steps, 4, seed ^ 0x123);
        let mut e1 = ExactEvaluator::new();
        let mut e2 = ExactEvaluator::new();
        let a = net.run(&seq, &mut e1).unwrap();
        let b = net.run(&seq, &mut e2).unwrap();
        assert_eq!(a, b);
        assert_eq!(e1.evaluations(), e2.evaluations());
        assert_eq!(
            e1.evaluations() as usize,
            steps * net.neuron_evaluations_per_step()
        );
    }
}

#[test]
fn output_width_matches_configuration() {
    let mut outer = DeterministicRng::seed_from_u64(13);
    for _ in 0..24 {
        let seed = outer.index(200) as u64;
        let hidden = 2 + outer.index(6);
        let head = if outer.coin(0.5) {
            Some(1 + outer.index(4))
        } else {
            None
        };
        let bidirectional = outer.coin(0.5);
        let direction = if bidirectional {
            Direction::Bidirectional
        } else {
            Direction::Unidirectional
        };
        let mut cfg = DeepRnnConfig::new(CellKind::Gru, 3, hidden).direction(direction);
        if let Some(h) = head {
            cfg = cfg.output_size(h);
        }
        let mut rng = DeterministicRng::seed_from_u64(seed);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        let out = net
            .run(&sequence(3, 3, seed), &mut ExactEvaluator::new())
            .unwrap();
        let expected = match head {
            Some(h) => h,
            None => hidden * direction.cells_per_layer(),
        };
        assert!(out.iter().all(|v| v.len() == expected));
    }
}
