//! # nfm-rnn
//!
//! Recurrent neural network inference substrate for the neuron-level
//! fuzzy memoization (MICRO 2019) reproduction.
//!
//! The crate implements the cell types the paper evaluates — LSTM with
//! peephole connections (Figure 2 / Equations 1–6) and GRU (Figure 3) —
//! plus unidirectional and bidirectional layers and deep stacks of them,
//! matching the topologies of Table 1 (e.g. EESEN is a 10-layer
//! bidirectional LSTM with 320 neurons per direction).
//!
//! The central abstraction is the [`NeuronEvaluator`] trait: every
//! per-neuron dot product (`W_x·x_t + W_h·h_{t-1}`) performed during
//! inference goes through it.  The default [`ExactEvaluator`] simply
//! computes the products; the `nfm-core` crate plugs in the paper's fuzzy
//! memoization scheme at exactly this boundary, which mirrors where the
//! E-PUR accelerator's fuzzy memoization unit intercepts the DPU.
//!
//! # Example
//!
//! ```
//! use nfm_rnn::{DeepRnnConfig, CellKind, Direction, DeepRnn, ExactEvaluator};
//! use nfm_tensor::rng::DeterministicRng;
//! use nfm_tensor::Vector;
//!
//! let config = DeepRnnConfig::new(CellKind::Lstm, 8, 16)
//!     .layers(2)
//!     .direction(Direction::Unidirectional);
//! let mut rng = DeterministicRng::seed_from_u64(1);
//! let rnn = DeepRnn::random(&config, &mut rng).unwrap();
//! let sequence: Vec<Vector> = (0..4).map(|_| Vector::zeros(8)).collect();
//! let outputs = rnn.run(&sequence, &mut ExactEvaluator::new()).unwrap();
//! assert_eq!(outputs.len(), 4);
//! assert_eq!(outputs[0].len(), 16);
//! ```

pub mod batch;
pub mod config;
pub mod dense;
pub mod error;
pub mod evaluator;
pub mod gate;
pub mod gru;
pub mod layer;
pub mod lstm;
pub mod network;
pub mod scheduler;
pub mod scratch;

pub use batch::{BatchScratch, BatchState};
pub use config::{CellKind, DeepRnnConfig, Direction};
pub use dense::Dense;
pub use error::RnnError;
pub use evaluator::{
    CountingEvaluator, ExactEvaluator, NeuronEvaluator, NeuronRef, PerNeuronEvaluator,
};
pub use gate::{Gate, GateId, GateKind};
pub use gru::{GruCell, GruState};
pub use layer::{Cell, Layer};
pub use lstm::{LstmCell, LstmState};
pub use network::DeepRnn;
pub use scheduler::{FinishedLane, LaneScheduler, LaneSnapshot, RefillPolicy, HOIST_BLOCK};
pub use scratch::CellScratch;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, RnnError>;
