//! Error type for RNN construction and inference.

use nfm_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Errors produced while building or running an RNN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RnnError {
    /// An underlying tensor operation failed (usually a shape mismatch).
    Tensor(TensorError),
    /// The network/layer/cell configuration is inconsistent.
    InvalidConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// An input sequence element had the wrong width for the first layer.
    InputSizeMismatch {
        /// Width the network expects.
        expected: usize,
        /// Width that was supplied.
        found: usize,
        /// Index of the offending element in the sequence.
        timestep: usize,
    },
    /// The input sequence was empty.
    EmptySequence,
}

impl fmt::Display for RnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            RnnError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            RnnError::InputSizeMismatch {
                expected,
                found,
                timestep,
            } => write!(
                f,
                "input size mismatch at timestep {timestep}: expected {expected}, found {found}"
            ),
            RnnError::EmptySequence => write!(f, "input sequence is empty"),
        }
    }
}

impl Error for RnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RnnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for RnnError {
    fn from(e: TensorError) -> Self {
        RnnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = RnnError::InvalidConfig {
            what: "layers must be > 0".into(),
        };
        assert!(e.to_string().contains("layers"));
        let e = RnnError::InputSizeMismatch {
            expected: 8,
            found: 4,
            timestep: 2,
        };
        assert!(e.to_string().contains("timestep 2"));
        assert!(RnnError::EmptySequence.to_string().contains("empty"));
    }

    #[test]
    fn tensor_error_converts_and_sources() {
        let t = TensorError::Empty { op: "mean" };
        let e: RnnError = t.clone().into();
        assert_eq!(e, RnnError::Tensor(t));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RnnError>();
    }
}
