//! GRU cell (Figure 3 of the paper).

use crate::batch::{BatchScratch, BatchState};
use crate::error::RnnError;
use crate::evaluator::NeuronEvaluator;
use crate::gate::{Gate, GateId, GateKind};
use crate::scratch::CellScratch;
use crate::Result;
use nfm_tensor::activation::Activation;
use nfm_tensor::rng::DeterministicRng;
use nfm_tensor::Vector;

/// The recurrent state of a GRU cell — just the hidden output `h_t`
/// (GRUs have no independent cell memory).
#[derive(Debug, Clone, PartialEq)]
pub struct GruState {
    /// Hidden output `h_t`.
    pub h: Vector,
}

impl GruState {
    /// Zero-initialized state for a cell with `hidden` neurons.
    pub fn zeros(hidden: usize) -> Self {
        GruState {
            h: Vector::zeros(hidden),
        }
    }
}

/// A GRU cell:
///
/// ```text
/// z_t = σ(W_zx·x_t + W_zh·h_{t-1} + b_z)    (update gate)
/// r_t = σ(W_rx·x_t + W_rh·h_{t-1} + b_r)    (reset gate)
/// g_t = ϕ(W_gx·x_t + W_gh·(r_t ⊙ h_{t-1}) + b_g)
/// h_t = (1 - z_t) ⊙ h_{t-1} + z_t ⊙ g_t
/// ```
///
/// The candidate gate's recurrent dot product takes the *reset-modulated*
/// hidden state `r_t ⊙ h_{t-1}` as its recurrent input, exactly as the
/// GRU definition in the paper's reference (Cho et al., 2014).
#[derive(Debug, Clone, PartialEq)]
pub struct GruCell {
    update: Gate,
    reset: Gate,
    candidate: Gate,
}

impl GruCell {
    /// Creates a cell from its three gates.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if the gates disagree on
    /// dimensions or the recurrent width differs from the neuron count.
    pub fn new(update: Gate, reset: Gate, candidate: Gate) -> Result<Self> {
        let neurons = update.neurons();
        let in_size = update.input_size();
        let hid = update.hidden_size();
        for g in [&update, &reset, &candidate] {
            if g.neurons() != neurons || g.input_size() != in_size || g.hidden_size() != hid {
                return Err(RnnError::InvalidConfig {
                    what: "GRU gates disagree on dimensions".into(),
                });
            }
        }
        if hid != neurons {
            return Err(RnnError::InvalidConfig {
                what: format!("GRU recurrent width {hid} must equal neuron count {neurons}"),
            });
        }
        Ok(GruCell {
            update,
            reset,
            candidate,
        })
    }

    /// Creates a randomly initialized cell.
    pub fn random(
        input_size: usize,
        hidden_size: usize,
        rng: &mut DeterministicRng,
    ) -> Result<Self> {
        let update = Gate::random(
            hidden_size,
            input_size,
            hidden_size,
            Activation::Sigmoid,
            false,
            rng,
        )?;
        let reset = Gate::random(
            hidden_size,
            input_size,
            hidden_size,
            Activation::Sigmoid,
            false,
            rng,
        )?;
        let candidate = Gate::random(
            hidden_size,
            input_size,
            hidden_size,
            Activation::Tanh,
            false,
            rng,
        )?;
        GruCell::new(update, reset, candidate)
    }

    /// Number of neurons per gate.
    pub fn hidden_size(&self) -> usize {
        self.update.neurons()
    }

    /// Width of the expected input vector.
    pub fn input_size(&self) -> usize {
        self.update.input_size()
    }

    /// Borrows a gate by kind; returns `None` for LSTM-only kinds.
    pub fn gate(&self, kind: GateKind) -> Option<&Gate> {
        match kind {
            GateKind::Update => Some(&self.update),
            GateKind::Reset => Some(&self.reset),
            GateKind::Candidate => Some(&self.candidate),
            GateKind::Input | GateKind::Forget | GateKind::Output => None,
        }
    }

    /// The gate kinds this cell evaluates, in order.
    pub fn gate_kinds(&self) -> &'static [GateKind] {
        &GateKind::GRU
    }

    /// Total number of weights in the cell (all three gates).
    pub fn weight_count(&self) -> usize {
        GateKind::GRU
            .iter()
            .filter_map(|&k| self.gate(k))
            .map(Gate::weight_count)
            .sum()
    }

    /// Number of neuron evaluations performed per timestep.
    pub fn neuron_evaluations_per_step(&self) -> usize {
        self.hidden_size() * GateKind::GRU.len()
    }

    /// Advances the cell by one timestep, writing the next state into
    /// `next` and reusing the caller-owned `scratch` buffers: the
    /// steady-state path performs zero allocations.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` or the state widths do not match the cell.
    #[allow(clippy::too_many_arguments)]
    pub fn step_into(
        &self,
        layer: usize,
        direction: usize,
        timestep: usize,
        x: &[f32],
        state: &GruState,
        next: &mut GruState,
        scratch: &mut CellScratch,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<()> {
        let hidden = self.hidden_size();
        if state.h.len() != hidden {
            return Err(RnnError::InvalidConfig {
                what: format!(
                    "GRU state width {} does not match hidden size {}",
                    state.h.len(),
                    hidden
                ),
            });
        }
        next.h.resize(hidden, 0.0);
        let id = |kind| GateId::new(layer, direction, kind);
        let h_prev = state.h.as_slice();
        let (zb, rb, gb) = scratch.bufs(hidden);
        self.update.evaluate_into(
            id(GateKind::Update),
            timestep,
            x,
            h_prev,
            None,
            evaluator,
            zb,
        )?;
        self.reset.evaluate_into(
            id(GateKind::Reset),
            timestep,
            x,
            h_prev,
            None,
            evaluator,
            rb,
        )?;
        // Reset-modulated hidden state, in place: rb = r_t ⊙ h_{t-1}.
        for (r, h) in rb.iter_mut().zip(h_prev.iter()) {
            *r *= h;
        }
        self.candidate.evaluate_into(
            id(GateKind::Candidate),
            timestep,
            x,
            rb,
            None,
            evaluator,
            gb,
        )?;
        // h_t = (1 - z_t) ⊙ h_{t-1} + z_t ⊙ g_t
        for (n, h_next) in next.h.as_mut_slice().iter_mut().enumerate() {
            *h_next = (1.0 - zb[n]) * h_prev[n] + zb[n] * gb[n];
        }
        Ok(())
    }

    /// Advances the first `lanes` lanes of a batch by one timestep,
    /// writing the next lane-striped state into `next` and reusing the
    /// caller-owned `scratch`.  `xs` is lane-striped
    /// (`lanes * input_size`); `hoisted`, when present, supplies the
    /// pre-computed `W_x·x_t` projections, one lane-striped slice per
    /// gate in [`GateKind::GRU`] order (the candidate's *recurrent* half
    /// still uses the reset-modulated hidden state per timestep).  Lane
    /// `l`'s next state is bit-identical to a single-sequence
    /// [`GruCell::step_into`] over lane `l`'s vectors.
    ///
    /// # Errors
    ///
    /// Returns an error if the lane-striped widths do not match the
    /// cell.
    #[allow(clippy::too_many_arguments)]
    pub fn step_batch_into(
        &self,
        layer: usize,
        direction: usize,
        timestep: usize,
        lanes: usize,
        xs: &[f32],
        state: &BatchState,
        next: &mut BatchState,
        scratch: &mut BatchScratch,
        hoisted: Option<&[&[f32]]>,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<()> {
        let hidden = self.hidden_size();
        if state.hidden() != hidden
            || next.hidden() != hidden
            || state.lanes() < lanes
            || next.lanes() < lanes
        {
            return Err(RnnError::InvalidConfig {
                what: format!(
                    "batch state ({} lanes x {}) does not cover {} lanes of hidden size {}",
                    state.lanes(),
                    state.hidden(),
                    lanes,
                    hidden
                ),
            });
        }
        if let Some(fwd) = hoisted {
            if fwd.len() != GateKind::GRU.len() {
                return Err(RnnError::InvalidConfig {
                    what: format!(
                        "hoisted projections cover {} gates, GRU needs {}",
                        fwd.len(),
                        GateKind::GRU.len()
                    ),
                });
            }
        }
        let id = |kind| GateId::new(layer, direction, kind);
        let h_prev = state.h_prefix(lanes);
        let (zb, rb, gb) = scratch.bufs(lanes * hidden);
        let gate_fwd = |g: usize| hoisted.map(|f| f[g]);
        self.update.evaluate_batch_into(
            id(GateKind::Update),
            timestep,
            lanes,
            xs,
            h_prev,
            None,
            gate_fwd(0),
            evaluator,
            zb,
        )?;
        self.reset.evaluate_batch_into(
            id(GateKind::Reset),
            timestep,
            lanes,
            xs,
            h_prev,
            None,
            gate_fwd(1),
            evaluator,
            rb,
        )?;
        // Reset-modulated hidden state, in place: rb = r_t ⊙ h_{t-1}.
        for (r, h) in rb.iter_mut().zip(h_prev.iter()) {
            *r *= h;
        }
        self.candidate.evaluate_batch_into(
            id(GateKind::Candidate),
            timestep,
            lanes,
            xs,
            rb,
            None,
            gate_fwd(2),
            evaluator,
            gb,
        )?;
        // h_t = (1 - z_t) ⊙ h_{t-1} + z_t ⊙ g_t
        for (n, h_next) in next.h_prefix_mut(lanes).iter_mut().enumerate() {
            *h_next = (1.0 - zb[n]) * h_prev[n] + zb[n] * gb[n];
        }
        Ok(())
    }

    /// Advances the cell by one timestep, returning a freshly allocated
    /// state.  Sequence loops use [`GruCell::step_into`] with reused
    /// buffers instead.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` or the state widths do not match the cell.
    pub fn step(
        &self,
        layer: usize,
        direction: usize,
        timestep: usize,
        x: &Vector,
        state: &GruState,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<GruState> {
        let mut next = GruState::zeros(self.hidden_size());
        let mut scratch = CellScratch::for_hidden(self.hidden_size());
        self.step_into(
            layer,
            direction,
            timestep,
            x.as_slice(),
            state,
            &mut next,
            &mut scratch,
            evaluator,
        )?;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::ExactEvaluator;

    fn cell(input: usize, hidden: usize, seed: u64) -> GruCell {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        GruCell::random(input, hidden, &mut rng).unwrap()
    }

    #[test]
    fn random_cell_dimensions() {
        let c = cell(5, 3, 1);
        assert_eq!(c.hidden_size(), 3);
        assert_eq!(c.input_size(), 5);
        assert_eq!(c.neuron_evaluations_per_step(), 9);
        assert_eq!(c.weight_count(), 3 * 3 * (5 + 3));
        assert!(c.gate(GateKind::Update).is_some());
        assert!(c.gate(GateKind::Forget).is_none());
        assert_eq!(c.gate_kinds().len(), 3);
    }

    #[test]
    fn hidden_state_stays_bounded() {
        let c = cell(4, 6, 2);
        let mut state = GruState::zeros(6);
        let mut eval = ExactEvaluator::new();
        let mut rng = DeterministicRng::seed_from_u64(5);
        for t in 0..30 {
            let x = Vector::from_fn(4, |_| rng.uniform(-2.0, 2.0));
            state = c.step(0, 0, t, &x, &state, &mut eval).unwrap();
            // h is a convex combination of the previous h and tanh output,
            // so it remains within [-1, 1].
            assert!(state.h.norm_inf() <= 1.0 + 1e-5);
        }
        assert_eq!(eval.evaluations(), 30 * 18);
    }

    #[test]
    fn update_gate_closed_keeps_previous_state() {
        // Force z_t ≈ 0 with a huge negative bias: h_t must equal h_{t-1}.
        let mut rng = DeterministicRng::seed_from_u64(3);
        let mk = |act, bias: f32, rng: &mut DeterministicRng| {
            let wx = nfm_tensor::init::Initializer::XavierUniform.matrix(rng, 3, 3);
            let wh = nfm_tensor::init::Initializer::XavierUniform.matrix(rng, 3, 3);
            Gate::new(wx, wh, Vector::filled(3, bias), None, act).unwrap()
        };
        let update = mk(Activation::Sigmoid, -40.0, &mut rng);
        let reset = mk(Activation::Sigmoid, 0.0, &mut rng);
        let candidate = mk(Activation::Tanh, 0.0, &mut rng);
        let cell = GruCell::new(update, reset, candidate).unwrap();
        let prev = GruState {
            h: Vector::from(vec![0.3, -0.2, 0.5]),
        };
        let mut eval = ExactEvaluator::new();
        let next = cell
            .step(
                0,
                0,
                0,
                &Vector::from(vec![1.0, 2.0, -1.0]),
                &prev,
                &mut eval,
            )
            .unwrap();
        for i in 0..3 {
            assert!((next.h[i] - prev.h[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn step_rejects_bad_widths() {
        let c = cell(4, 4, 9);
        let mut eval = ExactEvaluator::new();
        assert!(c
            .step(0, 0, 0, &Vector::zeros(2), &GruState::zeros(4), &mut eval)
            .is_err());
        assert!(c
            .step(0, 0, 0, &Vector::zeros(4), &GruState::zeros(3), &mut eval)
            .is_err());
    }

    #[test]
    fn new_rejects_mismatched_gates() {
        let mut rng = DeterministicRng::seed_from_u64(13);
        let good = Gate::random(4, 4, 4, Activation::Sigmoid, false, &mut rng).unwrap();
        let good2 = Gate::random(4, 4, 4, Activation::Sigmoid, false, &mut rng).unwrap();
        let bad = Gate::random(4, 5, 4, Activation::Tanh, false, &mut rng).unwrap();
        assert!(GruCell::new(good, good2, bad).is_err());
    }
}
