//! Reusable per-cell scratch buffers for allocation-free stepping.
//!
//! A cell step needs at most three gate-width working buffers alive at
//! once (LSTM: `i_t`, `f_t`, `g_t` before the cell-state update, with
//! the output gate reusing the first buffer; GRU: `z_t`, `r_t ⊙ h_{t-1}`
//! and the candidate).  [`CellScratch`] owns them and is threaded through
//! [`LstmCell::step_into`](crate::LstmCell::step_into) /
//! [`GruCell::step_into`](crate::GruCell::step_into) by the sequence
//! loops, so the steady-state per-timestep allocation count of inference
//! is zero (only the returned per-timestep outputs are allocated).
//!
//! Ownership rule: the *caller* owns the scratch and may reuse it across
//! timesteps, sequences and cells of the same width; the cell only
//! requires the buffers for the duration of one `step_into` call and
//! never stores references to them.

/// Three reusable gate-width buffers.
#[derive(Debug, Clone, Default)]
pub struct CellScratch {
    a: Vec<f32>,
    b: Vec<f32>,
    c: Vec<f32>,
}

impl CellScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        CellScratch::default()
    }

    /// Creates scratch pre-sized for a cell with `hidden` neurons per
    /// gate.
    pub fn for_hidden(hidden: usize) -> Self {
        CellScratch {
            a: vec![0.0; hidden],
            b: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }

    /// Returns the three buffers resized to `hidden`, as disjoint
    /// mutable slices.  Resizing only allocates when the requested width
    /// grows beyond any previously seen width.
    pub fn bufs(&mut self, hidden: usize) -> (&mut [f32], &mut [f32], &mut [f32]) {
        if self.a.len() < hidden {
            self.a.resize(hidden, 0.0);
            self.b.resize(hidden, 0.0);
            self.c.resize(hidden, 0.0);
        }
        (
            &mut self.a[..hidden],
            &mut self.b[..hidden],
            &mut self.c[..hidden],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_disjoint_and_sized() {
        let mut s = CellScratch::new();
        let (a, b, c) = s.bufs(4);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        assert_eq!(c.len(), 4);
        a[0] = 1.0;
        b[0] = 2.0;
        c[0] = 3.0;
        let (a2, b2, c2) = s.bufs(4);
        assert_eq!((a2[0], b2[0], c2[0]), (1.0, 2.0, 3.0));
    }

    #[test]
    fn buffers_grow_but_never_shrink_storage() {
        let mut s = CellScratch::for_hidden(2);
        {
            let (a, _, _) = s.bufs(8);
            assert_eq!(a.len(), 8);
        }
        let (a, _, _) = s.bufs(2);
        assert_eq!(a.len(), 2);
    }
}
