//! Lane-striped state and scratch for multi-sequence batched inference.
//!
//! Batch>1 serving evaluates `B` independent sequences (**lanes**)
//! through a single gate invocation: every lane-striped buffer stores
//! lane `l`'s vector at `[l * width .. (l + 1) * width]` of one flat
//! allocation, so the batched kernels can stream a gate's weight rows
//! once and reuse them across all lanes.
//!
//! Ownership rules mirror the single-sequence [`CellScratch`] contract:
//! the *caller* owns [`BatchState`] and [`BatchScratch`] and may reuse
//! them across timesteps, waves and cells of the same width; a cell only
//! borrows them for the duration of one `step_batch_into` call and never
//! stores references.  Lanes are advanced in lockstep and must be
//! ordered by **descending sequence length**, so that at batch step `s`
//! the active lanes are always the prefix `0..active` — a shorter lane
//! simply drops out of the prefix when its sequence ends (the ragged
//! tail) and its stale state is never read again.
//!
//! [`CellScratch`]: crate::CellScratch

/// The recurrent state of `lanes` independent cell instances, stored
/// lane-striped: `h` (and `c` for LSTM cells) hold `lanes * hidden`
/// values each.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchState {
    h: Vec<f32>,
    c: Vec<f32>,
    lanes: usize,
    hidden: usize,
}

impl BatchState {
    /// Zero-initialized state for `lanes` lanes of a cell with `hidden`
    /// neurons per gate.  The cell-state buffer `c` is always allocated;
    /// GRU cells simply never touch it.
    pub fn zeros(lanes: usize, hidden: usize) -> Self {
        BatchState {
            h: vec![0.0; lanes * hidden],
            c: vec![0.0; lanes * hidden],
            lanes,
            hidden,
        }
    }

    /// Number of lanes the state was sized for.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Neurons per gate per lane.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The hidden outputs of the first `active` lanes, lane-striped.
    pub fn h_prefix(&self, active: usize) -> &[f32] {
        &self.h[..active * self.hidden]
    }

    /// Mutable hidden outputs of the first `active` lanes.
    pub fn h_prefix_mut(&mut self, active: usize) -> &mut [f32] {
        &mut self.h[..active * self.hidden]
    }

    /// The cell states of the first `active` lanes, lane-striped.
    pub fn c_prefix(&self, active: usize) -> &[f32] {
        &self.c[..active * self.hidden]
    }

    /// Mutable cell states of the first `active` lanes.
    pub fn c_prefix_mut(&mut self, active: usize) -> &mut [f32] {
        &mut self.c[..active * self.hidden]
    }

    /// Lane `l`'s hidden output.
    pub fn h_lane(&self, lane: usize) -> &[f32] {
        &self.h[lane * self.hidden..(lane + 1) * self.hidden]
    }

    /// Lane `l`'s cell state.
    pub fn c_lane(&self, lane: usize) -> &[f32] {
        &self.c[lane * self.hidden..(lane + 1) * self.hidden]
    }

    /// Overwrites lane `lane`'s state with `h` and `c` (both `hidden`
    /// wide) — the lane-migration hook: a scheduler implanting a lane
    /// extracted elsewhere resumes it from this state instead of
    /// resetting it.
    ///
    /// # Panics
    ///
    /// Panics if either slice is not exactly `hidden` long.
    pub fn set_lane(&mut self, lane: usize, h: &[f32], c: &[f32]) {
        self.h[lane * self.hidden..(lane + 1) * self.hidden].copy_from_slice(h);
        self.c[lane * self.hidden..(lane + 1) * self.hidden].copy_from_slice(c);
    }

    /// Splits the state into mutable hidden outputs and immutable cell
    /// states over the first `active` lanes (the LSTM `h_t = o_t ⊙ ϕ(c_t)`
    /// update reads `c` while writing `h`).
    pub fn h_mut_c_prefix(&mut self, active: usize) -> (&mut [f32], &[f32]) {
        let len = active * self.hidden;
        (&mut self.h[..len], &self.c[..len])
    }

    /// Zeroes lane `lane`'s state so the slot can be refilled with a
    /// fresh sequence.
    pub fn reset_lane(&mut self, lane: usize) {
        self.h[lane * self.hidden..(lane + 1) * self.hidden].fill(0.0);
        self.c[lane * self.hidden..(lane + 1) * self.hidden].fill(0.0);
    }

    /// Swaps the state of two lanes.  The unified lane scheduler uses
    /// this to keep the active lanes a contiguous prefix sorted by
    /// remaining length (see
    /// [`LaneScheduler`](crate::LaneScheduler)); evaluators move their
    /// per-lane state alongside via
    /// [`NeuronEvaluator::swap_lane_state`](crate::NeuronEvaluator::swap_lane_state).
    pub fn swap_lanes(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let w = self.hidden;
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.h.split_at_mut(hi * w);
        head[lo * w..(lo + 1) * w].swap_with_slice(&mut tail[..w]);
        let (head, tail) = self.c.split_at_mut(hi * w);
        head[lo * w..(lo + 1) * w].swap_with_slice(&mut tail[..w]);
    }
}

/// Reusable lane-striped working buffers for batched cell stepping: the
/// batch analogue of [`CellScratch`](crate::CellScratch) — three
/// gate-width buffers sized `lanes * hidden`.  (The sequence driver
/// keeps its own block-packing and hoisted-projection buffers; a cell
/// step only ever needs these three.)
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    a: Vec<f32>,
    b: Vec<f32>,
    c: Vec<f32>,
}

impl BatchScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// Returns the three gate buffers resized to `len = lanes * hidden`
    /// values, as disjoint mutable slices.  Only allocates when `len`
    /// grows beyond any previously seen width.
    pub fn bufs(&mut self, len: usize) -> (&mut [f32], &mut [f32], &mut [f32]) {
        if self.a.len() < len {
            self.a.resize(len, 0.0);
            self.b.resize(len, 0.0);
            self.c.resize(len, 0.0);
        }
        (&mut self.a[..len], &mut self.b[..len], &mut self.c[..len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_prefixes_are_lane_striped() {
        let mut s = BatchState::zeros(3, 4);
        assert_eq!(s.lanes(), 3);
        assert_eq!(s.hidden(), 4);
        assert_eq!(s.h_prefix(2).len(), 8);
        assert_eq!(s.c_prefix(3).len(), 12);
        s.h_prefix_mut(3)[5] = 2.5;
        assert_eq!(s.h_lane(1)[1], 2.5);
        s.c_prefix_mut(2)[0] = 1.0;
        assert_eq!(s.c_prefix(1)[0], 1.0);
    }

    #[test]
    fn reset_lane_only_touches_one_lane() {
        let mut s = BatchState::zeros(2, 3);
        s.h_prefix_mut(2).fill(1.0);
        s.c_prefix_mut(2).fill(2.0);
        s.reset_lane(0);
        assert!(s.h_lane(0).iter().all(|&v| v == 0.0));
        assert!(s.h_lane(1).iter().all(|&v| v == 1.0));
        assert_eq!(s.c_prefix(2)[3..], [2.0, 2.0, 2.0]);
    }

    #[test]
    fn swap_lanes_exchanges_h_and_c() {
        let mut s = BatchState::zeros(3, 2);
        s.h_prefix_mut(3)
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        s.c_prefix_mut(3)
            .copy_from_slice(&[10.0, 20.0, 30.0, 40.0, 50.0, 60.0]);
        s.swap_lanes(0, 2);
        assert_eq!(s.h_lane(0), &[5.0, 6.0]);
        assert_eq!(s.h_lane(2), &[1.0, 2.0]);
        assert_eq!(s.c_prefix(3), &[50.0, 60.0, 30.0, 40.0, 10.0, 20.0]);
        // Swapping a lane with itself is a no-op.
        s.swap_lanes(1, 1);
        assert_eq!(s.h_lane(1), &[3.0, 4.0]);
    }

    #[test]
    fn scratch_buffers_grow_but_never_shrink_storage() {
        let mut s = BatchScratch::new();
        {
            let (a, b, c) = s.bufs(8);
            assert_eq!((a.len(), b.len(), c.len()), (8, 8, 8));
            a[0] = 1.0;
        }
        let (a, _, _) = s.bufs(4);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0], 1.0);
    }
}
