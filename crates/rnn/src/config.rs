//! Configuration types for building deep RNNs.

use crate::error::RnnError;
use crate::Result;

/// The recurrent cell type of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Long Short-Term Memory cell (Section 2.1.2 of the paper).
    Lstm,
    /// Gated Recurrent Unit cell (Section 2.1.3).
    Gru,
}

impl CellKind {
    /// Number of gates per cell (4 for LSTM, 3 for GRU).
    pub fn gates(self) -> usize {
        match self {
            CellKind::Lstm => 4,
            CellKind::Gru => 3,
        }
    }

    /// Human-readable name as used in Table 1 of the paper.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Lstm => "LSTM",
            CellKind::Gru => "GRU",
        }
    }
}

/// Whether a layer processes the sequence in one or both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Forward pass only (`x_1 .. x_N`).
    #[default]
    Unidirectional,
    /// Forward and backward passes whose outputs are concatenated
    /// (e.g. the EESEN BiLSTM network of Table 1).
    Bidirectional,
}

impl Direction {
    /// Number of cells per layer (1 or 2).
    pub fn cells_per_layer(self) -> usize {
        match self {
            Direction::Unidirectional => 1,
            Direction::Bidirectional => 2,
        }
    }
}

/// Configuration of a deep RNN: cell type, sizes, depth and direction.
///
/// Built with a fluent API:
///
/// ```
/// use nfm_rnn::{DeepRnnConfig, CellKind, Direction};
///
/// let cfg = DeepRnnConfig::new(CellKind::Gru, 161, 800)
///     .layers(5)
///     .direction(Direction::Unidirectional)
///     .output_size(29);
/// assert_eq!(cfg.layer_count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeepRnnConfig {
    cell: CellKind,
    input_size: usize,
    hidden_size: usize,
    layers: usize,
    direction: Direction,
    peepholes: bool,
    output_size: Option<usize>,
}

impl DeepRnnConfig {
    /// Creates a single-layer, unidirectional configuration.
    pub fn new(cell: CellKind, input_size: usize, hidden_size: usize) -> Self {
        DeepRnnConfig {
            cell,
            input_size,
            hidden_size,
            layers: 1,
            direction: Direction::Unidirectional,
            peepholes: cell == CellKind::Lstm,
            output_size: None,
        }
    }

    /// Sets the number of stacked layers.
    pub fn layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Sets the direction of every layer.
    pub fn direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Enables or disables peephole connections (LSTM only).
    pub fn peepholes(mut self, peepholes: bool) -> Self {
        self.peepholes = peepholes;
        self
    }

    /// Adds a dense classification/projection head of the given width.
    pub fn output_size(mut self, output_size: usize) -> Self {
        self.output_size = Some(output_size);
        self
    }

    /// The configured cell type.
    pub fn cell(&self) -> CellKind {
        self.cell
    }

    /// Width of the first layer's input.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Neurons per cell.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Number of stacked layers.
    pub fn layer_count(&self) -> usize {
        self.layers
    }

    /// Direction of the layers.
    pub fn direction_kind(&self) -> Direction {
        self.direction
    }

    /// Whether LSTM peepholes are enabled.
    pub fn has_peepholes(&self) -> bool {
        self.peepholes
    }

    /// Width of the dense head, if any.
    pub fn head_size(&self) -> Option<usize> {
        self.output_size
    }

    /// Total neuron evaluations per timestep across the whole stack
    /// (the denominator of the paper's computation-reuse percentages).
    pub fn neuron_evaluations_per_step(&self) -> usize {
        self.layers * self.direction.cells_per_layer() * self.hidden_size * self.cell.gates()
    }

    /// Approximate total weight count of the recurrent stack.
    pub fn weight_count(&self) -> usize {
        let per_dir_layer =
            |input: usize| self.cell.gates() * self.hidden_size * (input + self.hidden_size);
        let mut total = 0usize;
        let mut layer_input = self.input_size;
        for _ in 0..self.layers {
            total += self.direction.cells_per_layer() * per_dir_layer(layer_input);
            layer_input = self.hidden_size * self.direction.cells_per_layer();
        }
        total
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if any dimension is zero.
    pub fn validate(&self) -> Result<()> {
        if self.input_size == 0 || self.hidden_size == 0 {
            return Err(RnnError::InvalidConfig {
                what: "input and hidden sizes must be positive".into(),
            });
        }
        if self.layers == 0 {
            return Err(RnnError::InvalidConfig {
                what: "at least one layer is required".into(),
            });
        }
        if self.output_size == Some(0) {
            return Err(RnnError::InvalidConfig {
                what: "output size must be positive when present".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_kind_properties() {
        assert_eq!(CellKind::Lstm.gates(), 4);
        assert_eq!(CellKind::Gru.gates(), 3);
        assert_eq!(CellKind::Lstm.name(), "LSTM");
        assert_eq!(CellKind::Gru.name(), "GRU");
    }

    #[test]
    fn direction_cells() {
        assert_eq!(Direction::Unidirectional.cells_per_layer(), 1);
        assert_eq!(Direction::Bidirectional.cells_per_layer(), 2);
        assert_eq!(Direction::default(), Direction::Unidirectional);
    }

    #[test]
    fn builder_round_trip() {
        let cfg = DeepRnnConfig::new(CellKind::Lstm, 10, 20)
            .layers(3)
            .direction(Direction::Bidirectional)
            .peepholes(false)
            .output_size(5);
        assert_eq!(cfg.cell(), CellKind::Lstm);
        assert_eq!(cfg.input_size(), 10);
        assert_eq!(cfg.hidden_size(), 20);
        assert_eq!(cfg.layer_count(), 3);
        assert_eq!(cfg.direction_kind(), Direction::Bidirectional);
        assert!(!cfg.has_peepholes());
        assert_eq!(cfg.head_size(), Some(5));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn lstm_default_has_peepholes_gru_does_not() {
        assert!(DeepRnnConfig::new(CellKind::Lstm, 4, 4).has_peepholes());
        assert!(!DeepRnnConfig::new(CellKind::Gru, 4, 4).has_peepholes());
    }

    #[test]
    fn neuron_evaluations_per_step_counts_gates_and_directions() {
        let cfg = DeepRnnConfig::new(CellKind::Lstm, 8, 16)
            .layers(2)
            .direction(Direction::Bidirectional);
        // 2 layers * 2 directions * 16 neurons * 4 gates
        assert_eq!(cfg.neuron_evaluations_per_step(), 256);
    }

    #[test]
    fn weight_count_accounts_for_growing_inputs() {
        let cfg = DeepRnnConfig::new(CellKind::Gru, 8, 16).layers(2);
        // layer 0: 3 * 16 * (8 + 16); layer 1 input is 16
        let expected = 3 * 16 * (8 + 16) + 3 * 16 * (16 + 16);
        assert_eq!(cfg.weight_count(), expected);
    }

    #[test]
    fn validation_rejects_zero_dimensions() {
        assert!(DeepRnnConfig::new(CellKind::Lstm, 0, 4).validate().is_err());
        assert!(DeepRnnConfig::new(CellKind::Lstm, 4, 0).validate().is_err());
        assert!(DeepRnnConfig::new(CellKind::Lstm, 4, 4)
            .layers(0)
            .validate()
            .is_err());
        assert!(DeepRnnConfig::new(CellKind::Lstm, 4, 4)
            .output_size(0)
            .validate()
            .is_err());
    }
}
