//! The unified lane scheduler: one scheduler, pluggable refill policy.
//!
//! [`DeepRnn::run_batch`] executes a batch **layer-lockstep**: layer 0
//! processes every lane's whole sequence, then layer 1, and so on.
//! That shape amortizes one weight stream across all lanes and an
//! 8-step hoist block, but it cannot admit a new sequence mid-wave — a
//! freed lane stays idle until the next wave boundary, so ragged
//! traffic drains the active prefix and the amortization decays with
//! it.
//!
//! For **unidirectional** stacks the data dependencies permit a second
//! schedule: layer `k` at timestep `t` needs only layer `k-1` at `t`
//! and layer `k`'s own state at `t-1`, so every lane can advance
//! through the whole stack in blocks of up to [`HOIST_BLOCK`]
//! timesteps.  [`LaneScheduler`] with [`RefillPolicy::Block`]
//! implements that schedule: each [`step`](LaneScheduler::step) call
//! advances all active lanes one *block*, finished lanes retire at the
//! block boundary, and [`admit`](LaneScheduler::admit) hands a freed
//! lane a fresh sequence between blocks — mid-wave refill.  Within a
//! block the scheduler recovers the wave path's full hoist shape:
//! every layer's `W_x·x_t` projections for the whole block are
//! computed with **one matrix product per gate** over all active
//! lanes and all block steps (the earlier step-pipelined scheduler
//! hoisted layer 0 only, at admission, and streamed `W_x` per step for
//! the layers above — the reason mid-wave refill used to tie the wave
//! scheduler instead of beating it).
//!
//! [`RefillPolicy::Wave`] drives the same scheduler API over plain
//! [`DeepRnn::run_batch`] waves for stacks the block schedule cannot
//! express (bidirectional layers consume the sequence end-first):
//! admissions buffer until [`step`](LaneScheduler::step), which runs
//! the whole wave at once.
//!
//! # Equivalence
//!
//! Per-lane results are **bit-identical** to a dedicated
//! [`DeepRnn::run`] over the same sequence under either policy: every
//! `(neuron, lane)` dot product goes through the shared reduction
//! order, lanes never interact numerically, per-lane memoization state
//! is reset by [`NeuronEvaluator::begin_lane_sequence`] when a lane is
//! admitted, and the hoisted kernels keep the `fwd + rec` scalar order
//! of the fused path.  Scheduling therefore changes throughput, never
//! results.
//!
//! # Lane order and compaction
//!
//! Batched cell stepping requires the active lanes to form a prefix
//! `0..active` sorted by descending *remaining* length, so the prefix
//! only shrinks within a block.  [`step`](LaneScheduler::step) restores
//! that order first (admissions land at the tail): a stable insertion
//! sort applied as adjacent lane swaps, each swap moving the recurrent
//! state ([`BatchState::swap_lanes`]) and the evaluator's per-lane
//! memo tables and statistics ([`NeuronEvaluator::swap_lane_state`])
//! together, which keeps every lane's results bit-identical.  Retiring
//! a finished or cancelled lane compacts the prefix the same way.
//!
//! # Lane migration
//!
//! [`extract`](LaneScheduler::extract) removes a lane mid-sequence as
//! a self-contained [`LaneSnapshot`] — remaining inputs, outputs so
//! far, and the per-layer recurrent state — and
//! [`implant`](LaneScheduler::implant) resumes it on another scheduler
//! of the same network *without* resetting lane state.  A serving
//! engine uses the pair to move an in-flight request from a saturated
//! worker to an idle one (work stealing); the evaluator's per-lane
//! state travels separately through the serving layer's export/import
//! hooks.  Because the migrated lane's dot products still consume the
//! exact same `(x_t, h_{t-1})` values in the same scalar order,
//! migration is bit-transparent.
//!
//! # Timestep semantics
//!
//! Lanes sit at *different* positions of their own sequences, so the
//! `timestep` handed to the evaluator's batch methods under
//! [`RefillPolicy::Block`] is the scheduler's global block-step
//! counter, not a per-lane sequence index.  The built-in evaluators
//! ignore the batch-path timestep; a custom evaluator that keys
//! per-lane state must use the lane index plus
//! [`NeuronEvaluator::begin_lane_sequence`] instead.

use crate::batch::{BatchScratch, BatchState};
use crate::error::RnnError;
use crate::evaluator::NeuronEvaluator;
use crate::gate::GateKind;
use crate::layer::Cell;
use crate::network::DeepRnn;
use crate::Result;
use nfm_tensor::kernels::matmul_into_tuned;
use nfm_tensor::Vector;

/// Timesteps per scheduling block: the number of input projections
/// `W_x·x_t` hoisted into one matrix product per gate per layer.  The
/// same block size the wave path ([`DeepRnn::run_batch`]) uses, so the
/// two schedules amortize weight streams identically when lanes stay
/// full.
pub const HOIST_BLOCK: usize = 8;

/// The largest gate count of any cell kind (LSTM), sizing the
/// stack-allocated hoisted-slice array in the block step loop.
const MAX_GATES: usize = GateKind::LSTM.len();

/// How a [`LaneScheduler`] refills freed lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefillPolicy {
    /// Block-synchronous mid-wave refill (unidirectional stacks only):
    /// lanes advance in [`HOIST_BLOCK`]-step blocks, finished lanes
    /// retire and refill at block boundaries, and every layer's input
    /// projections are hoisted across all active lanes per block.
    Block,
    /// Wave refill: admissions buffer and [`step`](LaneScheduler::step)
    /// runs them as one [`DeepRnn::run_batch`] wave.  Freed lanes
    /// refill only at wave boundaries; required for bidirectional
    /// stacks.
    Wave,
}

/// One lane that finished its sequence during a
/// [`LaneScheduler::step`] call (or was cancelled).
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedLane {
    /// The caller-chosen token passed to [`LaneScheduler::admit`].
    pub token: u64,
    /// One output per timestep of the finished sequence (head applied
    /// when the network has one); a partial prefix for cancelled
    /// lanes.
    pub outputs: Vec<Vector>,
    /// The evaluator lane index where this sequence's per-lane state
    /// (memo table, per-lane statistics) resides *right now*, or
    /// `None` when the sequence never entered the evaluator (a
    /// wave-pending admission that was cancelled before its wave ran).
    /// Read any per-lane statistics at this index **before** the next
    /// [`LaneScheduler::admit`] call: admission reuses retired lane
    /// slots and `begin_lane_sequence` resets their state.
    pub stats_lane: Option<usize>,
}

/// Per-lane bookkeeping: the sequence being processed, the next
/// timestep to consume, and the outputs produced so far.
#[derive(Debug)]
struct LaneSlot {
    token: u64,
    inputs: Vec<Vector>,
    t: usize,
    outputs: Vec<Vector>,
}

impl LaneSlot {
    fn remaining(&self) -> usize {
        self.inputs.len() - self.t
    }
}

/// A lane extracted mid-sequence by [`LaneScheduler::extract`]:
/// everything another scheduler of the same network needs to resume
/// the sequence bit-identically via [`LaneScheduler::implant`].
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    inputs: Vec<Vector>,
    t: usize,
    outputs: Vec<Vector>,
    /// Per-layer `(h, c)` recurrent state of the lane.
    layers: Vec<(Vec<f32>, Vec<f32>)>,
    input_size: usize,
}

impl LaneSnapshot {
    /// Timesteps not yet computed.
    pub fn remaining(&self) -> usize {
        self.inputs.len() - self.t
    }

    /// Total timesteps of the underlying sequence.
    pub fn timesteps(&self) -> usize {
        self.inputs.len()
    }
}

/// The unified lane scheduler (see the [module docs](self) for the
/// schedule, its equivalence contract, and lane migration).
///
/// The scheduler owns all recurrent state and scratch (`2 × layers`
/// lane-striped [`BatchState`]s plus one [`BatchScratch`] under
/// [`RefillPolicy::Block`]); the caller owns the evaluator and the
/// network and passes both into [`admit`](LaneScheduler::admit) /
/// [`step`](LaneScheduler::step).  Call
/// [`NeuronEvaluator::begin_batch`] with [`lanes`](LaneScheduler::lanes)
/// once before the first admission so per-lane evaluator state is
/// sized.
#[derive(Debug)]
pub struct LaneScheduler {
    policy: RefillPolicy,
    lanes: usize,
    input_size: usize,
    /// Hidden size per layer (layer `k`'s output width feeds `k+1`).
    hidden: Vec<usize>,
    states: Vec<BatchState>,
    nexts: Vec<BatchState>,
    scratch: BatchScratch,
    /// Step-major packed layer inputs for the current block (ping).
    pack_a: Vec<f32>,
    /// Step-major packed layer outputs for the current block (pong).
    pack_b: Vec<f32>,
    /// Hoisted input projections for one layer of the current block,
    /// one step-major block per gate.
    fwd_buf: Vec<f32>,
    /// Occupied lane slots; always exactly `active` entries, slot `l`
    /// holding lane `l`'s sequence ([`RefillPolicy::Block`]).
    slots: Vec<LaneSlot>,
    /// Buffered admissions awaiting the next wave
    /// ([`RefillPolicy::Wave`]).
    pending: Vec<(u64, Vec<Vector>)>,
    /// Timesteps hoisted per block step — `HOIST_BLOCK` unless an
    /// autotuned plan installed a smaller value
    /// ([`set_hoist_block`](LaneScheduler::set_hoist_block)).
    hoist_block: usize,
    steps: usize,
}

impl LaneScheduler {
    /// Creates a scheduler with `lanes` lane slots for `network`.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if `lanes == 0` (a scheduler
    /// needs at least one lane; the accepted range is `lanes >= 1`) or
    /// if [`RefillPolicy::Block`] is requested for a stack with a
    /// bidirectional layer (the backward half consumes the sequence
    /// end-first, which is incompatible with block-synchronous
    /// stepping; use [`RefillPolicy::Wave`] for those).
    pub fn new(network: &DeepRnn, lanes: usize, policy: RefillPolicy) -> Result<Self> {
        if lanes == 0 {
            return Err(RnnError::InvalidConfig {
                what: "a lane scheduler needs at least one lane (lanes >= 1), got 0".into(),
            });
        }
        if policy == RefillPolicy::Block {
            if let Some(layer) = network.layers().iter().find(|l| l.is_bidirectional()) {
                return Err(RnnError::InvalidConfig {
                    what: format!(
                        "block refill requires a unidirectional stack, but layer {} is \
                         bidirectional (use RefillPolicy::Wave)",
                        layer.index()
                    ),
                });
            }
        }
        let hidden: Vec<usize> = network
            .layers()
            .iter()
            .map(|l| l.forward_cell().hidden_size())
            .collect();
        let (states, nexts) = if policy == RefillPolicy::Block {
            (
                hidden
                    .iter()
                    .map(|&h| BatchState::zeros(lanes, h))
                    .collect(),
                hidden
                    .iter()
                    .map(|&h| BatchState::zeros(lanes, h))
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        Ok(LaneScheduler {
            policy,
            lanes,
            input_size: network.input_size(),
            hidden,
            states,
            nexts,
            scratch: BatchScratch::new(),
            pack_a: Vec::new(),
            pack_b: Vec::new(),
            fwd_buf: Vec::new(),
            slots: Vec::with_capacity(lanes),
            pending: Vec::new(),
            hoist_block: HOIST_BLOCK,
            steps: 0,
        })
    }

    /// Sets the number of timesteps hoisted per block step (the
    /// autotuner's per-shape choice; see `nfm_tensor::autotune`).  Only
    /// affects [`RefillPolicy::Block`] scheduling granularity — results
    /// are bit-identical for any valid value, block sizes only change
    /// how many input projections share one weight stream.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] unless `1 <= block <=
    /// HOIST_BLOCK` (the stack-allocated per-step arrays are sized
    /// `HOIST_BLOCK`).
    pub fn set_hoist_block(&mut self, block: usize) -> Result<()> {
        if block == 0 || block > HOIST_BLOCK {
            return Err(RnnError::InvalidConfig {
                what: format!("hoist block must be in 1..={HOIST_BLOCK}, got {block}"),
            });
        }
        self.hoist_block = block;
        Ok(())
    }

    /// The current hoist block size (timesteps per block step).
    pub fn hoist_block(&self) -> usize {
        self.hoist_block
    }

    /// The refill policy this scheduler was created with.
    pub fn policy(&self) -> RefillPolicy {
        self.policy
    }

    /// Total lane slots.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Currently occupied lanes (buffered admissions under
    /// [`RefillPolicy::Wave`]).
    pub fn active_lanes(&self) -> usize {
        match self.policy {
            RefillPolicy::Block => self.slots.len(),
            RefillPolicy::Wave => self.pending.len(),
        }
    }

    /// Lane slots available for [`admit`](LaneScheduler::admit).
    pub fn free_lanes(&self) -> usize {
        self.lanes - self.active_lanes()
    }

    /// Whether no lane holds or awaits a sequence.
    pub fn is_idle(&self) -> bool {
        self.slots.is_empty() && self.pending.is_empty()
    }

    /// The lane index currently holding `token`, when the token is an
    /// active block lane (not a buffered wave admission).  This is
    /// where the evaluator's per-lane state for the token lives until
    /// the next [`step`](LaneScheduler::step) /
    /// [`admit`](LaneScheduler::admit) call.
    pub fn lane_of(&self, token: u64) -> Option<usize> {
        self.slots.iter().position(|s| s.token == token)
    }

    /// Places `sequence` into a free lane.  Under
    /// [`RefillPolicy::Block`] the lane's recurrent state is reset and
    /// [`begin_lane_sequence`](NeuronEvaluator::begin_lane_sequence)
    /// starts memoization cold — mid-wave, with the other lanes
    /// untouched; under [`RefillPolicy::Wave`] the admission buffers
    /// until the next [`step`](LaneScheduler::step).  `token` is
    /// returned with the lane's [`FinishedLane`]; the scheduler
    /// attaches no meaning to it.
    ///
    /// # Errors
    ///
    /// Returns an error if no lane is free, the sequence is empty, or
    /// an element has the wrong width.
    pub fn admit(
        &mut self,
        token: u64,
        sequence: Vec<Vector>,
        network: &DeepRnn,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<()> {
        let _ = network;
        if self.free_lanes() == 0 {
            return Err(RnnError::InvalidConfig {
                what: format!("all {} scheduler lanes are occupied", self.lanes),
            });
        }
        if sequence.is_empty() {
            return Err(RnnError::EmptySequence);
        }
        for (t, x) in sequence.iter().enumerate() {
            if x.len() != self.input_size {
                return Err(RnnError::InputSizeMismatch {
                    expected: self.input_size,
                    found: x.len(),
                    timestep: t,
                });
            }
        }
        match self.policy {
            RefillPolicy::Wave => {
                self.pending.push((token, sequence));
            }
            RefillPolicy::Block => {
                let lane = self.slots.len();
                for state in &mut self.states {
                    state.reset_lane(lane);
                }
                evaluator.begin_lane_sequence(lane);
                self.slots.push(LaneSlot {
                    token,
                    inputs: sequence,
                    t: 0,
                    outputs: Vec::new(),
                });
            }
        }
        Ok(())
    }

    /// Advances the schedule — one [`HOIST_BLOCK`]-step block of every
    /// active lane under [`RefillPolicy::Block`], one whole wave under
    /// [`RefillPolicy::Wave`] — appending finished lanes to `finished`
    /// (see [`FinishedLane::stats_lane`] for the read-before-admit
    /// contract).  Returns the number of lane-timesteps advanced — `0`
    /// means the scheduler is idle.
    ///
    /// # Errors
    ///
    /// Propagates evaluator/kernel errors; these indicate widths that
    /// [`admit`](LaneScheduler::admit) already validated, so they only
    /// arise from a network/evaluator swapped mid-flight.
    pub fn step(
        &mut self,
        network: &DeepRnn,
        evaluator: &mut dyn NeuronEvaluator,
        finished: &mut Vec<FinishedLane>,
    ) -> Result<usize> {
        match self.policy {
            RefillPolicy::Block => self.step_block(network, evaluator, finished),
            RefillPolicy::Wave => self.step_wave(network, evaluator, finished),
        }
    }

    /// One block-synchronous step: sort lanes by remaining length,
    /// then run up to [`HOIST_BLOCK`] timesteps of every layer with
    /// per-layer cross-lane input hoisting, layer-major within the
    /// block (layer `k`'s step-major packed outputs feed layer `k+1`).
    fn step_block(
        &mut self,
        network: &DeepRnn,
        evaluator: &mut dyn NeuronEvaluator,
        finished: &mut Vec<FinishedLane>,
    ) -> Result<usize> {
        let n = self.slots.len();
        if n == 0 {
            return Ok(0);
        }
        self.sort_by_remaining(evaluator);
        // Per-step active lane counts and packed row offsets for the
        // block (active counts only shrink: lanes are sorted by
        // descending remaining length).
        let block = self.slots[0].remaining().min(self.hoist_block);
        let mut step_active = [0usize; HOIST_BLOCK];
        let mut row_offset = [0usize; HOIST_BLOCK];
        let mut total_rows = 0usize;
        for (b, active) in step_active.iter_mut().enumerate().take(block) {
            *active = self.slots.iter().take_while(|s| s.remaining() > b).count();
            row_offset[b] = total_rows;
            total_rows += *active;
        }
        // Gather the block's layer-0 inputs, lane-striped, step-major.
        let isz = self.input_size;
        if self.pack_a.len() < total_rows * isz {
            self.pack_a.resize(total_rows * isz, 0.0);
        }
        for b in 0..block {
            for (l, slot) in self.slots.iter().enumerate().take(step_active[b]) {
                let dst = (row_offset[b] + l) * isz;
                self.pack_a[dst..dst + isz].copy_from_slice(slot.inputs[slot.t + b].as_slice());
            }
        }
        let hoisting = evaluator.supports_input_hoisting();
        let layer_count = self.hidden.len();
        for k in 0..layer_count {
            let cell = network.layers()[k].forward_cell();
            let kinds = cell.gate_kinds();
            let gate_count = kinds.len();
            debug_assert!(gate_count <= MAX_GATES);
            let in_w = if k == 0 { isz } else { self.hidden[k - 1] };
            let out_w = self.hidden[k];
            if hoisting {
                // One matrix product per gate covers the whole block's
                // input projections for this layer — every lane, every
                // block step, one weight stream.
                if self.fwd_buf.len() < gate_count * total_rows * out_w {
                    self.fwd_buf.resize(gate_count * total_rows * out_w, 0.0);
                }
                for (g, kind) in kinds.iter().enumerate() {
                    let gate = cell.gate(*kind).expect("cell exposes its own gate kinds");
                    matmul_into_tuned(
                        gate.wx(),
                        &self.pack_a[..total_rows * in_w],
                        total_rows,
                        &mut self.fwd_buf[g * total_rows * out_w..(g + 1) * total_rows * out_w],
                    )?;
                }
            }
            if self.pack_b.len() < total_rows * out_w {
                self.pack_b.resize(total_rows * out_w, 0.0);
            }
            for b in 0..block {
                let active = step_active[b];
                if active == 0 {
                    break;
                }
                let xs = &self.pack_a[row_offset[b] * in_w..(row_offset[b] + active) * in_w];
                let mut fwd_slices: [&[f32]; MAX_GATES] = [&[]; MAX_GATES];
                let hoisted: Option<&[&[f32]]> = if hoisting {
                    for (g, slot) in fwd_slices.iter_mut().enumerate().take(gate_count) {
                        let start = g * total_rows * out_w + row_offset[b] * out_w;
                        *slot = &self.fwd_buf[start..start + active * out_w];
                    }
                    Some(&fwd_slices[..gate_count])
                } else {
                    None
                };
                match cell {
                    Cell::Lstm(c) => c.step_batch_into(
                        k,
                        0,
                        self.steps + b,
                        active,
                        xs,
                        &self.states[k],
                        &mut self.nexts[k],
                        &mut self.scratch,
                        hoisted,
                        evaluator,
                    )?,
                    Cell::Gru(c) => c.step_batch_into(
                        k,
                        0,
                        self.steps + b,
                        active,
                        xs,
                        &self.states[k],
                        &mut self.nexts[k],
                        &mut self.scratch,
                        hoisted,
                        evaluator,
                    )?,
                }
                let dst = row_offset[b] * out_w;
                self.pack_b[dst..dst + active * out_w]
                    .copy_from_slice(self.nexts[k].h_prefix(active));
                std::mem::swap(&mut self.states[k], &mut self.nexts[k]);
            }
            std::mem::swap(&mut self.pack_a, &mut self.pack_b);
        }
        // Emit the block's outputs from the last layer's packed rows
        // (head applied when present).
        let h_last = *self.hidden.last().expect("at least one layer");
        for (l, slot) in self.slots.iter_mut().enumerate() {
            let steps_l = slot.remaining().min(block);
            for &offset in &row_offset[..steps_l] {
                let row = offset + l;
                let h = Vector::from(self.pack_a[row * h_last..(row + 1) * h_last].to_vec());
                let out = match network.head() {
                    None => h,
                    Some(head) => head.apply(&h)?,
                };
                slot.outputs.push(out);
            }
            slot.t += steps_l;
        }
        self.steps += block;
        // Retire finished lanes, highest index first so each swap
        // target is still an unfinished lane (or the lane itself).
        self.retire_finished(evaluator, finished);
        Ok(total_rows)
    }

    /// One wave: sort the buffered admissions longest-first (stable,
    /// so [`DeepRnn::run_batch`]'s internal sort is the identity and
    /// lane `i` serves admission `i`) and run them all to completion.
    fn step_wave(
        &mut self,
        network: &DeepRnn,
        evaluator: &mut dyn NeuronEvaluator,
        finished: &mut Vec<FinishedLane>,
    ) -> Result<usize> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let mut wave = std::mem::take(&mut self.pending);
        wave.sort_by_key(|(_, s)| std::cmp::Reverse(s.len()));
        let borrowed: Vec<&[Vector]> = wave.iter().map(|(_, s)| s.as_slice()).collect();
        let outputs = network.run_batch(&borrowed, evaluator)?;
        let mut advanced = 0;
        for (i, ((token, sequence), outs)) in wave.into_iter().zip(outputs).enumerate() {
            advanced += sequence.len();
            finished.push(FinishedLane {
                token,
                outputs: outs,
                stats_lane: Some(i),
            });
        }
        Ok(advanced)
    }

    /// Evicts the lane holding `token` mid-sequence — the
    /// deadline-abort hook: a serving engine that notices an in-flight
    /// request's deadline expired frees its lane at the next block
    /// boundary instead of computing the remaining timesteps.
    ///
    /// Compaction is identical to retiring a finished lane (state swap
    /// with the tail plus [`NeuronEvaluator::swap_lane_state`]), so
    /// the surviving lanes keep bit-identical results.  Returns the
    /// evicted lane with the outputs of the timesteps computed **so
    /// far** (a partial sequence) and the [`FinishedLane::stats_lane`]
    /// index its per-lane statistics live at — read them before the
    /// next [`admit`](LaneScheduler::admit), exactly like a finished
    /// lane.  A buffered wave admission is simply dropped
    /// (`stats_lane: None`: it never entered the evaluator).  Returns
    /// `None` when no lane holds `token`.
    pub fn cancel(
        &mut self,
        token: u64,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Option<FinishedLane> {
        if let Some(i) = self.pending.iter().position(|(t, _)| *t == token) {
            self.pending.remove(i);
            return Some(FinishedLane {
                token,
                outputs: Vec::new(),
                stats_lane: None,
            });
        }
        let lane = self.lane_of(token)?;
        let tail = self.slots.len() - 1;
        self.swap_lanes(lane, tail, evaluator);
        let slot = self.slots.pop().expect("slot exists");
        Some(FinishedLane {
            token: slot.token,
            outputs: slot.outputs,
            stats_lane: Some(tail),
        })
    }

    /// Removes the lane holding `token` as a self-contained
    /// [`LaneSnapshot`] for migration to another scheduler of the same
    /// network (see the [module docs](self)).  The caller must export
    /// the evaluator's per-lane state at
    /// [`lane_of(token)`](LaneScheduler::lane_of) **before** calling
    /// this: extraction compacts the active prefix, which moves lane
    /// state around.  Returns `None` when no active block lane holds
    /// `token` (buffered wave admissions do not migrate).
    pub fn extract(
        &mut self,
        token: u64,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Option<LaneSnapshot> {
        if self.policy != RefillPolicy::Block {
            return None;
        }
        let lane = self.lane_of(token)?;
        let layers: Vec<(Vec<f32>, Vec<f32>)> = self
            .states
            .iter()
            .map(|st| (st.h_lane(lane).to_vec(), st.c_lane(lane).to_vec()))
            .collect();
        let tail = self.slots.len() - 1;
        self.swap_lanes(lane, tail, evaluator);
        let slot = self.slots.pop().expect("slot exists");
        Some(LaneSnapshot {
            inputs: slot.inputs,
            t: slot.t,
            outputs: slot.outputs,
            layers,
            input_size: self.input_size,
        })
    }

    /// Resumes an extracted lane on this scheduler **without**
    /// resetting its recurrent or evaluator lane state: the snapshot's
    /// per-layer `(h, c)` is written into the admitted lane, and the
    /// caller imports the evaluator's per-lane state at the returned
    /// lane index.  [`begin_lane_sequence`](NeuronEvaluator::begin_lane_sequence)
    /// is deliberately *not* called — the sequence is mid-flight.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if this scheduler uses
    /// [`RefillPolicy::Wave`], has no free lane, or the snapshot's
    /// shape does not match this scheduler's network.
    pub fn implant(&mut self, token: u64, snapshot: LaneSnapshot) -> Result<usize> {
        if self.policy != RefillPolicy::Block {
            return Err(RnnError::InvalidConfig {
                what: "wave-refill schedulers cannot implant migrated lanes".into(),
            });
        }
        if self.free_lanes() == 0 {
            return Err(RnnError::InvalidConfig {
                what: format!("all {} scheduler lanes are occupied", self.lanes),
            });
        }
        let widths_match = snapshot.layers.len() == self.hidden.len()
            && snapshot
                .layers
                .iter()
                .zip(&self.hidden)
                .all(|((h, c), &w)| h.len() == w && c.len() == w);
        if snapshot.input_size != self.input_size || !widths_match || snapshot.remaining() == 0 {
            return Err(RnnError::InvalidConfig {
                what: "migrated lane does not match this scheduler's network shape".into(),
            });
        }
        let lane = self.slots.len();
        for (state, (h, c)) in self.states.iter_mut().zip(&snapshot.layers) {
            state.set_lane(lane, h, c);
        }
        self.slots.push(LaneSlot {
            token,
            inputs: snapshot.inputs,
            t: snapshot.t,
            outputs: snapshot.outputs,
        });
        Ok(lane)
    }

    /// The token of the active block lane with the most remaining
    /// timesteps, provided at least `min_remaining` remain — the lane
    /// a saturated worker offers an idle one.  `None` under
    /// [`RefillPolicy::Wave`] or when no lane qualifies.
    pub fn steal_candidate(&self, min_remaining: usize) -> Option<u64> {
        if self.policy != RefillPolicy::Block {
            return None;
        }
        self.slots
            .iter()
            .filter(|s| s.remaining() >= min_remaining)
            .max_by_key(|s| s.remaining())
            .map(|s| s.token)
    }

    /// Restores the descending-remaining lane order admissions at the
    /// tail may have broken.  A stable insertion sort applied as
    /// adjacent swaps, so recurrent and evaluator lane state move with
    /// their lanes and results stay bit-identical.
    fn sort_by_remaining(&mut self, evaluator: &mut dyn NeuronEvaluator) {
        for i in 1..self.slots.len() {
            let mut j = i;
            while j > 0 && self.slots[j].remaining() > self.slots[j - 1].remaining() {
                self.swap_lanes(j - 1, j, evaluator);
                j -= 1;
            }
        }
    }

    /// Swaps two lanes everywhere their state lives: slot bookkeeping,
    /// per-layer recurrent state, and the evaluator's per-lane state.
    fn swap_lanes(&mut self, a: usize, b: usize, evaluator: &mut dyn NeuronEvaluator) {
        if a == b {
            return;
        }
        self.slots.swap(a, b);
        for state in &mut self.states {
            state.swap_lanes(a, b);
        }
        evaluator.swap_lane_state(a, b);
    }

    /// Shared retire loop of [`step`](LaneScheduler::step): pops every
    /// lane whose sequence is exhausted, compacting the active prefix.
    fn retire_finished(
        &mut self,
        evaluator: &mut dyn NeuronEvaluator,
        finished: &mut Vec<FinishedLane>,
    ) {
        for l in (0..self.slots.len()).rev() {
            if self.slots[l].remaining() == 0 {
                let tail = self.slots.len() - 1;
                self.swap_lanes(l, tail, evaluator);
                let slot = self.slots.pop().expect("slot exists");
                finished.push(FinishedLane {
                    token: slot.token,
                    outputs: slot.outputs,
                    stats_lane: Some(tail),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CellKind, DeepRnnConfig, Direction};
    use crate::evaluator::{CountingEvaluator, ExactEvaluator};
    use nfm_tensor::rng::DeterministicRng;

    fn seq(n: usize, width: usize, seed: u64) -> Vec<Vector> {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vector::from_fn(width, |_| rng.uniform(-1.0, 1.0)))
            .collect()
    }

    fn networks() -> Vec<DeepRnn> {
        let mut rng = DeterministicRng::seed_from_u64(77);
        vec![
            DeepRnn::random(
                &DeepRnnConfig::new(CellKind::Lstm, 4, 6)
                    .layers(2)
                    .output_size(3),
                &mut rng,
            )
            .unwrap(),
            DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, 5, 7).layers(3), &mut rng).unwrap(),
        ]
    }

    /// Drains a set of sequences through a scheduler with `lanes`
    /// lanes, refilling freed lanes as soon as the policy allows, and
    /// returns outputs by token.
    fn drain_scheduler(
        net: &DeepRnn,
        lanes: usize,
        policy: RefillPolicy,
        seqs: &[Vec<Vector>],
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Vec<Vec<Vector>> {
        let mut sched = LaneScheduler::new(net, lanes, policy).unwrap();
        evaluator.begin_batch(lanes);
        let mut queue: std::collections::VecDeque<(u64, Vec<Vector>)> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s.clone()))
            .collect();
        let mut results: Vec<Option<Vec<Vector>>> = vec![None; seqs.len()];
        let mut finished = Vec::new();
        loop {
            while sched.free_lanes() > 0 {
                match queue.pop_front() {
                    Some((token, s)) => sched.admit(token, s, net, evaluator).unwrap(),
                    None => break,
                }
            }
            if sched.step(net, evaluator, &mut finished).unwrap() == 0 {
                break;
            }
            for f in finished.drain(..) {
                results[f.token as usize] = Some(f.outputs);
            }
        }
        results.into_iter().map(|r| r.expect("finished")).collect()
    }

    fn assert_bitwise_eq(a: &[Vec<Vector>], b: &[Vec<Vector>], what: &str) {
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(x.len(), y.len(), "{what} seq {i}");
            for (t, (u, v)) in x.iter().zip(y.iter()).enumerate() {
                for n in 0..u.len() {
                    assert_eq!(u[n].to_bits(), v[n].to_bits(), "{what} seq={i} t={t} n={n}");
                }
            }
        }
    }

    #[test]
    fn block_scheduler_matches_dedicated_runs_bitwise() {
        // Ragged lengths across every lane count, LSTM with head and a
        // 3-layer GRU: each sequence's block-scheduled outputs must be
        // bit-identical to its own dedicated run, and mid-wave refill
        // must not change the total evaluation count.
        let lens = [9usize, 3, 7, 7, 1, 5, 17, 2];
        for net in networks() {
            let seqs: Vec<Vec<Vector>> = lens
                .iter()
                .enumerate()
                .map(|(i, &n)| seq(n, net.input_size(), 900 + i as u64))
                .collect();
            let mut reference = Vec::new();
            let mut single_evals = 0u64;
            for s in &seqs {
                let mut eval = ExactEvaluator::new();
                reference.push(net.run(s, &mut eval).unwrap());
                single_evals += eval.evaluations();
            }
            for lanes in [1usize, 2, 3, 8] {
                let mut eval = ExactEvaluator::new();
                let outs = drain_scheduler(&net, lanes, RefillPolicy::Block, &seqs, &mut eval);
                assert_bitwise_eq(&outs, &reference, &format!("lanes={lanes}"));
                assert_eq!(eval.evaluations(), single_evals, "lanes={lanes}");
            }
        }
    }

    #[test]
    fn hoist_block_size_is_bit_transparent() {
        // The autotuner may shrink the hoist block; any valid size must
        // reproduce the default schedule's outputs bit for bit.
        let lens = [9usize, 3, 7, 1, 5, 17];
        let net = &networks()[0];
        let seqs: Vec<Vec<Vector>> = lens
            .iter()
            .enumerate()
            .map(|(i, &n)| seq(n, net.input_size(), 300 + i as u64))
            .collect();
        let reference: Vec<Vec<Vector>> = seqs
            .iter()
            .map(|s| net.run(s, &mut ExactEvaluator::new()).unwrap())
            .collect();
        for block in [1usize, 4, HOIST_BLOCK] {
            let mut sched = LaneScheduler::new(net, 3, RefillPolicy::Block).unwrap();
            sched.set_hoist_block(block).unwrap();
            assert_eq!(sched.hoist_block(), block);
            let mut eval = ExactEvaluator::new();
            eval.begin_batch(3);
            let mut queue: std::collections::VecDeque<(u64, Vec<Vector>)> = seqs
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u64, s.clone()))
                .collect();
            let mut results: Vec<Option<Vec<Vector>>> = vec![None; seqs.len()];
            let mut finished = Vec::new();
            loop {
                while sched.free_lanes() > 0 {
                    match queue.pop_front() {
                        Some((token, s)) => sched.admit(token, s, net, &mut eval).unwrap(),
                        None => break,
                    }
                }
                if sched.step(net, &mut eval, &mut finished).unwrap() == 0 {
                    break;
                }
                for f in finished.drain(..) {
                    results[f.token as usize] = Some(f.outputs);
                }
            }
            let outs: Vec<Vec<Vector>> =
                results.into_iter().map(|r| r.expect("finished")).collect();
            assert_bitwise_eq(&outs, &reference, &format!("hoist block={block}"));
        }
        let mut sched = LaneScheduler::new(net, 3, RefillPolicy::Block).unwrap();
        assert!(sched.set_hoist_block(0).is_err());
        assert!(sched.set_hoist_block(HOIST_BLOCK + 1).is_err());
    }

    #[test]
    fn wave_policy_matches_dedicated_runs_bitwise() {
        let lens = [9usize, 3, 7, 7, 1, 5];
        let mut rng = DeterministicRng::seed_from_u64(5);
        let mut nets = networks();
        nets.push(
            DeepRnn::random(
                &DeepRnnConfig::new(CellKind::Lstm, 3, 4).direction(Direction::Bidirectional),
                &mut rng,
            )
            .unwrap(),
        );
        for net in nets {
            let seqs: Vec<Vec<Vector>> = lens
                .iter()
                .enumerate()
                .map(|(i, &n)| seq(n, net.input_size(), 400 + i as u64))
                .collect();
            let reference: Vec<Vec<Vector>> = seqs
                .iter()
                .map(|s| net.run(s, &mut ExactEvaluator::new()).unwrap())
                .collect();
            for lanes in [2usize, 3] {
                let mut eval = ExactEvaluator::new();
                let outs = drain_scheduler(&net, lanes, RefillPolicy::Wave, &seqs, &mut eval);
                assert_bitwise_eq(&outs, &reference, &format!("wave lanes={lanes}"));
            }
        }
    }

    #[test]
    fn refill_starts_each_sequence_cold() {
        // CountingEvaluator counts begin_lane_sequence calls: every
        // admission (including mid-wave refills) must start a sequence.
        let net = networks().remove(0);
        let seqs: Vec<Vec<Vector>> = (0..5)
            .map(|i| seq(3 + i % 3, net.input_size(), 950 + i as u64))
            .collect();
        let mut eval = CountingEvaluator::new(ExactEvaluator::new());
        let _ = drain_scheduler(&net, 2, RefillPolicy::Block, &seqs, &mut eval);
        assert_eq!(eval.sequences(), 5);
    }

    #[test]
    fn rejects_bidirectional_block_stacks_and_zero_lanes() {
        let mut rng = DeterministicRng::seed_from_u64(5);
        let bidi = DeepRnn::random(
            &DeepRnnConfig::new(CellKind::Lstm, 3, 4).direction(Direction::Bidirectional),
            &mut rng,
        )
        .unwrap();
        assert!(matches!(
            LaneScheduler::new(&bidi, 2, RefillPolicy::Block),
            Err(RnnError::InvalidConfig { .. })
        ));
        assert!(LaneScheduler::new(&bidi, 2, RefillPolicy::Wave).is_ok());
        let uni = networks().remove(0);
        for policy in [RefillPolicy::Block, RefillPolicy::Wave] {
            assert!(matches!(
                LaneScheduler::new(&uni, 0, policy),
                Err(RnnError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn admit_validates_sequences_and_capacity() {
        let net = networks().remove(0);
        for policy in [RefillPolicy::Block, RefillPolicy::Wave] {
            let mut sched = LaneScheduler::new(&net, 1, policy).unwrap();
            let mut eval = ExactEvaluator::new();
            eval.begin_batch(1);
            assert!(matches!(
                sched.admit(0, Vec::new(), &net, &mut eval),
                Err(RnnError::EmptySequence)
            ));
            assert!(matches!(
                sched.admit(0, vec![Vector::zeros(2)], &net, &mut eval),
                Err(RnnError::InputSizeMismatch { .. })
            ));
            sched
                .admit(0, seq(4, net.input_size(), 1), &net, &mut eval)
                .unwrap();
            assert_eq!(sched.free_lanes(), 0);
            assert!(sched
                .admit(1, seq(4, net.input_size(), 2), &net, &mut eval)
                .is_err());
        }
    }

    #[test]
    fn cancel_frees_the_lane_and_keeps_survivors_bit_identical() {
        let net = networks().remove(0);
        let seqs: Vec<Vec<Vector>> = (0..3)
            .map(|i| seq(12, net.input_size(), 970 + i as u64))
            .collect();
        // Reference: dedicated runs for the two surviving sequences.
        let mut reference = Vec::new();
        for s in &seqs[1..] {
            reference.push(net.run(s, &mut ExactEvaluator::new()).unwrap());
        }
        let mut sched = LaneScheduler::new(&net, 3, RefillPolicy::Block).unwrap();
        let mut eval = ExactEvaluator::new();
        eval.begin_batch(3);
        for (i, s) in seqs.iter().enumerate() {
            sched.admit(i as u64, s.clone(), &net, &mut eval).unwrap();
        }
        let mut finished = Vec::new();
        // One block in (8 of 12 timesteps), abort token 0 mid-sequence.
        sched.step(&net, &mut eval, &mut finished).unwrap();
        assert!(finished.is_empty());
        let cancelled = sched.cancel(0, &mut eval).expect("token 0 in flight");
        assert_eq!(cancelled.token, 0);
        assert_eq!(cancelled.outputs.len(), 8, "one block of partial outputs");
        assert!(cancelled.stats_lane.is_some());
        assert_eq!(sched.free_lanes(), 1, "the lane is free immediately");
        assert!(sched.cancel(0, &mut eval).is_none(), "already evicted");
        // Drain the survivors; their outputs must be unaffected.
        while sched.step(&net, &mut eval, &mut finished).unwrap() > 0 {}
        finished.sort_by_key(|f| f.token);
        assert_eq!(finished.len(), 2);
        for (f, reference) in finished.iter().zip(reference.iter()) {
            assert_eq!(&f.outputs, reference, "survivor token {}", f.token);
        }
    }

    #[test]
    fn cancelled_wave_admissions_never_enter_the_evaluator() {
        let net = networks().remove(0);
        let mut sched = LaneScheduler::new(&net, 2, RefillPolicy::Wave).unwrap();
        let mut eval = CountingEvaluator::new(ExactEvaluator::new());
        sched
            .admit(7, seq(4, net.input_size(), 3), &net, &mut eval)
            .unwrap();
        let dropped = sched.cancel(7, &mut eval).expect("pending admission");
        assert_eq!(dropped.token, 7);
        assert!(dropped.outputs.is_empty());
        assert_eq!(dropped.stats_lane, None);
        assert!(sched.is_idle());
        assert_eq!(eval.sequences(), 0);
    }

    #[test]
    fn extract_implant_resumes_bit_identically_across_schedulers() {
        // Run two ragged sequences one block in, extract the longer
        // one mid-sequence, implant it into a fresh scheduler, and
        // drain both: every output must equal a dedicated run, and the
        // donor's survivor must be unaffected.
        let net = networks().remove(0);
        let long = seq(20, net.input_size(), 31);
        let short = seq(11, net.input_size(), 32);
        let ref_long = net.run(&long, &mut ExactEvaluator::new()).unwrap();
        let ref_short = net.run(&short, &mut ExactEvaluator::new()).unwrap();

        let mut donor = LaneScheduler::new(&net, 2, RefillPolicy::Block).unwrap();
        let mut donor_eval = ExactEvaluator::new();
        donor_eval.begin_batch(2);
        donor.admit(0, long, &net, &mut donor_eval).unwrap();
        donor.admit(1, short, &net, &mut donor_eval).unwrap();
        let mut finished = Vec::new();
        donor.step(&net, &mut donor_eval, &mut finished).unwrap();
        assert!(finished.is_empty());

        assert_eq!(donor.steal_candidate(64), None, "nothing that long");
        assert_eq!(donor.steal_candidate(10), Some(0), "token 0 has 12 left");
        assert!(donor.lane_of(0).is_some());
        let snap = donor.extract(0, &mut donor_eval).expect("token 0 active");
        assert_eq!(snap.remaining(), 12);
        assert_eq!(snap.timesteps(), 20);
        assert_eq!(donor.active_lanes(), 1);

        let mut receiver = LaneScheduler::new(&net, 1, RefillPolicy::Block).unwrap();
        let mut receiver_eval = ExactEvaluator::new();
        receiver_eval.begin_batch(1);
        let lane = receiver.implant(9, snap).unwrap();
        assert_eq!(lane, 0);
        while receiver
            .step(&net, &mut receiver_eval, &mut finished)
            .unwrap()
            > 0
        {}
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].token, 9);
        assert_eq!(&finished[0].outputs, &ref_long, "migrated lane");
        finished.clear();
        while donor.step(&net, &mut donor_eval, &mut finished).unwrap() > 0 {}
        assert_eq!(finished.len(), 1);
        assert_eq!(&finished[0].outputs, &ref_short, "donor survivor");
    }

    #[test]
    fn implant_rejects_mismatched_shapes_and_wave_policy() {
        let mut nets = networks();
        let gru = nets.pop().unwrap();
        let lstm = nets.pop().unwrap();
        let mut donor = LaneScheduler::new(&lstm, 1, RefillPolicy::Block).unwrap();
        let mut eval = ExactEvaluator::new();
        eval.begin_batch(1);
        donor
            .admit(0, seq(20, lstm.input_size(), 8), &lstm, &mut eval)
            .unwrap();
        let mut finished = Vec::new();
        donor.step(&lstm, &mut eval, &mut finished).unwrap();
        let snap = donor.extract(0, &mut eval).unwrap();
        let mut wrong_shape = LaneScheduler::new(&gru, 1, RefillPolicy::Block).unwrap();
        assert!(wrong_shape.implant(1, snap.clone()).is_err());
        let mut wave = LaneScheduler::new(&lstm, 1, RefillPolicy::Wave).unwrap();
        assert!(wave.implant(1, snap).is_err());
    }

    #[test]
    fn idle_scheduler_steps_zero_lanes() {
        let net = networks().remove(0);
        for policy in [RefillPolicy::Block, RefillPolicy::Wave] {
            let mut sched = LaneScheduler::new(&net, 3, policy).unwrap();
            assert!(sched.is_idle());
            assert_eq!(sched.lanes(), 3);
            assert_eq!(sched.active_lanes(), 0);
            assert_eq!(sched.policy(), policy);
            let mut eval = ExactEvaluator::new();
            let mut finished = Vec::new();
            assert_eq!(sched.step(&net, &mut eval, &mut finished).unwrap(), 0);
            assert!(finished.is_empty());
        }
    }
}
