//! Step-pipelined lane scheduler with mid-wave lane refill.
//!
//! [`DeepRnn::run_batch`] executes a batch **layer-lockstep**: layer 0
//! processes every lane's whole sequence, then layer 1, and so on.
//! That shape cannot admit a new sequence mid-wave — a freed lane stays
//! idle until the next wave boundary, so ragged traffic drains the
//! active prefix and the weight-stream amortization of batching decays
//! with it.
//!
//! For **unidirectional** stacks the data dependencies permit a second
//! schedule: layer `k` at timestep `t` needs only layer `k-1` at `t` and
//! layer `k`'s own state at `t-1`, so every lane can advance
//! timestep-by-timestep through the *whole* stack.  [`StepPipeline`]
//! implements that schedule.  Each [`StepPipeline::step`] call advances
//! all active lanes one timestep (one batched gate evaluation per gate
//! per layer over the active prefix), finished lanes are retired at the
//! end of the step, and [`StepPipeline::admit`] can hand a freed lane a
//! fresh sequence **immediately** — the mid-wave refill the ROADMAP
//! asks for.  `nfm-serve` builds its request engine on top of this
//! scheduler.
//!
//! # Equivalence
//!
//! Per-lane results are **bit-identical** to a dedicated
//! [`DeepRnn::run`] over the same sequence, for the same reason the
//! wave schedule is: every `(neuron, lane)` dot product goes through
//! the shared reduction order, lanes never interact numerically, and
//! per-lane memoization state is reset by
//! [`NeuronEvaluator::begin_lane_sequence`] when a lane is admitted.
//! Scheduling therefore changes throughput, never results.
//!
//! # Lane compaction
//!
//! Batched cell stepping requires the active lanes to form a prefix
//! `0..active`.  While refills are available every slot stays occupied;
//! when the caller has nothing to admit (queue drained), a finished
//! interior lane is *swapped* with the last active lane —
//! [`BatchState::swap_lanes`] moves the recurrent state and
//! [`NeuronEvaluator::swap_lane_state`] moves the evaluator's per-lane
//! memo tables and statistics alongside — and the prefix shrinks by
//! one.
//!
//! # Timestep semantics
//!
//! Lanes sit at *different* positions of their own sequences, so the
//! `timestep` handed to the evaluator's batch methods is the pipeline's
//! global step counter, not a per-lane sequence index.  The built-in
//! evaluators ignore the batch-path timestep; a custom evaluator that
//! keys per-lane state must use the lane index plus
//! [`NeuronEvaluator::begin_lane_sequence`] instead.

use crate::batch::{BatchScratch, BatchState};
use crate::error::RnnError;
use crate::evaluator::NeuronEvaluator;
use crate::gate::GateKind;
use crate::layer::Cell;
use crate::network::DeepRnn;
use crate::Result;
use nfm_tensor::kernels::matmul_into;
use nfm_tensor::Vector;

/// The largest gate count of any cell kind (LSTM), sizing the
/// stack-allocated hoisted-slice array in the step loop.
const MAX_GATES: usize = GateKind::LSTM.len();

/// One lane that finished its sequence during a [`StepPipeline::step`]
/// call.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedLane {
    /// The caller-chosen token passed to [`StepPipeline::admit`].
    pub token: u64,
    /// One output per timestep of the finished sequence (head applied
    /// when the network has one).
    pub outputs: Vec<Vector>,
    /// The evaluator lane index where this sequence's per-lane state
    /// (memo table, per-lane statistics) resides *right now*.  Read any
    /// per-lane statistics at this index **before** the next
    /// [`StepPipeline::admit`] call: admission reuses retired lane
    /// slots and `begin_lane_sequence` resets their state.
    pub stats_lane: usize,
}

/// Per-lane bookkeeping: the sequence being processed, the next
/// timestep to consume, the outputs produced so far, and the
/// admission-time hoisted input projections for layer 0.
#[derive(Debug)]
struct LaneSlot {
    token: u64,
    inputs: Vec<Vector>,
    t: usize,
    outputs: Vec<Vector>,
    /// `W_x·x_t` for every gate of the layer-0 cell over the whole
    /// sequence, laid out `[gate][t][hidden]`; empty when the evaluator
    /// does not support input hoisting.
    hoist: Vec<f32>,
}

/// A step-pipelined lane scheduler for unidirectional [`DeepRnn`]
/// stacks (see the [module docs](self) for the schedule and its
/// equivalence contract).
///
/// The pipeline owns all recurrent state and scratch (`2 × layers`
/// lane-striped [`BatchState`]s plus one [`BatchScratch`]); the caller
/// owns the evaluator and the network and passes both into
/// [`admit`](StepPipeline::admit) / [`step`](StepPipeline::step).  Call
/// [`NeuronEvaluator::begin_batch`] with [`lanes`](StepPipeline::lanes)
/// once before the first admission so per-lane evaluator state is
/// sized.
#[derive(Debug)]
pub struct StepPipeline {
    lanes: usize,
    input_size: usize,
    /// Hidden size per layer (layer `k`'s output width feeds `k+1`).
    hidden: Vec<usize>,
    states: Vec<BatchState>,
    nexts: Vec<BatchState>,
    scratch: BatchScratch,
    /// Gathered layer-0 inputs for the active prefix, lane-striped.
    x_buf: Vec<f32>,
    /// Gathered layer-0 hoisted projections for the active prefix, one
    /// lane-striped block per gate.
    hoist_buf: Vec<f32>,
    /// Scratch for packing a sequence at admission (hoist matmul input).
    pack_buf: Vec<f32>,
    /// Occupied lane slots; always exactly `active` entries, slot `l`
    /// holding lane `l`'s sequence.
    slots: Vec<LaneSlot>,
    steps: usize,
}

impl StepPipeline {
    /// Creates a pipeline with `lanes` lane slots for `network`.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if `lanes == 0` (a pipeline
    /// needs at least one lane; the accepted range is `lanes >= 1`) or
    /// if any layer of the stack is bidirectional (the backward half
    /// consumes the sequence end-first, which is incompatible with
    /// step-pipelining; use [`DeepRnn::run_batch`] for those).
    pub fn new(network: &DeepRnn, lanes: usize) -> Result<Self> {
        if lanes == 0 {
            return Err(RnnError::InvalidConfig {
                what: "a step pipeline needs at least one lane (lanes >= 1), got 0".into(),
            });
        }
        if let Some(layer) = network.layers().iter().find(|l| l.is_bidirectional()) {
            return Err(RnnError::InvalidConfig {
                what: format!(
                    "step pipelining requires a unidirectional stack, but layer {} is \
                     bidirectional",
                    layer.index()
                ),
            });
        }
        let hidden: Vec<usize> = network
            .layers()
            .iter()
            .map(|l| l.forward_cell().hidden_size())
            .collect();
        let states = hidden
            .iter()
            .map(|&h| BatchState::zeros(lanes, h))
            .collect();
        let nexts = hidden
            .iter()
            .map(|&h| BatchState::zeros(lanes, h))
            .collect();
        Ok(StepPipeline {
            lanes,
            input_size: network.input_size(),
            hidden,
            states,
            nexts,
            scratch: BatchScratch::new(),
            x_buf: Vec::new(),
            hoist_buf: Vec::new(),
            pack_buf: Vec::new(),
            slots: Vec::with_capacity(lanes),
            steps: 0,
        })
    }

    /// Total lane slots.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Currently occupied lanes.
    pub fn active_lanes(&self) -> usize {
        self.slots.len()
    }

    /// Lane slots available for [`admit`](StepPipeline::admit).
    pub fn free_lanes(&self) -> usize {
        self.lanes - self.slots.len()
    }

    /// Whether no lane holds a sequence.
    pub fn is_idle(&self) -> bool {
        self.slots.is_empty()
    }

    /// Places `sequence` into a free lane, resetting that lane's
    /// recurrent state and calling
    /// [`begin_lane_sequence`](NeuronEvaluator::begin_lane_sequence) so
    /// memoization starts cold — mid-wave, with the other lanes
    /// untouched.  `token` is returned with the lane's
    /// [`FinishedLane`]; the scheduler attaches no meaning to it.
    ///
    /// When the evaluator
    /// [supports input hoisting](NeuronEvaluator::supports_input_hoisting),
    /// the layer-0 projections `W_x·x_t` for the whole sequence are
    /// computed here with one matrix product per gate (bit-transparent:
    /// the hoisted kernels keep the `fwd + rec` scalar order).
    ///
    /// # Errors
    ///
    /// Returns an error if no lane is free, the sequence is empty, or
    /// an element has the wrong width.
    pub fn admit(
        &mut self,
        token: u64,
        sequence: Vec<Vector>,
        network: &DeepRnn,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<()> {
        if self.free_lanes() == 0 {
            return Err(RnnError::InvalidConfig {
                what: format!("all {} pipeline lanes are occupied", self.lanes),
            });
        }
        if sequence.is_empty() {
            return Err(RnnError::EmptySequence);
        }
        for (t, x) in sequence.iter().enumerate() {
            if x.len() != self.input_size {
                return Err(RnnError::InputSizeMismatch {
                    expected: self.input_size,
                    found: x.len(),
                    timestep: t,
                });
            }
        }
        let lane = self.slots.len();
        for state in &mut self.states {
            state.reset_lane(lane);
        }
        evaluator.begin_lane_sequence(lane);

        let mut hoist = Vec::new();
        if evaluator.supports_input_hoisting() {
            // One matrix product per layer-0 gate covers the whole
            // sequence's input projections (timesteps take the lane
            // role, so each projection is the same dot_unchecked the
            // fused kernel would compute).
            let len = sequence.len();
            let cell = network.layers()[0].forward_cell();
            let h0 = self.hidden[0];
            if self.pack_buf.len() < len * self.input_size {
                self.pack_buf.resize(len * self.input_size, 0.0);
            }
            for (t, x) in sequence.iter().enumerate() {
                self.pack_buf[t * self.input_size..(t + 1) * self.input_size]
                    .copy_from_slice(x.as_slice());
            }
            let kinds = cell.gate_kinds();
            hoist.resize(kinds.len() * len * h0, 0.0);
            for (g, kind) in kinds.iter().enumerate() {
                let gate = cell.gate(*kind).expect("cell exposes its own gate kinds");
                matmul_into(
                    gate.wx(),
                    &self.pack_buf[..len * self.input_size],
                    len,
                    &mut hoist[g * len * h0..(g + 1) * len * h0],
                )?;
            }
        }
        self.slots.push(LaneSlot {
            token,
            inputs: sequence,
            t: 0,
            outputs: Vec::new(),
            hoist,
        });
        Ok(())
    }

    /// Advances every active lane by one timestep through the whole
    /// stack, appending finished lanes to `finished` (see
    /// [`FinishedLane::stats_lane`] for the read-before-admit
    /// contract).  Returns the number of lanes advanced — `0` means the
    /// pipeline is idle.
    ///
    /// # Errors
    ///
    /// Propagates evaluator/kernel errors; these indicate widths that
    /// [`admit`](StepPipeline::admit) already validated, so they only
    /// arise from a network/evaluator swapped mid-flight.
    pub fn step(
        &mut self,
        network: &DeepRnn,
        evaluator: &mut dyn NeuronEvaluator,
        finished: &mut Vec<FinishedLane>,
    ) -> Result<usize> {
        let active = self.slots.len();
        if active == 0 {
            return Ok(0);
        }
        // Gather each active lane's current input, lane-striped.
        if self.x_buf.len() < active * self.input_size {
            self.x_buf.resize(active * self.input_size, 0.0);
        }
        for (l, slot) in self.slots.iter().enumerate() {
            self.x_buf[l * self.input_size..(l + 1) * self.input_size]
                .copy_from_slice(slot.inputs[slot.t].as_slice());
        }
        let hoisting = evaluator.supports_input_hoisting();
        let layer_count = self.hidden.len();
        for k in 0..layer_count {
            let cell = network.layers()[k].forward_cell();
            let kinds = cell.gate_kinds();
            let gate_count = kinds.len();
            debug_assert!(gate_count <= MAX_GATES);
            let h_k = self.hidden[k];
            let mut fwd_slices: [&[f32]; MAX_GATES] = [&[]; MAX_GATES];
            let hoisted: Option<&[&[f32]]> = if k == 0 && hoisting {
                // Gather this timestep's per-lane projections into one
                // lane-striped block per gate.
                if self.hoist_buf.len() < gate_count * active * h_k {
                    self.hoist_buf.resize(gate_count * active * h_k, 0.0);
                }
                for (l, slot) in self.slots.iter().enumerate() {
                    let len = slot.inputs.len();
                    for g in 0..gate_count {
                        let src = g * len * h_k + slot.t * h_k;
                        let dst = g * active * h_k + l * h_k;
                        self.hoist_buf[dst..dst + h_k].copy_from_slice(&slot.hoist[src..src + h_k]);
                    }
                }
                for (g, slot) in fwd_slices.iter_mut().enumerate().take(gate_count) {
                    *slot = &self.hoist_buf[g * active * h_k..(g + 1) * active * h_k];
                }
                Some(&fwd_slices[..gate_count])
            } else {
                None
            };
            let xs: &[f32] = if k == 0 {
                &self.x_buf[..active * self.input_size]
            } else {
                self.states[k - 1].h_prefix(active)
            };
            match cell {
                Cell::Lstm(c) => c.step_batch_into(
                    k,
                    0,
                    self.steps,
                    active,
                    xs,
                    &self.states[k],
                    &mut self.nexts[k],
                    &mut self.scratch,
                    hoisted,
                    evaluator,
                )?,
                Cell::Gru(c) => c.step_batch_into(
                    k,
                    0,
                    self.steps,
                    active,
                    xs,
                    &self.states[k],
                    &mut self.nexts[k],
                    &mut self.scratch,
                    hoisted,
                    evaluator,
                )?,
            }
            std::mem::swap(&mut self.states[k], &mut self.nexts[k]);
        }
        // Emit this timestep's outputs (head applied when present).
        let last = &self.states[layer_count - 1];
        for (l, slot) in self.slots.iter_mut().enumerate() {
            let h = Vector::from(last.h_lane(l).to_vec());
            let out = match network.head() {
                None => h,
                Some(head) => head.apply(&h)?,
            };
            slot.outputs.push(out);
            slot.t += 1;
        }
        self.steps += 1;
        // Retire finished lanes, highest index first so each swap
        // target is still an unfinished lane (or the lane itself).
        self.retire_finished(evaluator, finished);
        Ok(active)
    }

    /// Evicts the lane holding `token` mid-sequence — the per-step
    /// deadline-abort hook: a serving engine that notices an in-flight
    /// request's deadline expired frees its lane *immediately* instead
    /// of computing the remaining timesteps.
    ///
    /// Compaction is identical to retiring a finished lane (state swap
    /// with the tail plus [`NeuronEvaluator::swap_lane_state`]), so the
    /// surviving lanes keep bit-identical results.  Returns the evicted
    /// lane with the outputs of the timesteps computed **so far** (a
    /// partial sequence) and the [`FinishedLane::stats_lane`] index its
    /// per-lane statistics live at — read them before the next
    /// [`admit`](StepPipeline::admit), exactly like a finished lane.
    /// Returns `None` when no active lane holds `token`.
    pub fn cancel(
        &mut self,
        token: u64,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Option<FinishedLane> {
        let lane = self.slots.iter().position(|s| s.token == token)?;
        let tail = self.slots.len() - 1;
        if lane != tail {
            self.slots.swap(lane, tail);
            for state in &mut self.states {
                state.swap_lanes(lane, tail);
            }
            evaluator.swap_lane_state(lane, tail);
        }
        let slot = self.slots.pop().expect("slot exists");
        Some(FinishedLane {
            token: slot.token,
            outputs: slot.outputs,
            stats_lane: tail,
        })
    }

    /// Shared retire loop of [`step`](StepPipeline::step): pops every
    /// lane whose sequence is exhausted, compacting the active prefix.
    fn retire_finished(
        &mut self,
        evaluator: &mut dyn NeuronEvaluator,
        finished: &mut Vec<FinishedLane>,
    ) {
        for l in (0..self.slots.len()).rev() {
            if self.slots[l].t == self.slots[l].inputs.len() {
                let tail = self.slots.len() - 1;
                if l != tail {
                    self.slots.swap(l, tail);
                    for state in &mut self.states {
                        state.swap_lanes(l, tail);
                    }
                    evaluator.swap_lane_state(l, tail);
                }
                let slot = self.slots.pop().expect("slot exists");
                finished.push(FinishedLane {
                    token: slot.token,
                    outputs: slot.outputs,
                    stats_lane: tail,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CellKind, DeepRnnConfig, Direction};
    use crate::evaluator::{CountingEvaluator, ExactEvaluator};
    use nfm_tensor::rng::DeterministicRng;

    fn seq(n: usize, width: usize, seed: u64) -> Vec<Vector> {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vector::from_fn(width, |_| rng.uniform(-1.0, 1.0)))
            .collect()
    }

    fn networks() -> Vec<DeepRnn> {
        let mut rng = DeterministicRng::seed_from_u64(77);
        vec![
            DeepRnn::random(
                &DeepRnnConfig::new(CellKind::Lstm, 4, 6)
                    .layers(2)
                    .output_size(3),
                &mut rng,
            )
            .unwrap(),
            DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, 5, 7).layers(3), &mut rng).unwrap(),
        ]
    }

    /// Drains a set of sequences through a pipeline with `lanes` lanes,
    /// refilling freed lanes immediately, and returns outputs by token.
    fn drain_pipeline(
        net: &DeepRnn,
        lanes: usize,
        seqs: &[Vec<Vector>],
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Vec<Vec<Vector>> {
        let mut pipeline = StepPipeline::new(net, lanes).unwrap();
        evaluator.begin_batch(lanes);
        let mut queue: std::collections::VecDeque<(u64, Vec<Vector>)> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s.clone()))
            .collect();
        let mut results: Vec<Option<Vec<Vector>>> = vec![None; seqs.len()];
        let mut finished = Vec::new();
        loop {
            while pipeline.free_lanes() > 0 {
                match queue.pop_front() {
                    Some((token, s)) => pipeline.admit(token, s, net, evaluator).unwrap(),
                    None => break,
                }
            }
            if pipeline.step(net, evaluator, &mut finished).unwrap() == 0 {
                break;
            }
            for f in finished.drain(..) {
                results[f.token as usize] = Some(f.outputs);
            }
        }
        results.into_iter().map(|r| r.expect("finished")).collect()
    }

    #[test]
    fn pipeline_matches_dedicated_runs_bitwise() {
        // Ragged lengths across every lane count, LSTM with head and a
        // 3-layer GRU: each sequence's pipelined outputs must be
        // bit-identical to its own dedicated run.
        let lens = [9usize, 3, 7, 7, 1, 5];
        for net in networks() {
            let seqs: Vec<Vec<Vector>> = lens
                .iter()
                .enumerate()
                .map(|(i, &n)| seq(n, net.input_size(), 900 + i as u64))
                .collect();
            let mut reference = Vec::new();
            let mut single_evals = 0u64;
            for s in &seqs {
                let mut eval = ExactEvaluator::new();
                reference.push(net.run(s, &mut eval).unwrap());
                single_evals += eval.evaluations();
            }
            for lanes in [1usize, 2, 3, 8] {
                let mut eval = ExactEvaluator::new();
                let outs = drain_pipeline(&net, lanes, &seqs, &mut eval);
                for (i, (a, b)) in outs.iter().zip(reference.iter()).enumerate() {
                    assert_eq!(a.len(), b.len(), "lanes={lanes} seq {i}");
                    for (t, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                        for n in 0..x.len() {
                            assert_eq!(
                                x[n].to_bits(),
                                y[n].to_bits(),
                                "lanes={lanes} seq={i} t={t} n={n}"
                            );
                        }
                    }
                }
                assert_eq!(eval.evaluations(), single_evals, "lanes={lanes}");
            }
        }
    }

    #[test]
    fn refill_starts_each_sequence_cold() {
        // CountingEvaluator counts begin_lane_sequence calls: every
        // admission (including mid-wave refills) must start a sequence.
        let net = networks().remove(0);
        let seqs: Vec<Vec<Vector>> = (0..5)
            .map(|i| seq(3 + i % 3, net.input_size(), 950 + i as u64))
            .collect();
        let mut eval = CountingEvaluator::new(ExactEvaluator::new());
        let _ = drain_pipeline(&net, 2, &seqs, &mut eval);
        assert_eq!(eval.sequences(), 5);
    }

    #[test]
    fn rejects_bidirectional_stacks_and_zero_lanes() {
        let mut rng = DeterministicRng::seed_from_u64(5);
        let bidi = DeepRnn::random(
            &DeepRnnConfig::new(CellKind::Lstm, 3, 4).direction(Direction::Bidirectional),
            &mut rng,
        )
        .unwrap();
        assert!(matches!(
            StepPipeline::new(&bidi, 2),
            Err(RnnError::InvalidConfig { .. })
        ));
        let uni = networks().remove(0);
        assert!(matches!(
            StepPipeline::new(&uni, 0),
            Err(RnnError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn admit_validates_sequences_and_capacity() {
        let net = networks().remove(0);
        let mut pipeline = StepPipeline::new(&net, 1).unwrap();
        let mut eval = ExactEvaluator::new();
        eval.begin_batch(1);
        assert!(matches!(
            pipeline.admit(0, Vec::new(), &net, &mut eval),
            Err(RnnError::EmptySequence)
        ));
        assert!(matches!(
            pipeline.admit(0, vec![Vector::zeros(2)], &net, &mut eval),
            Err(RnnError::InputSizeMismatch { .. })
        ));
        pipeline
            .admit(0, seq(4, net.input_size(), 1), &net, &mut eval)
            .unwrap();
        assert_eq!(pipeline.free_lanes(), 0);
        assert!(pipeline
            .admit(1, seq(4, net.input_size(), 2), &net, &mut eval)
            .is_err());
    }

    #[test]
    fn cancel_frees_the_lane_and_keeps_survivors_bit_identical() {
        let net = networks().remove(0);
        let seqs: Vec<Vec<Vector>> = (0..3)
            .map(|i| seq(8, net.input_size(), 970 + i as u64))
            .collect();
        // Reference: dedicated runs for the two surviving sequences.
        let mut reference = Vec::new();
        for s in &seqs[1..] {
            reference.push(net.run(s, &mut ExactEvaluator::new()).unwrap());
        }
        let mut pipeline = StepPipeline::new(&net, 3).unwrap();
        let mut eval = ExactEvaluator::new();
        eval.begin_batch(3);
        for (i, s) in seqs.iter().enumerate() {
            pipeline
                .admit(i as u64, s.clone(), &net, &mut eval)
                .unwrap();
        }
        let mut finished = Vec::new();
        // Two steps in, abort token 0 mid-sequence.
        pipeline.step(&net, &mut eval, &mut finished).unwrap();
        pipeline.step(&net, &mut eval, &mut finished).unwrap();
        assert!(finished.is_empty());
        let cancelled = pipeline.cancel(0, &mut eval).expect("token 0 in flight");
        assert_eq!(cancelled.token, 0);
        assert_eq!(cancelled.outputs.len(), 2, "partial outputs so far");
        assert_eq!(pipeline.free_lanes(), 1, "the lane is free immediately");
        assert!(pipeline.cancel(0, &mut eval).is_none(), "already evicted");
        // Drain the survivors; their outputs must be unaffected.
        while pipeline.step(&net, &mut eval, &mut finished).unwrap() > 0 {}
        finished.sort_by_key(|f| f.token);
        assert_eq!(finished.len(), 2);
        for (f, reference) in finished.iter().zip(reference.iter()) {
            assert_eq!(&f.outputs, reference, "survivor token {}", f.token);
        }
    }

    #[test]
    fn idle_pipeline_steps_zero_lanes() {
        let net = networks().remove(0);
        let mut pipeline = StepPipeline::new(&net, 3).unwrap();
        assert!(pipeline.is_idle());
        assert_eq!(pipeline.lanes(), 3);
        assert_eq!(pipeline.active_lanes(), 0);
        let mut eval = ExactEvaluator::new();
        let mut finished = Vec::new();
        assert_eq!(pipeline.step(&net, &mut eval, &mut finished).unwrap(), 0);
        assert!(finished.is_empty());
    }
}
