//! A recurrent layer: one cell (unidirectional) or a forward/backward
//! pair of cells (bidirectional).

use crate::batch::{BatchScratch, BatchState};
use crate::config::{CellKind, Direction};
use crate::error::RnnError;
use crate::evaluator::NeuronEvaluator;
use crate::gate::{Gate, GateId, GateKind};
use crate::gru::{GruCell, GruState};
use crate::lstm::{LstmCell, LstmState};
use crate::scratch::CellScratch;
use crate::Result;
use nfm_tensor::kernels::matmul_into_tuned;
use nfm_tensor::rng::DeterministicRng;
use nfm_tensor::Vector;

/// Number of timesteps whose input projections `W_x·x_t` are hoisted
/// into one matrix-matrix product when the evaluator supports it: the
/// forward weight matrix of every gate is streamed once per block
/// instead of once per timestep.  The recurrent half `W_h·h_{t-1}` can
/// never be hoisted (it depends on the previous step's output).
const HOIST_BLOCK: usize = 8;

/// The largest gate count of any cell kind (LSTM), sizing the
/// stack-allocated hoisted-slice array in the batch step loop.
const MAX_GATES: usize = GateKind::LSTM.len();

/// Either kind of recurrent cell, so layers and networks can mix LSTM and
/// GRU uniformly.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// An LSTM cell.
    Lstm(LstmCell),
    /// A GRU cell.
    Gru(GruCell),
}

impl Cell {
    /// Creates a random cell of the given kind.
    pub fn random(
        kind: CellKind,
        input_size: usize,
        hidden_size: usize,
        peepholes: bool,
        rng: &mut DeterministicRng,
    ) -> Result<Self> {
        Ok(match kind {
            CellKind::Lstm => {
                Cell::Lstm(LstmCell::random(input_size, hidden_size, peepholes, rng)?)
            }
            CellKind::Gru => Cell::Gru(GruCell::random(input_size, hidden_size, rng)?),
        })
    }

    /// The cell kind.
    pub fn kind(&self) -> CellKind {
        match self {
            Cell::Lstm(_) => CellKind::Lstm,
            Cell::Gru(_) => CellKind::Gru,
        }
    }

    /// Neurons per gate.
    pub fn hidden_size(&self) -> usize {
        match self {
            Cell::Lstm(c) => c.hidden_size(),
            Cell::Gru(c) => c.hidden_size(),
        }
    }

    /// Expected input width.
    pub fn input_size(&self) -> usize {
        match self {
            Cell::Lstm(c) => c.input_size(),
            Cell::Gru(c) => c.input_size(),
        }
    }

    /// Gate kinds evaluated by this cell, in order.
    pub fn gate_kinds(&self) -> &'static [GateKind] {
        match self {
            Cell::Lstm(c) => c.gate_kinds(),
            Cell::Gru(c) => c.gate_kinds(),
        }
    }

    /// Borrows a gate by kind, if the cell has it.
    pub fn gate(&self, kind: GateKind) -> Option<&Gate> {
        match self {
            Cell::Lstm(c) => c.gate(kind),
            Cell::Gru(c) => c.gate(kind),
        }
    }

    /// Total weights in the cell.
    pub fn weight_count(&self) -> usize {
        match self {
            Cell::Lstm(c) => c.weight_count(),
            Cell::Gru(c) => c.weight_count(),
        }
    }

    /// Neuron evaluations per timestep.
    pub fn neuron_evaluations_per_step(&self) -> usize {
        match self {
            Cell::Lstm(c) => c.neuron_evaluations_per_step(),
            Cell::Gru(c) => c.neuron_evaluations_per_step(),
        }
    }

    /// Runs the cell over a full sequence and returns the hidden output
    /// at every timestep.  `reverse` processes the sequence backwards
    /// (used by the backward half of a bidirectional layer) while still
    /// returning outputs indexed by the original timestep order.
    ///
    /// The loop double-buffers two states and one [`CellScratch`], so a
    /// timestep's only allocation is the cloned per-timestep output.
    pub fn run_sequence(
        &self,
        layer: usize,
        direction: usize,
        inputs: &[Vector],
        reverse: bool,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<Vec<Vector>> {
        let n = inputs.len();
        let mut outputs: Vec<Option<Vector>> = vec![None; n];
        let order: Vec<usize> = if reverse {
            (0..n).rev().collect()
        } else {
            (0..n).collect()
        };
        let mut scratch = CellScratch::for_hidden(self.hidden_size());
        match self {
            Cell::Lstm(cell) => {
                let mut state = LstmState::zeros(cell.hidden_size());
                let mut next = LstmState::zeros(cell.hidden_size());
                for (step, &t) in order.iter().enumerate() {
                    cell.step_into(
                        layer,
                        direction,
                        step,
                        inputs[t].as_slice(),
                        &state,
                        &mut next,
                        &mut scratch,
                        evaluator,
                    )?;
                    outputs[t] = Some(next.h.clone());
                    std::mem::swap(&mut state, &mut next);
                }
            }
            Cell::Gru(cell) => {
                let mut state = GruState::zeros(cell.hidden_size());
                let mut next = GruState::zeros(cell.hidden_size());
                for (step, &t) in order.iter().enumerate() {
                    cell.step_into(
                        layer,
                        direction,
                        step,
                        inputs[t].as_slice(),
                        &state,
                        &mut next,
                        &mut scratch,
                        evaluator,
                    )?;
                    outputs[t] = Some(next.h.clone());
                    std::mem::swap(&mut state, &mut next);
                }
            }
        }
        Ok(outputs.into_iter().map(|o| o.expect("filled")).collect())
    }

    /// Runs one sequence per lane through the cell in lockstep, batching
    /// every gate evaluation across the active lanes, and returns each
    /// lane's per-timestep hidden outputs (indexed by the original
    /// timestep order, like [`Cell::run_sequence`]).
    ///
    /// `inputs` must be sorted by **descending sequence length** so the
    /// active lanes always form a prefix: at batch step `s`, exactly the
    /// lanes with `len > s` participate (forward processes element `s`,
    /// reverse processes element `len - 1 - s`), and a lane simply drops
    /// out of the prefix when its sequence ends.
    ///
    /// When the evaluator's
    /// [`supports_input_hoisting`](NeuronEvaluator::supports_input_hoisting)
    /// returns `true`, the input projections `W_x·x_t` of up to
    /// `HOIST_BLOCK` (8) timesteps are pre-computed with one lane-striped
    /// matrix product per gate and handed to the evaluator's hoisted
    /// path — bit-transparent, because the hoisted kernels keep the
    /// `fwd + rec` scalar order of the fused path.
    ///
    /// # Errors
    ///
    /// Returns an error if any input width does not match the cell or
    /// the lanes are not sorted by descending length.
    pub fn run_sequences_batch(
        &self,
        layer: usize,
        direction: usize,
        inputs: &[&[Vector]],
        reverse: bool,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<Vec<Vec<Vector>>> {
        let lanes = inputs.len();
        if lanes == 0 {
            return Ok(Vec::new());
        }
        let input_size = self.input_size();
        let hidden = self.hidden_size();
        let lens: Vec<usize> = inputs.iter().map(|s| s.len()).collect();
        if lens.windows(2).any(|w| w[0] < w[1]) {
            return Err(RnnError::InvalidConfig {
                what: "batch lanes must be sorted by descending sequence length".into(),
            });
        }
        for seq in inputs {
            for (t, x) in seq.iter().enumerate() {
                if x.len() != input_size {
                    return Err(RnnError::InputSizeMismatch {
                        expected: input_size,
                        found: x.len(),
                        timestep: t,
                    });
                }
            }
        }
        let max_len = lens[0];
        let mut outputs: Vec<Vec<Option<Vector>>> = lens.iter().map(|&n| vec![None; n]).collect();
        let mut state = BatchState::zeros(lanes, hidden);
        let mut next = BatchState::zeros(lanes, hidden);
        let mut scratch = BatchScratch::new();
        let hoist = evaluator.supports_input_hoisting();
        let kinds = self.gate_kinds();
        let gate_count = kinds.len();
        debug_assert!(gate_count <= MAX_GATES);
        // Block-local buffers, grown once and reused across blocks.
        let mut packed: Vec<f32> = Vec::new();
        let mut fwd_buf: Vec<f32> = Vec::new();

        let mut s = 0;
        while s < max_len {
            let block = (max_len - s).min(HOIST_BLOCK);
            // Per-step active lane counts and packed row offsets for the
            // block (active counts only shrink: lanes are length-sorted).
            let mut step_active = [0usize; HOIST_BLOCK];
            let mut row_offset = [0usize; HOIST_BLOCK];
            let mut total_rows = 0usize;
            for b in 0..block {
                let step = s + b;
                step_active[b] = lens.iter().take_while(|&&n| n > step).count();
                row_offset[b] = total_rows;
                total_rows += step_active[b];
            }
            // Gather the block's active inputs lane-striped, step-major.
            if packed.len() < total_rows * input_size {
                packed.resize(total_rows * input_size, 0.0);
            }
            for b in 0..block {
                let step = s + b;
                for l in 0..step_active[b] {
                    let t = if reverse { lens[l] - 1 - step } else { step };
                    let dst = (row_offset[b] + l) * input_size;
                    packed[dst..dst + input_size].copy_from_slice(inputs[l][t].as_slice());
                }
            }
            if hoist {
                // One matrix product per gate covers the whole block's
                // input projections.
                if fwd_buf.len() < gate_count * total_rows * hidden {
                    fwd_buf.resize(gate_count * total_rows * hidden, 0.0);
                }
                for (g, kind) in kinds.iter().enumerate() {
                    let gate = self.gate(*kind).expect("cell exposes its own gate kinds");
                    matmul_into_tuned(
                        gate.wx(),
                        &packed[..total_rows * input_size],
                        total_rows,
                        &mut fwd_buf[g * total_rows * hidden..(g + 1) * total_rows * hidden],
                    )?;
                }
            }
            for b in 0..block {
                let active = step_active[b];
                if active == 0 {
                    break;
                }
                let step = s + b;
                let xs = &packed[row_offset[b] * input_size..(row_offset[b] + active) * input_size];
                let mut fwd_slices: [&[f32]; MAX_GATES] = [&[]; MAX_GATES];
                let hoisted: Option<&[&[f32]]> = if hoist {
                    for (g, slot) in fwd_slices.iter_mut().enumerate().take(gate_count) {
                        let start = g * total_rows * hidden + row_offset[b] * hidden;
                        *slot = &fwd_buf[start..start + active * hidden];
                    }
                    Some(&fwd_slices[..gate_count])
                } else {
                    None
                };
                match self {
                    Cell::Lstm(cell) => cell.step_batch_into(
                        layer,
                        direction,
                        step,
                        active,
                        xs,
                        &state,
                        &mut next,
                        &mut scratch,
                        hoisted,
                        evaluator,
                    )?,
                    Cell::Gru(cell) => cell.step_batch_into(
                        layer,
                        direction,
                        step,
                        active,
                        xs,
                        &state,
                        &mut next,
                        &mut scratch,
                        hoisted,
                        evaluator,
                    )?,
                }
                for (l, lane_out) in outputs.iter_mut().enumerate().take(active) {
                    let t = if reverse { lens[l] - 1 - step } else { step };
                    lane_out[t] = Some(Vector::from(next.h_lane(l).to_vec()));
                }
                std::mem::swap(&mut state, &mut next);
            }
            s += block;
        }
        Ok(outputs
            .into_iter()
            .map(|lane| lane.into_iter().map(|o| o.expect("filled")).collect())
            .collect())
    }
}

/// One layer of a deep RNN.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    index: usize,
    forward: Cell,
    backward: Option<Cell>,
}

impl Layer {
    /// Creates a layer from its cells.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if the backward cell (when
    /// present) disagrees with the forward cell on dimensions or kind.
    pub fn new(index: usize, forward: Cell, backward: Option<Cell>) -> Result<Self> {
        if let Some(b) = &backward {
            if b.hidden_size() != forward.hidden_size()
                || b.input_size() != forward.input_size()
                || b.kind() != forward.kind()
            {
                return Err(RnnError::InvalidConfig {
                    what: "bidirectional halves must have identical shape and cell kind".into(),
                });
            }
        }
        Ok(Layer {
            index,
            forward,
            backward,
        })
    }

    /// Creates a randomly initialized layer.
    pub fn random(
        index: usize,
        kind: CellKind,
        direction: Direction,
        input_size: usize,
        hidden_size: usize,
        peepholes: bool,
        rng: &mut DeterministicRng,
    ) -> Result<Self> {
        let forward = Cell::random(kind, input_size, hidden_size, peepholes, rng)?;
        let backward = match direction {
            Direction::Unidirectional => None,
            Direction::Bidirectional => {
                Some(Cell::random(kind, input_size, hidden_size, peepholes, rng)?)
            }
        };
        Layer::new(index, forward, backward)
    }

    /// Position of the layer in the stack.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether the layer is bidirectional.
    pub fn is_bidirectional(&self) -> bool {
        self.backward.is_some()
    }

    /// The forward cell.
    pub fn forward_cell(&self) -> &Cell {
        &self.forward
    }

    /// The backward cell, if bidirectional.
    pub fn backward_cell(&self) -> Option<&Cell> {
        self.backward.as_ref()
    }

    /// Width of the input this layer expects.
    pub fn input_size(&self) -> usize {
        self.forward.input_size()
    }

    /// Width of the output this layer produces per timestep
    /// (hidden size, doubled for bidirectional layers).
    pub fn output_size(&self) -> usize {
        self.forward.hidden_size() * if self.is_bidirectional() { 2 } else { 1 }
    }

    /// Total weights in the layer.
    pub fn weight_count(&self) -> usize {
        self.forward.weight_count() + self.backward.as_ref().map_or(0, Cell::weight_count)
    }

    /// Neuron evaluations per timestep across both directions.
    pub fn neuron_evaluations_per_step(&self) -> usize {
        self.forward.neuron_evaluations_per_step()
            + self
                .backward
                .as_ref()
                .map_or(0, Cell::neuron_evaluations_per_step)
    }

    /// Iterates over `(GateId, &Gate)` pairs for every gate in the layer.
    pub fn gates(&self) -> Vec<(GateId, &Gate)> {
        let mut out = Vec::new();
        for kind in self.forward.gate_kinds() {
            if let Some(g) = self.forward.gate(*kind) {
                out.push((GateId::new(self.index, 0, *kind), g));
            }
        }
        if let Some(b) = &self.backward {
            for kind in b.gate_kinds() {
                if let Some(g) = b.gate(*kind) {
                    out.push((GateId::new(self.index, 1, *kind), g));
                }
            }
        }
        out
    }

    /// Processes a full sequence, producing one output vector per input.
    ///
    /// For bidirectional layers the forward and backward outputs at each
    /// timestep are concatenated (forward half first).
    ///
    /// # Errors
    ///
    /// Returns an error if any input width does not match the layer.
    pub fn process(
        &self,
        inputs: &[Vector],
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<Vec<Vector>> {
        let fwd = self
            .forward
            .run_sequence(self.index, 0, inputs, false, evaluator)?;
        match &self.backward {
            None => Ok(fwd),
            Some(bwd_cell) => {
                let bwd = bwd_cell.run_sequence(self.index, 1, inputs, true, evaluator)?;
                Ok(fwd
                    .iter()
                    .zip(bwd.iter())
                    .map(|(f, b)| f.concat(b))
                    .collect())
            }
        }
    }

    /// Processes one sequence per lane in lockstep (see
    /// [`Cell::run_sequences_batch`]), producing each lane's per-timestep
    /// outputs.  For bidirectional layers the forward and backward
    /// outputs are concatenated exactly as in [`Layer::process`].
    ///
    /// # Errors
    ///
    /// Returns an error if any input width does not match the layer or
    /// the lanes are not sorted by descending sequence length.
    pub fn process_batch(
        &self,
        inputs: &[&[Vector]],
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<Vec<Vec<Vector>>> {
        let fwd = self
            .forward
            .run_sequences_batch(self.index, 0, inputs, false, evaluator)?;
        match &self.backward {
            None => Ok(fwd),
            Some(bwd_cell) => {
                let bwd = bwd_cell.run_sequences_batch(self.index, 1, inputs, true, evaluator)?;
                Ok(fwd
                    .iter()
                    .zip(bwd.iter())
                    .map(|(f_lane, b_lane)| {
                        f_lane
                            .iter()
                            .zip(b_lane.iter())
                            .map(|(f, b)| f.concat(b))
                            .collect()
                    })
                    .collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::ExactEvaluator;

    fn inputs(n: usize, width: usize, seed: u64) -> Vec<Vector> {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vector::from_fn(width, |_| rng.uniform(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn cell_enum_exposes_common_interface() {
        let mut rng = DeterministicRng::seed_from_u64(1);
        let lstm = Cell::random(CellKind::Lstm, 4, 3, true, &mut rng).unwrap();
        let gru = Cell::random(CellKind::Gru, 4, 3, false, &mut rng).unwrap();
        assert_eq!(lstm.kind(), CellKind::Lstm);
        assert_eq!(gru.kind(), CellKind::Gru);
        assert_eq!(lstm.hidden_size(), 3);
        assert_eq!(gru.input_size(), 4);
        assert_eq!(lstm.gate_kinds().len(), 4);
        assert_eq!(gru.gate_kinds().len(), 3);
        assert!(lstm.gate(GateKind::Forget).is_some());
        assert!(gru.gate(GateKind::Forget).is_none());
        assert_eq!(lstm.neuron_evaluations_per_step(), 12);
        assert_eq!(gru.neuron_evaluations_per_step(), 9);
    }

    #[test]
    fn unidirectional_layer_output_width() {
        let mut rng = DeterministicRng::seed_from_u64(2);
        let layer = Layer::random(
            0,
            CellKind::Lstm,
            Direction::Unidirectional,
            4,
            6,
            true,
            &mut rng,
        )
        .unwrap();
        assert!(!layer.is_bidirectional());
        assert_eq!(layer.output_size(), 6);
        let out = layer
            .process(&inputs(5, 4, 3), &mut ExactEvaluator::new())
            .unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|v| v.len() == 6));
    }

    #[test]
    fn bidirectional_layer_concatenates() {
        let mut rng = DeterministicRng::seed_from_u64(4);
        let layer = Layer::random(
            1,
            CellKind::Gru,
            Direction::Bidirectional,
            3,
            5,
            false,
            &mut rng,
        )
        .unwrap();
        assert!(layer.is_bidirectional());
        assert_eq!(layer.output_size(), 10);
        assert_eq!(layer.gates().len(), 6);
        let out = layer
            .process(&inputs(4, 3, 5), &mut ExactEvaluator::new())
            .unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|v| v.len() == 10));
    }

    #[test]
    fn backward_pass_sees_reversed_sequence() {
        // With a single timestep, forward and backward passes coincide; with
        // more, the backward output at the *last* timestep must equal what a
        // forward pass over the reversed sequence would produce first.
        let mut rng = DeterministicRng::seed_from_u64(6);
        let cell = Cell::random(CellKind::Lstm, 2, 3, false, &mut rng).unwrap();
        let seq = inputs(3, 2, 7);
        let mut eval = ExactEvaluator::new();
        let bwd = cell.run_sequence(0, 1, &seq, true, &mut eval).unwrap();
        let mut rev = seq.clone();
        rev.reverse();
        let fwd_on_rev = cell.run_sequence(0, 1, &rev, false, &mut eval).unwrap();
        // bwd[t] corresponds to fwd_on_rev[n-1-t]
        for t in 0..seq.len() {
            let a = &bwd[t];
            let b = &fwd_on_rev[seq.len() - 1 - t];
            for i in 0..a.len() {
                assert!((a[i] - b[i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn layer_rejects_mismatched_halves() {
        let mut rng = DeterministicRng::seed_from_u64(8);
        let fwd = Cell::random(CellKind::Lstm, 4, 4, false, &mut rng).unwrap();
        let bad_bwd = Cell::random(CellKind::Lstm, 4, 5, false, &mut rng).unwrap();
        assert!(Layer::new(0, fwd.clone(), Some(bad_bwd)).is_err());
        let wrong_kind = Cell::random(CellKind::Gru, 4, 4, false, &mut rng).unwrap();
        assert!(Layer::new(0, fwd, Some(wrong_kind)).is_err());
    }

    #[test]
    fn gate_ids_are_unique_within_layer() {
        use std::collections::HashSet;
        let mut rng = DeterministicRng::seed_from_u64(9);
        let layer = Layer::random(
            2,
            CellKind::Lstm,
            Direction::Bidirectional,
            3,
            3,
            true,
            &mut rng,
        )
        .unwrap();
        let ids: HashSet<GateId> = layer.gates().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 8);
        assert!(ids.iter().all(|id| id.layer == 2));
    }
}
