//! The per-neuron evaluation hook where fuzzy memoization plugs in.

use crate::gate::{Gate, GateId};
use crate::Result;

/// Identifies one neuron evaluation: which gate, which neuron of that
/// gate, and at which timestep of the current sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NeuronRef {
    /// The gate being evaluated.
    pub gate_id: GateId,
    /// Row index of the neuron inside the gate.
    pub neuron: usize,
    /// Index of the current element in the input sequence.
    pub timestep: usize,
}

/// Strategy for producing a neuron's pre-activation dot product
/// `W_x[n]·x_t + W_h[n]·h_{t-1}`.
///
/// This is the exact boundary at which the paper's scheme operates: the
/// E-PUR dot-product unit (DPU) computes this value in the baseline,
/// while the fuzzy memoization unit (FMU) may instead return a recently
/// cached value and skip the DPU entirely.  Implementations decide, per
/// neuron and per timestep, whether to compute or reuse.
///
/// Bias, peephole and activation are *not* the evaluator's concern; the
/// cell applies them afterwards (they are computed by the multi-functional
/// unit in the accelerator and are never skipped).
pub trait NeuronEvaluator {
    /// Produces the pre-activation dot product for `neuron`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input widths are inconsistent with the
    /// gate (exact evaluation performs dimension-checked dot products).
    fn evaluate(
        &mut self,
        neuron: NeuronRef,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
    ) -> Result<f32>;

    /// Called by [`DeepRnn::run`](crate::DeepRnn::run) before each new
    /// input sequence so implementations can reset per-sequence state
    /// (e.g. memoization tables are cold at the start of a sequence).
    fn begin_sequence(&mut self) {}
}

/// The baseline evaluator: always computes the exact dot products.
///
/// Corresponds to the unmodified E-PUR accelerator.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactEvaluator {
    evaluations: u64,
}

impl ExactEvaluator {
    /// Creates a new exact evaluator.
    pub fn new() -> Self {
        ExactEvaluator { evaluations: 0 }
    }

    /// Number of neuron evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

impl NeuronEvaluator for ExactEvaluator {
    fn evaluate(
        &mut self,
        neuron: NeuronRef,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
    ) -> Result<f32> {
        self.evaluations += 1;
        gate.neuron_dot(neuron.neuron, x, h_prev)
    }
}

/// An instrumented evaluator that wraps another one and records every
/// produced value; used by the evaluation harness to study output
/// similarity between consecutive timesteps (Figure 5) and by tests.
#[derive(Debug)]
pub struct CountingEvaluator<E> {
    inner: E,
    calls: u64,
    sequences: u64,
}

impl<E: NeuronEvaluator> CountingEvaluator<E> {
    /// Wraps `inner`.
    pub fn new(inner: E) -> Self {
        CountingEvaluator {
            inner,
            calls: 0,
            sequences: 0,
        }
    }

    /// Total `evaluate` calls observed.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Total `begin_sequence` calls observed.
    pub fn sequences(&self) -> u64 {
        self.sequences
    }

    /// Returns the wrapped evaluator.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Borrows the wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: NeuronEvaluator> NeuronEvaluator for CountingEvaluator<E> {
    fn evaluate(
        &mut self,
        neuron: NeuronRef,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
    ) -> Result<f32> {
        self.calls += 1;
        self.inner.evaluate(neuron, gate, x, h_prev)
    }

    fn begin_sequence(&mut self) {
        self.sequences += 1;
        self.inner.begin_sequence();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use nfm_tensor::activation::Activation;
    use nfm_tensor::{Matrix, Vector};

    fn gate() -> Gate {
        Gate::new(
            Matrix::from_rows(vec![vec![1.0, 2.0]]).unwrap(),
            Matrix::from_rows(vec![vec![3.0]]).unwrap(),
            Vector::zeros(1),
            None,
            Activation::Identity,
        )
        .unwrap()
    }

    fn nref() -> NeuronRef {
        NeuronRef {
            gate_id: GateId::new(0, 0, GateKind::Input),
            neuron: 0,
            timestep: 0,
        }
    }

    #[test]
    fn exact_evaluator_computes_dot() {
        let g = gate();
        let mut e = ExactEvaluator::new();
        let v = e.evaluate(nref(), &g, &[1.0, 1.0], &[2.0]).unwrap();
        assert_eq!(v, 1.0 + 2.0 + 6.0);
        assert_eq!(e.evaluations(), 1);
    }

    #[test]
    fn exact_evaluator_propagates_shape_errors() {
        let g = gate();
        let mut e = ExactEvaluator::new();
        assert!(e.evaluate(nref(), &g, &[1.0], &[2.0]).is_err());
    }

    #[test]
    fn counting_evaluator_tracks_calls_and_sequences() {
        let g = gate();
        let mut e = CountingEvaluator::new(ExactEvaluator::new());
        e.begin_sequence();
        let _ = e.evaluate(nref(), &g, &[1.0, 1.0], &[2.0]).unwrap();
        let _ = e.evaluate(nref(), &g, &[1.0, 1.0], &[2.0]).unwrap();
        assert_eq!(e.calls(), 2);
        assert_eq!(e.sequences(), 1);
        assert_eq!(e.inner().evaluations(), 2);
        assert_eq!(e.into_inner().evaluations(), 2);
    }

    #[test]
    fn default_begin_sequence_is_noop() {
        let mut e = ExactEvaluator::new();
        e.begin_sequence();
        assert_eq!(e.evaluations(), 0);
    }
}
