//! The neuron evaluation hook where fuzzy memoization plugs in.
//!
//! Evaluators expose two granularities:
//!
//! * [`NeuronEvaluator::evaluate`] — one neuron at a time, the boundary
//!   the paper describes (the FMU intercepting one DPU operation);
//! * [`NeuronEvaluator::evaluate_gate`] — one whole gate per call, the
//!   granularity the software hot path actually runs at.  The default
//!   implementation falls back to the per-neuron method, so custom
//!   evaluators keep working unchanged, while the built-in evaluators
//!   override it with fused, allocation-free kernels.
//!
//! The two paths are contractually **bit-identical**: every built-in
//! override performs the same floating-point operations in the same
//! order as the per-neuron fallback (see the `batched_equivalence`
//! integration tests).

use crate::gate::{Gate, GateId};
use crate::Result;
use nfm_tensor::kernels::{dual_matmul_into_tuned, dual_matvec_into, matmul_add_into_tuned};

/// Identifies one neuron evaluation: which gate, which neuron of that
/// gate, and at which timestep of the current sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NeuronRef {
    /// The gate being evaluated.
    pub gate_id: GateId,
    /// Row index of the neuron inside the gate.
    pub neuron: usize,
    /// Index of the current element in the input sequence.
    pub timestep: usize,
}

/// Strategy for producing a neuron's pre-activation dot product
/// `W_x[n]·x_t + W_h[n]·h_{t-1}`.
///
/// This is the exact boundary at which the paper's scheme operates: the
/// E-PUR dot-product unit (DPU) computes this value in the baseline,
/// while the fuzzy memoization unit (FMU) may instead return a recently
/// cached value and skip the DPU entirely.  Implementations decide, per
/// neuron and per timestep, whether to compute or reuse.
///
/// Bias, peephole and activation are *not* the evaluator's concern; the
/// cell applies them afterwards (they are computed by the multi-functional
/// unit in the accelerator and are never skipped).
pub trait NeuronEvaluator {
    /// Produces the pre-activation dot product for `neuron`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input widths are inconsistent with the
    /// gate (exact evaluation performs dimension-checked dot products).
    fn evaluate(
        &mut self,
        neuron: NeuronRef,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
    ) -> Result<f32>;

    /// Produces the pre-activation dot products for *every* neuron of
    /// `gate` at once, writing them into the caller-owned `out` buffer
    /// (`out.len() == gate.neurons()`, guaranteed by [`Gate::evaluate`]).
    ///
    /// The default implementation routes each neuron through
    /// [`evaluate`](NeuronEvaluator::evaluate), preserving the trait
    /// contract for custom evaluators; the built-in evaluators override
    /// it with fused kernels that skip per-neuron virtual dispatch,
    /// dimension checks and hashing.  Overrides must remain bit-identical
    /// to the fallback.
    ///
    /// # Errors
    ///
    /// Returns an error if the input widths are inconsistent with the
    /// gate.
    fn evaluate_gate(
        &mut self,
        gate_id: GateId,
        timestep: usize,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        debug_assert_eq!(out.len(), gate.neurons());
        for (n, slot) in out.iter_mut().enumerate() {
            *slot = self.evaluate(
                NeuronRef {
                    gate_id,
                    neuron: n,
                    timestep,
                },
                gate,
                x,
                h_prev,
            )?;
        }
        Ok(())
    }

    /// Produces the pre-activation dot products for every neuron of
    /// `gate` across `lanes` independent sequences at once.
    ///
    /// `xs`, `h_prevs` and `out` are **lane-striped**: lane `l`'s vector
    /// occupies `[l * width .. (l + 1) * width]` of the flat slice
    /// (widths: `gate.input_size()`, `gate.hidden_size()` and
    /// `gate.neurons()` respectively).  All lanes share the same
    /// `timestep` (the batch driver advances lanes in lockstep).
    ///
    /// The default implementation routes each lane through
    /// [`evaluate_gate`](NeuronEvaluator::evaluate_gate), so custom
    /// evaluators keep working unchanged; note that a *stateful* custom
    /// evaluator (one that memoizes across timesteps) sees every lane
    /// through the same shared state under this default and should
    /// override the batch methods for per-lane isolation when driven
    /// with `lanes > 1`.  Built-in evaluators override this with
    /// lane-striped kernels (one weight stream serving all lanes) and
    /// per-lane memoization tables; overrides must keep every lane
    /// bit-identical to the single-sequence path.
    ///
    /// # Errors
    ///
    /// Returns an error if the input widths are inconsistent with the
    /// gate.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_gate_batch(
        &mut self,
        gate_id: GateId,
        timestep: usize,
        lanes: usize,
        gate: &Gate,
        xs: &[f32],
        h_prevs: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        let (isz, hsz, nsz) = (gate.input_size(), gate.hidden_size(), gate.neurons());
        debug_assert_eq!(out.len(), lanes * nsz);
        for l in 0..lanes {
            self.evaluate_gate(
                gate_id,
                timestep,
                gate,
                &xs[l * isz..(l + 1) * isz],
                &h_prevs[l * hsz..(l + 1) * hsz],
                &mut out[l * nsz..(l + 1) * nsz],
            )?;
        }
        Ok(())
    }

    /// Whether the batch driver should pre-compute the input-projection
    /// half `W_x·x_t` for a block of timesteps and hand it to
    /// [`evaluate_gate_batch_hoisted`](NeuronEvaluator::evaluate_gate_batch_hoisted).
    ///
    /// Only evaluators that compute *every* neuron in full precision can
    /// benefit (the exact baseline); memoizing evaluators skip most dot
    /// products, so pre-computing their forward halves would be wasted
    /// work.  Defaults to `false`.
    fn supports_input_hoisting(&self) -> bool {
        false
    }

    /// Like [`evaluate_gate_batch`](NeuronEvaluator::evaluate_gate_batch),
    /// but with the forward half pre-computed: `fwd` is lane-striped
    /// (`lanes * gate.neurons()`) and holds `W_x[n]·xs[l]` produced with
    /// the shared reduction order, so an override only adds the
    /// recurrent half (`out = fwd + W_h·h`, the exact scalar order of
    /// the fused kernel).
    ///
    /// The default ignores `fwd` and recomputes both halves through
    /// [`evaluate_gate_batch`](NeuronEvaluator::evaluate_gate_batch) —
    /// bit-identical, just without the hoisting win — so the method is
    /// only dispatched to evaluators whose
    /// [`supports_input_hoisting`](NeuronEvaluator::supports_input_hoisting)
    /// returns `true`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input widths are inconsistent with the
    /// gate.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_gate_batch_hoisted(
        &mut self,
        gate_id: GateId,
        timestep: usize,
        lanes: usize,
        gate: &Gate,
        fwd: &[f32],
        xs: &[f32],
        h_prevs: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        let _ = fwd;
        self.evaluate_gate_batch(gate_id, timestep, lanes, gate, xs, h_prevs, out)
    }

    /// Called by [`DeepRnn::run`](crate::DeepRnn::run) before each new
    /// input sequence so implementations can reset per-sequence state
    /// (e.g. memoization tables are cold at the start of a sequence).
    fn begin_sequence(&mut self) {}

    /// Called by [`DeepRnn::run_batch`](crate::DeepRnn::run_batch) once
    /// before a batched run so implementations can size per-lane state
    /// (e.g. one memoization table per lane).  The default is a no-op.
    fn begin_batch(&mut self, lanes: usize) {
        let _ = lanes;
    }

    /// Called when lane `lane` of a batched run starts a fresh input
    /// sequence, so per-lane state can be reset.  The default falls back
    /// to [`begin_sequence`](NeuronEvaluator::begin_sequence) — exactly
    /// the per-sequence contract when `lanes == 1`, and the best
    /// available approximation for stateful custom evaluators that did
    /// not override the batch methods.
    fn begin_lane_sequence(&mut self, lane: usize) {
        let _ = lane;
        self.begin_sequence();
    }

    /// Exchanges all per-lane state between lanes `a` and `b` (memo
    /// tables, per-lane statistics, …).
    ///
    /// The unified lane scheduler
    /// ([`LaneScheduler`](crate::LaneScheduler)) calls this when it
    /// re-sorts or compacts its lanes: lanes are kept a contiguous
    /// prefix ordered by descending remaining length, and a moved
    /// lane's memoization state must move with it.
    /// Evaluators that keep per-lane state and implement the batch
    /// methods must override this; the default is a no-op, which is
    /// correct for stateless evaluators and for stateful custom
    /// evaluators running through the default (shared-state) lane loop.
    fn swap_lane_state(&mut self, a: usize, b: usize) {
        let _ = (a, b);
    }
}

/// The baseline evaluator: always computes the exact dot products.
///
/// Corresponds to the unmodified E-PUR accelerator.  Its batched path is
/// one fused dual matrix-vector product per gate.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactEvaluator {
    evaluations: u64,
}

impl ExactEvaluator {
    /// Creates a new exact evaluator.
    pub fn new() -> Self {
        ExactEvaluator { evaluations: 0 }
    }

    /// Number of neuron evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

impl NeuronEvaluator for ExactEvaluator {
    fn evaluate(
        &mut self,
        neuron: NeuronRef,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
    ) -> Result<f32> {
        self.evaluations += 1;
        gate.neuron_dot(neuron.neuron, x, h_prev)
    }

    fn evaluate_gate(
        &mut self,
        _gate_id: GateId,
        _timestep: usize,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        dual_matvec_into(gate.wx(), gate.wh(), x, h_prev, out)?;
        self.evaluations += out.len() as u64;
        Ok(())
    }

    fn evaluate_gate_batch(
        &mut self,
        _gate_id: GateId,
        _timestep: usize,
        lanes: usize,
        gate: &Gate,
        xs: &[f32],
        h_prevs: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        dual_matmul_into_tuned(gate.wx(), gate.wh(), xs, h_prevs, lanes, out)?;
        self.evaluations += out.len() as u64;
        Ok(())
    }

    fn supports_input_hoisting(&self) -> bool {
        true
    }

    fn evaluate_gate_batch_hoisted(
        &mut self,
        _gate_id: GateId,
        _timestep: usize,
        lanes: usize,
        gate: &Gate,
        fwd: &[f32],
        _xs: &[f32],
        h_prevs: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        matmul_add_into_tuned(gate.wh(), h_prevs, lanes, fwd, out)?;
        self.evaluations += out.len() as u64;
        Ok(())
    }
}

/// An instrumented evaluator that wraps another one and records every
/// produced value; used by the evaluation harness to study output
/// similarity between consecutive timesteps (Figure 5) and by tests.
#[derive(Debug)]
pub struct CountingEvaluator<E> {
    inner: E,
    calls: u64,
    sequences: u64,
}

impl<E: NeuronEvaluator> CountingEvaluator<E> {
    /// Wraps `inner`.
    pub fn new(inner: E) -> Self {
        CountingEvaluator {
            inner,
            calls: 0,
            sequences: 0,
        }
    }

    /// Total neuron evaluations observed (batched gate calls count one
    /// per neuron they cover).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Total `begin_sequence` calls observed.
    pub fn sequences(&self) -> u64 {
        self.sequences
    }

    /// Returns the wrapped evaluator.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Borrows the wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: NeuronEvaluator> NeuronEvaluator for CountingEvaluator<E> {
    fn evaluate(
        &mut self,
        neuron: NeuronRef,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
    ) -> Result<f32> {
        self.calls += 1;
        self.inner.evaluate(neuron, gate, x, h_prev)
    }

    fn evaluate_gate(
        &mut self,
        gate_id: GateId,
        timestep: usize,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        self.calls += out.len() as u64;
        self.inner
            .evaluate_gate(gate_id, timestep, gate, x, h_prev, out)
    }

    fn evaluate_gate_batch(
        &mut self,
        gate_id: GateId,
        timestep: usize,
        lanes: usize,
        gate: &Gate,
        xs: &[f32],
        h_prevs: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        self.calls += out.len() as u64;
        self.inner
            .evaluate_gate_batch(gate_id, timestep, lanes, gate, xs, h_prevs, out)
    }

    fn supports_input_hoisting(&self) -> bool {
        self.inner.supports_input_hoisting()
    }

    fn evaluate_gate_batch_hoisted(
        &mut self,
        gate_id: GateId,
        timestep: usize,
        lanes: usize,
        gate: &Gate,
        fwd: &[f32],
        xs: &[f32],
        h_prevs: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        self.calls += out.len() as u64;
        self.inner
            .evaluate_gate_batch_hoisted(gate_id, timestep, lanes, gate, fwd, xs, h_prevs, out)
    }

    fn begin_sequence(&mut self) {
        self.sequences += 1;
        self.inner.begin_sequence();
    }

    fn begin_batch(&mut self, lanes: usize) {
        self.inner.begin_batch(lanes);
    }

    fn begin_lane_sequence(&mut self, lane: usize) {
        self.sequences += 1;
        self.inner.begin_lane_sequence(lane);
    }

    fn swap_lane_state(&mut self, a: usize, b: usize) {
        self.inner.swap_lane_state(a, b);
    }
}

/// Forces the wrapped evaluator onto the per-neuron fallback path: its
/// `evaluate_gate` loops over [`NeuronEvaluator::evaluate`] exactly like
/// the trait's default implementation, ignoring any batched override the
/// inner evaluator provides.
///
/// Used by the equivalence tests (batched output must be bit-identical
/// to this path) and by the benchmarks to measure the naive path's cost.
#[derive(Debug, Clone, Default)]
pub struct PerNeuronEvaluator<E> {
    inner: E,
}

impl<E: NeuronEvaluator> PerNeuronEvaluator<E> {
    /// Wraps `inner`.
    pub fn new(inner: E) -> Self {
        PerNeuronEvaluator { inner }
    }

    /// Returns the wrapped evaluator.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Borrows the wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: NeuronEvaluator> NeuronEvaluator for PerNeuronEvaluator<E> {
    fn evaluate(
        &mut self,
        neuron: NeuronRef,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
    ) -> Result<f32> {
        self.inner.evaluate(neuron, gate, x, h_prev)
    }

    // No evaluate_gate / evaluate_gate_batch overrides: the trait
    // defaults ARE the per-neuron and per-lane loops this wrapper exists
    // to pin down (and `supports_input_hoisting` stays `false`, so the
    // batch driver never hands this wrapper a hoisted projection).

    fn begin_sequence(&mut self) {
        self.inner.begin_sequence();
    }

    fn begin_batch(&mut self, lanes: usize) {
        self.inner.begin_batch(lanes);
    }

    fn begin_lane_sequence(&mut self, lane: usize) {
        self.inner.begin_lane_sequence(lane);
    }

    fn swap_lane_state(&mut self, a: usize, b: usize) {
        self.inner.swap_lane_state(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use nfm_tensor::activation::Activation;
    use nfm_tensor::{Matrix, Vector};

    fn gate() -> Gate {
        Gate::new(
            Matrix::from_rows(vec![vec![1.0, 2.0]]).unwrap(),
            Matrix::from_rows(vec![vec![3.0]]).unwrap(),
            Vector::zeros(1),
            None,
            Activation::Identity,
        )
        .unwrap()
    }

    fn nref() -> NeuronRef {
        NeuronRef {
            gate_id: GateId::new(0, 0, GateKind::Input),
            neuron: 0,
            timestep: 0,
        }
    }

    #[test]
    fn exact_evaluator_computes_dot() {
        let g = gate();
        let mut e = ExactEvaluator::new();
        let v = e.evaluate(nref(), &g, &[1.0, 1.0], &[2.0]).unwrap();
        assert_eq!(v, 1.0 + 2.0 + 6.0);
        assert_eq!(e.evaluations(), 1);
    }

    #[test]
    fn exact_evaluator_propagates_shape_errors() {
        let g = gate();
        let mut e = ExactEvaluator::new();
        assert!(e.evaluate(nref(), &g, &[1.0], &[2.0]).is_err());
        let mut out = [0.0f32; 1];
        assert!(e
            .evaluate_gate(nref().gate_id, 0, &g, &[1.0], &[2.0], &mut out)
            .is_err());
    }

    #[test]
    fn exact_batched_matches_per_neuron_bitwise() {
        let g = gate();
        let mut batched = ExactEvaluator::new();
        let mut out = [0.0f32; 1];
        batched
            .evaluate_gate(nref().gate_id, 0, &g, &[1.0, 1.0], &[2.0], &mut out)
            .unwrap();
        let mut naive = PerNeuronEvaluator::new(ExactEvaluator::new());
        let mut out2 = [0.0f32; 1];
        naive
            .evaluate_gate(nref().gate_id, 0, &g, &[1.0, 1.0], &[2.0], &mut out2)
            .unwrap();
        assert_eq!(out[0].to_bits(), out2[0].to_bits());
        assert_eq!(batched.evaluations(), 1);
        assert_eq!(naive.inner().evaluations(), 1);
    }

    #[test]
    fn counting_evaluator_tracks_calls_and_sequences() {
        let g = gate();
        let mut e = CountingEvaluator::new(ExactEvaluator::new());
        e.begin_sequence();
        let _ = e.evaluate(nref(), &g, &[1.0, 1.0], &[2.0]).unwrap();
        let _ = e.evaluate(nref(), &g, &[1.0, 1.0], &[2.0]).unwrap();
        assert_eq!(e.calls(), 2);
        assert_eq!(e.sequences(), 1);
        assert_eq!(e.inner().evaluations(), 2);
        assert_eq!(e.into_inner().evaluations(), 2);
    }

    #[test]
    fn counting_evaluator_counts_batched_neurons() {
        let g = gate();
        let mut e = CountingEvaluator::new(ExactEvaluator::new());
        let mut out = [0.0f32; 1];
        e.evaluate_gate(nref().gate_id, 0, &g, &[1.0, 1.0], &[2.0], &mut out)
            .unwrap();
        assert_eq!(e.calls(), 1);
        assert_eq!(e.inner().evaluations(), 1);
    }

    #[test]
    fn default_begin_sequence_is_noop() {
        let mut e = ExactEvaluator::new();
        e.begin_sequence();
        assert_eq!(e.evaluations(), 0);
    }
}
