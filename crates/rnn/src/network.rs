//! Deep (stacked) RNNs with an optional dense head.

use crate::config::DeepRnnConfig;
use crate::dense::Dense;
use crate::error::RnnError;
use crate::evaluator::NeuronEvaluator;
use crate::gate::{Gate, GateId};
use crate::layer::Layer;
use crate::Result;
use nfm_tensor::activation::Activation;
use nfm_tensor::rng::DeterministicRng;
use nfm_tensor::Vector;

/// A deep RNN: a stack of recurrent [`Layer`]s followed by an optional
/// dense head, mirroring the workload networks of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepRnn {
    layers: Vec<Layer>,
    head: Option<Dense>,
    input_size: usize,
}

impl DeepRnn {
    /// Builds a network from explicit layers and an optional head.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if the stack is empty, if
    /// consecutive layers have incompatible widths, or if the head's
    /// input width does not match the last layer's output width.
    pub fn new(layers: Vec<Layer>, head: Option<Dense>) -> Result<Self> {
        if layers.is_empty() {
            return Err(RnnError::InvalidConfig {
                what: "a deep RNN needs at least one layer".into(),
            });
        }
        for pair in layers.windows(2) {
            if pair[1].input_size() != pair[0].output_size() {
                return Err(RnnError::InvalidConfig {
                    what: format!(
                        "layer {} expects input width {} but layer {} produces {}",
                        pair[1].index(),
                        pair[1].input_size(),
                        pair[0].index(),
                        pair[0].output_size()
                    ),
                });
            }
        }
        if let Some(h) = &head {
            let last = layers.last().expect("non-empty");
            if h.input_size() != last.output_size() {
                return Err(RnnError::InvalidConfig {
                    what: format!(
                        "head expects input width {} but the last layer produces {}",
                        h.input_size(),
                        last.output_size()
                    ),
                });
            }
        }
        let input_size = layers[0].input_size();
        Ok(DeepRnn {
            layers,
            head,
            input_size,
        })
    }

    /// Builds a randomly initialized network from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if the configuration is invalid.
    pub fn random(config: &DeepRnnConfig, rng: &mut DeterministicRng) -> Result<Self> {
        config.validate()?;
        let mut layers = Vec::with_capacity(config.layer_count());
        let mut layer_input = config.input_size();
        for i in 0..config.layer_count() {
            let layer = Layer::random(
                i,
                config.cell(),
                config.direction_kind(),
                layer_input,
                config.hidden_size(),
                config.has_peepholes(),
                rng,
            )?;
            layer_input = layer.output_size();
            layers.push(layer);
        }
        let head = match config.head_size() {
            Some(out) => Some(Dense::random(layer_input, out, Activation::Identity, rng)?),
            None => None,
        };
        DeepRnn::new(layers, head)
    }

    /// Width of the input vectors the network expects.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Width of the vectors produced per timestep (head output if a head
    /// is present, otherwise the last layer's output).
    pub fn output_size(&self) -> usize {
        match &self.head {
            Some(h) => h.output_size(),
            None => self.layers.last().expect("non-empty").output_size(),
        }
    }

    /// The recurrent layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The dense head, if any.
    pub fn head(&self) -> Option<&Dense> {
        self.head.as_ref()
    }

    /// Iterates over every `(GateId, &Gate)` in the recurrent stack.
    pub fn gates(&self) -> Vec<(GateId, &Gate)> {
        self.layers.iter().flat_map(|l| l.gates()).collect()
    }

    /// Looks up a gate by id.
    pub fn gate(&self, id: GateId) -> Option<&Gate> {
        self.layers.get(id.layer).and_then(|layer| {
            let cell = if id.direction == 0 {
                Some(layer.forward_cell())
            } else {
                layer.backward_cell()
            };
            cell.and_then(|c| c.gate(id.kind))
        })
    }

    /// Total recurrent weights (excluding the head).
    pub fn weight_count(&self) -> usize {
        self.layers.iter().map(Layer::weight_count).sum()
    }

    /// Neuron evaluations per timestep across the whole stack — the
    /// denominator of the paper's computation-reuse percentages.
    pub fn neuron_evaluations_per_step(&self) -> usize {
        self.layers
            .iter()
            .map(Layer::neuron_evaluations_per_step)
            .sum()
    }

    /// Runs the network over an input sequence, returning one output per
    /// timestep (after the dense head when present).
    ///
    /// The evaluator's [`begin_sequence`](NeuronEvaluator::begin_sequence)
    /// hook is invoked once before processing starts.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::EmptySequence`] for an empty input, or an
    /// error if any element has the wrong width.
    pub fn run(
        &self,
        sequence: &[Vector],
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<Vec<Vector>> {
        if sequence.is_empty() {
            return Err(RnnError::EmptySequence);
        }
        for (t, x) in sequence.iter().enumerate() {
            if x.len() != self.input_size {
                return Err(RnnError::InputSizeMismatch {
                    expected: self.input_size,
                    found: x.len(),
                    timestep: t,
                });
            }
        }
        evaluator.begin_sequence();
        let mut current: Vec<Vector> = sequence.to_vec();
        for layer in &self.layers {
            current = layer.process(&current, evaluator)?;
        }
        match &self.head {
            None => Ok(current),
            Some(head) => current.iter().map(|v| head.apply(v)).collect(),
        }
    }

    /// Runs up to a batch of independent input sequences through the
    /// network in lockstep — **lanes** — batching every gate evaluation
    /// across the sequences so one weight stream serves all of them.
    ///
    /// Ragged lengths are supported: internally the lanes are packed
    /// longest-first (the returned outputs are in the caller's order)
    /// and a lane drops out of the active prefix when its sequence ends.
    /// Lane `l`'s outputs, reuse statistics and memoization behavior are
    /// bit-identical to a dedicated [`DeepRnn::run`] over sequence `l`:
    /// the evaluator's [`begin_batch`](NeuronEvaluator::begin_batch) hook
    /// is invoked once, then
    /// [`begin_lane_sequence`](NeuronEvaluator::begin_lane_sequence) per
    /// lane, so per-lane memoization state starts cold exactly like the
    /// per-sequence path.  (For a *stateful custom* evaluator that did
    /// not override the batch methods, the trait's default lane loop
    /// shares its single state across lanes — the per-lane guarantee
    /// then only holds for one lane at a time; see
    /// [`NeuronEvaluator::evaluate_gate_batch`].)
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::EmptySequence`] if any sequence is empty, or
    /// an error if any element has the wrong width.
    pub fn run_batch(
        &self,
        sequences: &[&[Vector]],
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<Vec<Vec<Vector>>> {
        let lanes = sequences.len();
        if lanes == 0 {
            return Ok(Vec::new());
        }
        for seq in sequences {
            if seq.is_empty() {
                return Err(RnnError::EmptySequence);
            }
            for (t, x) in seq.iter().enumerate() {
                if x.len() != self.input_size {
                    return Err(RnnError::InputSizeMismatch {
                        expected: self.input_size,
                        found: x.len(),
                        timestep: t,
                    });
                }
            }
        }
        // Pack lanes longest-first (stable among equal lengths) so the
        // active lanes always form a prefix as sequences drain.
        let mut order: Vec<usize> = (0..lanes).collect();
        order.sort_by(|&a, &b| sequences[b].len().cmp(&sequences[a].len()));
        evaluator.begin_batch(lanes);
        for l in 0..lanes {
            evaluator.begin_lane_sequence(l);
        }
        // Layer 0 reads the caller's sequences directly (no clone); each
        // layer's owned outputs feed the next layer by reference.
        let current: Vec<Vec<Vector>> = {
            let borrowed: Vec<&[Vector]> = order.iter().map(|&i| sequences[i]).collect();
            let mut layers = self.layers.iter();
            let first = layers.next().expect("non-empty");
            let mut out = first.process_batch(&borrowed, evaluator)?;
            for layer in layers {
                let refs: Vec<&[Vector]> = out.iter().map(|lane| lane.as_slice()).collect();
                out = layer.process_batch(&refs, evaluator)?;
            }
            out
        };
        let current = match &self.head {
            None => current,
            Some(head) => current
                .iter()
                .map(|lane| {
                    lane.iter()
                        .map(|v| head.apply(v))
                        .collect::<Result<Vec<_>>>()
                })
                .collect::<Result<Vec<_>>>()?,
        };
        // Un-permute back to the caller's sequence order.
        let mut result: Vec<Option<Vec<Vector>>> = (0..lanes).map(|_| None).collect();
        for (&slot, lane_out) in order.iter().zip(current) {
            result[slot] = Some(lane_out);
        }
        Ok(result.into_iter().map(|o| o.expect("filled")).collect())
    }

    /// Runs the network and also returns the outputs of the final
    /// recurrent layer (before the head).  The evaluation harness uses
    /// the recurrent outputs for similarity analyses and the head outputs
    /// for task-level accuracy proxies.
    ///
    /// # Errors
    ///
    /// Same as [`DeepRnn::run`].
    pub fn run_with_hidden(
        &self,
        sequence: &[Vector],
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<(Vec<Vector>, Vec<Vector>)> {
        if sequence.is_empty() {
            return Err(RnnError::EmptySequence);
        }
        for (t, x) in sequence.iter().enumerate() {
            if x.len() != self.input_size {
                return Err(RnnError::InputSizeMismatch {
                    expected: self.input_size,
                    found: x.len(),
                    timestep: t,
                });
            }
        }
        evaluator.begin_sequence();
        let mut current: Vec<Vector> = sequence.to_vec();
        for layer in &self.layers {
            current = layer.process(&current, evaluator)?;
        }
        let hidden = current.clone();
        let outputs = match &self.head {
            None => current,
            Some(head) => current
                .iter()
                .map(|v| head.apply(v))
                .collect::<Result<Vec<_>>>()?,
        };
        Ok((outputs, hidden))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CellKind, Direction};
    use crate::evaluator::{CountingEvaluator, ExactEvaluator};

    fn seq(n: usize, width: usize, seed: u64) -> Vec<Vector> {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vector::from_fn(width, |_| rng.uniform(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn random_network_runs_and_has_expected_shapes() {
        let cfg = DeepRnnConfig::new(CellKind::Lstm, 6, 8)
            .layers(2)
            .output_size(3);
        let mut rng = DeterministicRng::seed_from_u64(1);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        assert_eq!(net.input_size(), 6);
        assert_eq!(net.output_size(), 3);
        assert_eq!(net.layers().len(), 2);
        assert!(net.head().is_some());
        let out = net.run(&seq(5, 6, 2), &mut ExactEvaluator::new()).unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|v| v.len() == 3));
    }

    #[test]
    fn bidirectional_network_widths_compose() {
        let cfg = DeepRnnConfig::new(CellKind::Gru, 4, 5)
            .layers(3)
            .direction(Direction::Bidirectional);
        let mut rng = DeterministicRng::seed_from_u64(3);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        assert_eq!(net.output_size(), 10);
        assert_eq!(net.gates().len(), 3 * 2 * 3);
        let out = net.run(&seq(4, 4, 4), &mut ExactEvaluator::new()).unwrap();
        assert!(out.iter().all(|v| v.len() == 10));
    }

    #[test]
    fn run_counts_expected_neuron_evaluations() {
        let cfg = DeepRnnConfig::new(CellKind::Lstm, 4, 6).layers(2);
        let mut rng = DeterministicRng::seed_from_u64(5);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        let mut counter = CountingEvaluator::new(ExactEvaluator::new());
        let timesteps = 7;
        let _ = net.run(&seq(timesteps, 4, 6), &mut counter).unwrap();
        assert_eq!(
            counter.calls() as usize,
            timesteps * net.neuron_evaluations_per_step()
        );
        assert_eq!(counter.sequences(), 1);
    }

    #[test]
    fn gate_lookup_round_trips() {
        let cfg = DeepRnnConfig::new(CellKind::Lstm, 4, 4)
            .layers(2)
            .direction(Direction::Bidirectional);
        let mut rng = DeterministicRng::seed_from_u64(7);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        for (id, gate) in net.gates() {
            let found = net.gate(id).expect("gate must exist");
            assert_eq!(found.neurons(), gate.neurons());
        }
        // Unknown ids return None.
        assert!(net
            .gate(GateId::new(9, 0, crate::gate::GateKind::Input))
            .is_none());
    }

    #[test]
    fn run_rejects_empty_and_misshaped_sequences() {
        let cfg = DeepRnnConfig::new(CellKind::Gru, 3, 4);
        let mut rng = DeterministicRng::seed_from_u64(8);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        let mut eval = ExactEvaluator::new();
        assert!(matches!(
            net.run(&[], &mut eval),
            Err(RnnError::EmptySequence)
        ));
        let bad = vec![Vector::zeros(2)];
        assert!(matches!(
            net.run(&bad, &mut eval),
            Err(RnnError::InputSizeMismatch { .. })
        ));
    }

    #[test]
    fn new_rejects_incompatible_layers_and_head() {
        let mut rng = DeterministicRng::seed_from_u64(9);
        let l0 = Layer::random(
            0,
            CellKind::Lstm,
            Direction::Unidirectional,
            4,
            6,
            false,
            &mut rng,
        )
        .unwrap();
        let l1_bad = Layer::random(
            1,
            CellKind::Lstm,
            Direction::Unidirectional,
            5,
            6,
            false,
            &mut rng,
        )
        .unwrap();
        assert!(DeepRnn::new(vec![l0.clone(), l1_bad], None).is_err());
        let bad_head = Dense::random(7, 2, Activation::Identity, &mut rng).unwrap();
        assert!(DeepRnn::new(vec![l0], Some(bad_head)).is_err());
        assert!(DeepRnn::new(vec![], None).is_err());
    }

    #[test]
    fn run_with_hidden_returns_both_views() {
        let cfg = DeepRnnConfig::new(CellKind::Lstm, 3, 5).output_size(2);
        let mut rng = DeterministicRng::seed_from_u64(11);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        let (out, hidden) = net
            .run_with_hidden(&seq(4, 3, 12), &mut ExactEvaluator::new())
            .unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(hidden.len(), 4);
        assert_eq!(out[0].len(), 2);
        assert_eq!(hidden[0].len(), 5);
    }

    #[test]
    fn run_batch_matches_per_sequence_run_bitwise() {
        // Ragged lengths, bidirectional stack, head: every lane of a
        // batched run must be bit-identical to its own dedicated run.
        let cfg = DeepRnnConfig::new(CellKind::Lstm, 4, 5)
            .layers(2)
            .direction(Direction::Bidirectional)
            .output_size(3);
        let mut rng = DeterministicRng::seed_from_u64(21);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        let seqs: Vec<Vec<Vector>> = [5usize, 9, 3, 7]
            .iter()
            .enumerate()
            .map(|(i, &len)| seq(len, 4, 30 + i as u64))
            .collect();
        let refs: Vec<&[Vector]> = seqs.iter().map(|s| s.as_slice()).collect();
        let mut batch_eval = ExactEvaluator::new();
        let batched = net.run_batch(&refs, &mut batch_eval).unwrap();
        let mut single_evals = 0u64;
        for (i, s) in seqs.iter().enumerate() {
            let mut eval = ExactEvaluator::new();
            let single = net.run(s, &mut eval).unwrap();
            single_evals += eval.evaluations();
            assert_eq!(batched[i].len(), single.len(), "lane {i}");
            for (t, (a, b)) in batched[i].iter().zip(single.iter()).enumerate() {
                for n in 0..a.len() {
                    assert_eq!(a[n].to_bits(), b[n].to_bits(), "lane {i} t={t} n={n}");
                }
            }
        }
        assert_eq!(batch_eval.evaluations(), single_evals);
    }

    #[test]
    fn run_batch_rejects_empty_and_misshaped_lanes() {
        let cfg = DeepRnnConfig::new(CellKind::Gru, 3, 4);
        let mut rng = DeterministicRng::seed_from_u64(22);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        let mut eval = ExactEvaluator::new();
        assert!(net.run_batch(&[], &mut eval).unwrap().is_empty());
        let good = seq(4, 3, 23);
        let empty: Vec<Vector> = Vec::new();
        assert!(matches!(
            net.run_batch(&[good.as_slice(), empty.as_slice()], &mut eval),
            Err(RnnError::EmptySequence)
        ));
        let bad = vec![Vector::zeros(2); 3];
        assert!(matches!(
            net.run_batch(&[good.as_slice(), bad.as_slice()], &mut eval),
            Err(RnnError::InputSizeMismatch { .. })
        ));
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let cfg = DeepRnnConfig::new(CellKind::Gru, 4, 4).layers(2);
        let mut rng = DeterministicRng::seed_from_u64(13);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        let s = seq(6, 4, 14);
        let a = net.run(&s, &mut ExactEvaluator::new()).unwrap();
        let b = net.run(&s, &mut ExactEvaluator::new()).unwrap();
        assert_eq!(a, b);
    }
}
