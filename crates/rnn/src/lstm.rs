//! LSTM cell with peephole connections (Figure 2 / Equations 1–6).

use crate::batch::{BatchScratch, BatchState};
use crate::error::RnnError;
use crate::evaluator::NeuronEvaluator;
use crate::gate::{Gate, GateId, GateKind};
use crate::scratch::CellScratch;
use crate::Result;
use nfm_tensor::activation::Activation;
use nfm_tensor::rng::DeterministicRng;
use nfm_tensor::Vector;

/// The recurrent state carried by an LSTM cell between timesteps: the
/// hidden output `h_t` and the cell state `c_t`.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden output `h_t`.
    pub h: Vector,
    /// Cell state `c_t`.
    pub c: Vector,
}

impl LstmState {
    /// Zero-initialized state for a cell with `hidden` neurons.
    pub fn zeros(hidden: usize) -> Self {
        LstmState {
            h: Vector::zeros(hidden),
            c: Vector::zeros(hidden),
        }
    }
}

/// An LSTM cell (Equations 1–6 of the paper):
///
/// ```text
/// i_t = σ(W_ix·x_t + W_ih·h_{t-1} + p_i⊙c_{t-1} + b_i)
/// f_t = σ(W_fx·x_t + W_fh·h_{t-1} + p_f⊙c_{t-1} + b_f)
/// g_t = ϕ(W_gx·x_t + W_gh·h_{t-1} + b_g)
/// c_t = f_t ⊙ c_{t-1} + i_t ⊙ g_t
/// o_t = σ(W_ox·x_t + W_oh·h_{t-1} + p_o⊙c_t + b_o)
/// h_t = o_t ⊙ ϕ(c_t)
/// ```
///
/// The output-gate peephole uses the *previous* cell state here (a common
/// simplification that keeps all four gates independent, matching the
/// E-PUR hardware where the four computation units run concurrently).
#[derive(Debug, Clone, PartialEq)]
pub struct LstmCell {
    input: Gate,
    forget: Gate,
    candidate: Gate,
    output: Gate,
}

impl LstmCell {
    /// Creates a cell from its four gates.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if the gates disagree on
    /// neuron count, input size or hidden size.
    pub fn new(input: Gate, forget: Gate, candidate: Gate, output: Gate) -> Result<Self> {
        let gates = [&input, &forget, &candidate, &output];
        let neurons = input.neurons();
        let in_size = input.input_size();
        let hid = input.hidden_size();
        for g in gates {
            if g.neurons() != neurons || g.input_size() != in_size || g.hidden_size() != hid {
                return Err(RnnError::InvalidConfig {
                    what: "LSTM gates disagree on dimensions".into(),
                });
            }
        }
        if hid != neurons {
            return Err(RnnError::InvalidConfig {
                what: format!("LSTM recurrent width {hid} must equal neuron count {neurons}"),
            });
        }
        Ok(LstmCell {
            input,
            forget,
            candidate,
            output,
        })
    }

    /// Creates a randomly initialized cell.
    ///
    /// `peepholes` controls whether the sigmoid gates get peephole
    /// connections (the paper's LSTM description includes them).
    pub fn random(
        input_size: usize,
        hidden_size: usize,
        peepholes: bool,
        rng: &mut DeterministicRng,
    ) -> Result<Self> {
        let input = Gate::random(
            hidden_size,
            input_size,
            hidden_size,
            Activation::Sigmoid,
            peepholes,
            rng,
        )?;
        let forget = Gate::random(
            hidden_size,
            input_size,
            hidden_size,
            Activation::Sigmoid,
            peepholes,
            rng,
        )?;
        let candidate = Gate::random(
            hidden_size,
            input_size,
            hidden_size,
            Activation::Tanh,
            false,
            rng,
        )?;
        let output = Gate::random(
            hidden_size,
            input_size,
            hidden_size,
            Activation::Sigmoid,
            peepholes,
            rng,
        )?;
        LstmCell::new(input, forget, candidate, output)
    }

    /// Number of neurons per gate.
    pub fn hidden_size(&self) -> usize {
        self.input.neurons()
    }

    /// Width of the expected input vector.
    pub fn input_size(&self) -> usize {
        self.input.input_size()
    }

    /// Borrows a gate by kind.
    ///
    /// Returns `None` for GRU-only gate kinds (`Update`, `Reset`).
    pub fn gate(&self, kind: GateKind) -> Option<&Gate> {
        match kind {
            GateKind::Input => Some(&self.input),
            GateKind::Forget => Some(&self.forget),
            GateKind::Candidate => Some(&self.candidate),
            GateKind::Output => Some(&self.output),
            GateKind::Update | GateKind::Reset => None,
        }
    }

    /// The gate kinds this cell evaluates, in order.
    pub fn gate_kinds(&self) -> &'static [GateKind] {
        &GateKind::LSTM
    }

    /// Total number of weights in the cell (all four gates).
    pub fn weight_count(&self) -> usize {
        GateKind::LSTM
            .iter()
            .filter_map(|&k| self.gate(k))
            .map(Gate::weight_count)
            .sum()
    }

    /// Number of neuron evaluations performed per timestep (one per gate
    /// neuron), i.e. the quantity the paper's "computation reuse"
    /// percentages are measured against.
    pub fn neuron_evaluations_per_step(&self) -> usize {
        self.hidden_size() * GateKind::LSTM.len()
    }

    /// Advances the cell by one timestep, writing the next state into
    /// `next` and reusing the caller-owned `scratch` buffers: the
    /// steady-state path performs zero allocations.
    ///
    /// `layer`/`direction` locate this cell inside the deep network so the
    /// evaluator can key its memoization tables; `timestep` is the element
    /// index within the current sequence.  `state` and `next` must be
    /// distinct.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` or the state widths do not match the cell.
    #[allow(clippy::too_many_arguments)]
    pub fn step_into(
        &self,
        layer: usize,
        direction: usize,
        timestep: usize,
        x: &[f32],
        state: &LstmState,
        next: &mut LstmState,
        scratch: &mut CellScratch,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<()> {
        let hidden = self.hidden_size();
        if state.h.len() != hidden || state.c.len() != hidden {
            return Err(RnnError::InvalidConfig {
                what: format!(
                    "LSTM state width {} does not match hidden size {}",
                    state.h.len(),
                    hidden
                ),
            });
        }
        next.h.resize(hidden, 0.0);
        next.c.resize(hidden, 0.0);
        let id = |kind| GateId::new(layer, direction, kind);
        let h_prev = state.h.as_slice();
        let c_prev = state.c.as_slice();
        let (ib, fb, gb) = scratch.bufs(hidden);
        self.input.evaluate_into(
            id(GateKind::Input),
            timestep,
            x,
            h_prev,
            Some(c_prev),
            evaluator,
            ib,
        )?;
        self.forget.evaluate_into(
            id(GateKind::Forget),
            timestep,
            x,
            h_prev,
            Some(c_prev),
            evaluator,
            fb,
        )?;
        self.candidate.evaluate_into(
            id(GateKind::Candidate),
            timestep,
            x,
            h_prev,
            None,
            evaluator,
            gb,
        )?;
        // c_t = f_t ⊙ c_{t-1} + i_t ⊙ g_t
        for (n, c_next) in next.c.as_mut_slice().iter_mut().enumerate() {
            *c_next = fb[n] * c_prev[n] + ib[n] * gb[n];
        }
        // The output-gate peephole uses the previous cell state (see the
        // cell docs); `ib` is free again and holds o_t.
        self.output.evaluate_into(
            id(GateKind::Output),
            timestep,
            x,
            h_prev,
            Some(c_prev),
            evaluator,
            ib,
        )?;
        // h_t = o_t ⊙ ϕ(c_t)
        let c_next = next.c.as_slice();
        for (n, h_next) in next.h.as_mut_slice().iter_mut().enumerate() {
            *h_next = ib[n] * c_next[n].tanh();
        }
        Ok(())
    }

    /// Advances the first `lanes` lanes of a batch by one timestep,
    /// writing the next lane-striped state into `next` and reusing the
    /// caller-owned `scratch`: the steady-state path performs zero
    /// allocations and every gate's weights are streamed once for all
    /// lanes.
    ///
    /// `xs` holds the `lanes` input vectors lane-striped
    /// (`lanes * input_size`).  `hoisted`, when present, supplies the
    /// pre-computed input projections `W_x·x_t` for this timestep, one
    /// lane-striped slice (`lanes * hidden`) per gate in
    /// [`GateKind::LSTM`] order.  Lane `l`'s next state is bit-identical
    /// to a single-sequence [`LstmCell::step_into`] over lane `l`'s
    /// vectors.
    ///
    /// # Errors
    ///
    /// Returns an error if the lane-striped widths do not match the
    /// cell.
    #[allow(clippy::too_many_arguments)]
    pub fn step_batch_into(
        &self,
        layer: usize,
        direction: usize,
        timestep: usize,
        lanes: usize,
        xs: &[f32],
        state: &BatchState,
        next: &mut BatchState,
        scratch: &mut BatchScratch,
        hoisted: Option<&[&[f32]]>,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<()> {
        let hidden = self.hidden_size();
        if state.hidden() != hidden || state.lanes() < lanes || next.lanes() < lanes {
            return Err(RnnError::InvalidConfig {
                what: format!(
                    "batch state ({} lanes x {}) does not cover {} lanes of hidden size {}",
                    state.lanes(),
                    state.hidden(),
                    lanes,
                    hidden
                ),
            });
        }
        if next.hidden() != hidden {
            return Err(RnnError::InvalidConfig {
                what: format!(
                    "next batch state hidden size {} does not match cell hidden size {}",
                    next.hidden(),
                    hidden
                ),
            });
        }
        if let Some(fwd) = hoisted {
            if fwd.len() != GateKind::LSTM.len() {
                return Err(RnnError::InvalidConfig {
                    what: format!(
                        "hoisted projections cover {} gates, LSTM needs {}",
                        fwd.len(),
                        GateKind::LSTM.len()
                    ),
                });
            }
        }
        let id = |kind| GateId::new(layer, direction, kind);
        let h_prev = state.h_prefix(lanes);
        let c_prev = state.c_prefix(lanes);
        let (ib, fb, gb) = scratch.bufs(lanes * hidden);
        let gate_fwd = |g: usize| hoisted.map(|f| f[g]);
        self.input.evaluate_batch_into(
            id(GateKind::Input),
            timestep,
            lanes,
            xs,
            h_prev,
            Some(c_prev),
            gate_fwd(0),
            evaluator,
            ib,
        )?;
        self.forget.evaluate_batch_into(
            id(GateKind::Forget),
            timestep,
            lanes,
            xs,
            h_prev,
            Some(c_prev),
            gate_fwd(1),
            evaluator,
            fb,
        )?;
        self.candidate.evaluate_batch_into(
            id(GateKind::Candidate),
            timestep,
            lanes,
            xs,
            h_prev,
            None,
            gate_fwd(2),
            evaluator,
            gb,
        )?;
        // c_t = f_t ⊙ c_{t-1} + i_t ⊙ g_t, elementwise over all lanes
        // (the per-index scalar order of step_into).
        for (n, c_next) in next.c_prefix_mut(lanes).iter_mut().enumerate() {
            *c_next = fb[n] * c_prev[n] + ib[n] * gb[n];
        }
        // Output-gate peephole uses the previous cell state (see the
        // cell docs); `ib` is free again and holds o_t.
        self.output.evaluate_batch_into(
            id(GateKind::Output),
            timestep,
            lanes,
            xs,
            h_prev,
            Some(c_prev),
            gate_fwd(3),
            evaluator,
            ib,
        )?;
        // h_t = o_t ⊙ ϕ(c_t)
        let (h_next, c_next) = next.h_mut_c_prefix(lanes);
        for (n, h) in h_next.iter_mut().enumerate() {
            *h = ib[n] * c_next[n].tanh();
        }
        Ok(())
    }

    /// Advances the cell by one timestep, returning a freshly allocated
    /// state.  Sequence loops use [`LstmCell::step_into`] with reused
    /// buffers instead.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` or the state widths do not match the cell.
    pub fn step(
        &self,
        layer: usize,
        direction: usize,
        timestep: usize,
        x: &Vector,
        state: &LstmState,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<LstmState> {
        let mut next = LstmState::zeros(self.hidden_size());
        let mut scratch = CellScratch::for_hidden(self.hidden_size());
        self.step_into(
            layer,
            direction,
            timestep,
            x.as_slice(),
            state,
            &mut next,
            &mut scratch,
            evaluator,
        )?;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::ExactEvaluator;

    fn cell(input_size: usize, hidden: usize, seed: u64) -> LstmCell {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        LstmCell::random(input_size, hidden, true, &mut rng).unwrap()
    }

    #[test]
    fn random_cell_dimensions() {
        let c = cell(6, 4, 1);
        assert_eq!(c.hidden_size(), 4);
        assert_eq!(c.input_size(), 6);
        assert_eq!(c.neuron_evaluations_per_step(), 16);
        assert_eq!(c.weight_count(), 4 * 4 * (6 + 4));
        assert!(c.gate(GateKind::Input).is_some());
        assert!(c.gate(GateKind::Update).is_none());
        assert_eq!(c.gate_kinds().len(), 4);
    }

    #[test]
    fn step_produces_bounded_outputs() {
        let c = cell(6, 4, 2);
        let mut state = LstmState::zeros(4);
        let mut eval = ExactEvaluator::new();
        let mut rng = DeterministicRng::seed_from_u64(9);
        for t in 0..20 {
            let x = Vector::from_fn(6, |_| rng.uniform(-1.0, 1.0));
            state = c.step(0, 0, t, &x, &state, &mut eval).unwrap();
            // |h| <= 1 because h = σ(...) ⊙ tanh(c); c is bounded by the
            // forget/input gate dynamics for bounded inputs.
            assert!(state.h.norm_inf() <= 1.0 + 1e-5);
            assert!(state.h.iter().all(|v| v.is_finite()));
            assert!(state.c.iter().all(|v| v.is_finite()));
        }
        assert_eq!(eval.evaluations(), 20 * 16);
    }

    #[test]
    fn step_is_deterministic() {
        let c = cell(3, 5, 7);
        let x = Vector::from(vec![0.1, -0.3, 0.7]);
        let s0 = LstmState::zeros(5);
        let mut e1 = ExactEvaluator::new();
        let mut e2 = ExactEvaluator::new();
        let a = c.step(0, 0, 0, &x, &s0, &mut e1).unwrap();
        let b = c.step(0, 0, 0, &x, &s0, &mut e2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_input_zero_state_gives_small_output() {
        let c = cell(4, 4, 3);
        let mut eval = ExactEvaluator::new();
        let out = c
            .step(0, 0, 0, &Vector::zeros(4), &LstmState::zeros(4), &mut eval)
            .unwrap();
        // With zero inputs only the biases contribute, so outputs stay small.
        assert!(out.h.norm_inf() < 0.5);
    }

    #[test]
    fn step_rejects_bad_widths() {
        let c = cell(4, 4, 4);
        let mut eval = ExactEvaluator::new();
        let bad_x = Vector::zeros(3);
        assert!(c
            .step(0, 0, 0, &bad_x, &LstmState::zeros(4), &mut eval)
            .is_err());
        let bad_state = LstmState::zeros(2);
        assert!(c
            .step(0, 0, 0, &Vector::zeros(4), &bad_state, &mut eval)
            .is_err());
    }

    #[test]
    fn new_rejects_mismatched_gates() {
        let mut rng = DeterministicRng::seed_from_u64(5);
        let g4 = || {
            Gate::random(
                4,
                4,
                4,
                Activation::Sigmoid,
                false,
                &mut DeterministicRng::seed_from_u64(1),
            )
            .unwrap()
        };
        let g_bad = Gate::random(3, 4, 3, Activation::Sigmoid, false, &mut rng).unwrap();
        assert!(LstmCell::new(g4(), g4(), g4(), g_bad).is_err());
    }

    #[test]
    fn forget_gate_dominates_when_input_gate_closed() {
        // A hand-built cell where the input gate is forced closed (large
        // negative bias): the cell state must stay at zero.
        let mut rng = DeterministicRng::seed_from_u64(11);
        let mut mk = |act, bias: f32| {
            let wx = nfm_tensor::init::Initializer::XavierUniform.matrix(&mut rng, 2, 2);
            let wh = nfm_tensor::init::Initializer::XavierUniform.matrix(&mut rng, 2, 2);
            Gate::new(wx, wh, Vector::filled(2, bias), None, act).unwrap()
        };
        let input = mk(Activation::Sigmoid, -30.0);
        let forget = mk(Activation::Sigmoid, 0.0);
        let candidate = mk(Activation::Tanh, 0.0);
        let output = mk(Activation::Sigmoid, 0.0);
        let cell = LstmCell::new(input, forget, candidate, output).unwrap();
        let mut eval = ExactEvaluator::new();
        let state = cell
            .step(
                0,
                0,
                0,
                &Vector::from(vec![1.0, -1.0]),
                &LstmState::zeros(2),
                &mut eval,
            )
            .unwrap();
        assert!(state.c.norm_inf() < 1e-5);
        assert!(state.h.norm_inf() < 1e-5);
    }
}
