//! Dense (fully-connected, non-recurrent) projection layer.
//!
//! The workload networks attach a dense head to the recurrent stack: a
//! softmax classifier for IMDB sentiment, a per-frame character
//! distribution for the speech networks, and a vocabulary projection for
//! the translation network.  The head is always evaluated exactly (the
//! paper only memoizes recurrent-layer neurons), so it lives outside the
//! [`NeuronEvaluator`](crate::NeuronEvaluator) path.

use crate::error::RnnError;
use crate::Result;
use nfm_tensor::activation::Activation;
use nfm_tensor::init::Initializer;
use nfm_tensor::rng::DeterministicRng;
use nfm_tensor::{Matrix, Vector};

/// A dense layer `y = act(W·x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    weights: Matrix,
    bias: Vector,
    activation: Activation,
}

impl Dense {
    /// Creates a dense layer from explicit weights.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if `bias.len() != weights.rows()`.
    pub fn new(weights: Matrix, bias: Vector, activation: Activation) -> Result<Self> {
        if bias.len() != weights.rows() {
            return Err(RnnError::InvalidConfig {
                what: format!(
                    "dense bias length {} does not match output size {}",
                    bias.len(),
                    weights.rows()
                ),
            });
        }
        Ok(Dense {
            weights,
            bias,
            activation,
        })
    }

    /// The weight matrix (`output_size x input_size`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector (`output_size`).
    pub fn bias(&self) -> &Vector {
        &self.bias
    }

    /// The output activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Creates a randomly initialized dense layer.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if either dimension is zero.
    pub fn random(
        input_size: usize,
        output_size: usize,
        activation: Activation,
        rng: &mut DeterministicRng,
    ) -> Result<Self> {
        if input_size == 0 || output_size == 0 {
            return Err(RnnError::InvalidConfig {
                what: "dense layer dimensions must be positive".into(),
            });
        }
        let weights = Initializer::XavierUniform.matrix(rng, output_size, input_size);
        let bias = Initializer::Uniform { bound: 0.01 }.vector(rng, output_size);
        Dense::new(weights, bias, activation)
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.weights.rows()
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.weights.cols()
    }

    /// Number of weights in the layer.
    pub fn weight_count(&self) -> usize {
        self.weights.element_count()
    }

    /// Applies the layer to an input vector.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `x.len() != self.input_size()`.
    pub fn apply(&self, x: &Vector) -> Result<Vector> {
        let mut y = self.weights.matvec(x)?;
        y = y.add(&self.bias)?;
        Ok(self.activation.apply_vector(&y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_bias_length() {
        let w = Matrix::zeros(2, 3);
        assert!(Dense::new(w.clone(), Vector::zeros(3), Activation::Identity).is_err());
        assert!(Dense::new(w, Vector::zeros(2), Activation::Identity).is_ok());
    }

    #[test]
    fn apply_computes_affine_then_activation() {
        let w = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, -1.0]]).unwrap();
        let b = Vector::from(vec![0.5, 0.0]);
        let d = Dense::new(w, b, Activation::Relu).unwrap();
        let y = d.apply(&Vector::from(vec![1.0, 2.0])).unwrap();
        assert_eq!(y.as_slice(), &[1.5, 0.0]);
    }

    #[test]
    fn apply_rejects_wrong_width() {
        let mut rng = DeterministicRng::seed_from_u64(1);
        let d = Dense::random(4, 2, Activation::Identity, &mut rng).unwrap();
        assert!(d.apply(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn random_layer_shapes_and_counts() {
        let mut rng = DeterministicRng::seed_from_u64(2);
        let d = Dense::random(10, 3, Activation::Sigmoid, &mut rng).unwrap();
        assert_eq!(d.input_size(), 10);
        assert_eq!(d.output_size(), 3);
        assert_eq!(d.weight_count(), 30);
        assert!(Dense::random(0, 3, Activation::Sigmoid, &mut rng).is_err());
    }
}
