//! Fully-connected gates: the unit of work the paper memoizes.

use crate::error::RnnError;
use crate::evaluator::NeuronEvaluator;
use crate::Result;
use nfm_tensor::activation::Activation;
use nfm_tensor::init::Initializer;
use nfm_tensor::kernels;
use nfm_tensor::rng::DeterministicRng;
use nfm_tensor::{Matrix, Vector};

/// Which gate of a cell a set of weights belongs to.
///
/// LSTM cells use `Input`, `Forget`, `Candidate` (called the *updater*
/// gate `g_t` in the paper) and `Output`; GRU cells use `Update`, `Reset`
/// and `Candidate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// LSTM input gate `i_t` (Equation 1).
    Input,
    /// LSTM forget gate `f_t` (Equation 2).
    Forget,
    /// Candidate / updater gate `g_t` (Equation 3); also the GRU candidate.
    Candidate,
    /// LSTM output gate `o_t` (Equation 5).
    Output,
    /// GRU update gate `z_t`.
    Update,
    /// GRU reset gate `r_t`.
    Reset,
}

impl GateKind {
    /// All gate kinds used by an LSTM cell, in evaluation order.
    pub const LSTM: [GateKind; 4] = [
        GateKind::Input,
        GateKind::Forget,
        GateKind::Candidate,
        GateKind::Output,
    ];

    /// All gate kinds used by a GRU cell, in evaluation order.
    pub const GRU: [GateKind; 3] = [GateKind::Update, GateKind::Reset, GateKind::Candidate];

    /// Total number of gate kinds across both cell types.
    pub const COUNT: usize = 6;

    /// Stable dense index of the kind in `0..GateKind::COUNT`, used to
    /// key flat per-gate tables without hashing.
    pub fn index(self) -> usize {
        match self {
            GateKind::Input => 0,
            GateKind::Forget => 1,
            GateKind::Candidate => 2,
            GateKind::Output => 3,
            GateKind::Update => 4,
            GateKind::Reset => 5,
        }
    }

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Input => "input",
            GateKind::Forget => "forget",
            GateKind::Candidate => "candidate",
            GateKind::Output => "output",
            GateKind::Update => "update",
            GateKind::Reset => "reset",
        }
    }
}

/// Stable identifier of a gate inside a deep (possibly bidirectional)
/// network: `(layer, direction slot, gate kind)`.
///
/// The memoization machinery keys its per-neuron tables with
/// `(GateId, neuron index)`, which matches the paper's hardware where each
/// computation unit owns the memoization buffer for the gate it evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId {
    /// Index of the layer in the deep stack.
    pub layer: usize,
    /// 0 for the forward cell, 1 for the backward cell of a bidirectional
    /// layer.
    pub direction: usize,
    /// Which gate of the cell.
    pub kind: GateKind,
}

impl GateId {
    /// Creates a new gate identifier.
    pub fn new(layer: usize, direction: usize, kind: GateKind) -> Self {
        GateId {
            layer,
            direction,
            kind,
        }
    }

    /// Dense index of the gate inside a network:
    /// `(layer * 2 + direction) * GateKind::COUNT + kind`.
    ///
    /// The memoization buffer uses this to replace hashing with plain
    /// array indexing on the hot path (directions are always 0 or 1).
    pub fn dense_index(self) -> usize {
        debug_assert!(self.direction < 2, "directions are 0 (fwd) or 1 (bwd)");
        (self.layer * 2 + self.direction) * GateKind::COUNT + self.kind.index()
    }
}

/// A fully-connected, single-layer gate with forward and recurrent
/// connections, bias, optional peephole weights and an activation.
///
/// Each *row* of the two weight matrices belongs to one neuron; the
/// pre-activation of neuron `n` at timestep `t` is
/// `W_x[n]·x_t + W_h[n]·h_{t-1}` — this is the quantity that flows
/// through a [`NeuronEvaluator`] and that the fuzzy memoization scheme
/// either computes or reuses.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    wx: Matrix,
    wh: Matrix,
    bias: Vector,
    peephole: Option<Vector>,
    activation: Activation,
}

impl Gate {
    /// Creates a gate from explicit weights.
    ///
    /// # Errors
    ///
    /// Returns [`RnnError::InvalidConfig`] if the matrix/vector shapes are
    /// inconsistent (both matrices must have the same number of rows, the
    /// bias and peephole must have one entry per row, and `wh` must be
    /// square unless the layer projects to a different hidden size).
    pub fn new(
        wx: Matrix,
        wh: Matrix,
        bias: Vector,
        peephole: Option<Vector>,
        activation: Activation,
    ) -> Result<Self> {
        if wx.rows() != wh.rows() {
            return Err(RnnError::InvalidConfig {
                what: format!(
                    "forward and recurrent weight matrices disagree on neuron count: {} vs {}",
                    wx.rows(),
                    wh.rows()
                ),
            });
        }
        if bias.len() != wx.rows() {
            return Err(RnnError::InvalidConfig {
                what: format!(
                    "bias length {} does not match neuron count {}",
                    bias.len(),
                    wx.rows()
                ),
            });
        }
        if let Some(p) = &peephole {
            if p.len() != wx.rows() {
                return Err(RnnError::InvalidConfig {
                    what: format!(
                        "peephole length {} does not match neuron count {}",
                        p.len(),
                        wx.rows()
                    ),
                });
            }
        }
        Ok(Gate {
            wx,
            wh,
            bias,
            peephole,
            activation,
        })
    }

    /// Creates a randomly initialized gate with `neurons` outputs,
    /// `input_size` forward inputs and `hidden_size` recurrent inputs.
    pub fn random(
        neurons: usize,
        input_size: usize,
        hidden_size: usize,
        activation: Activation,
        peephole: bool,
        rng: &mut DeterministicRng,
    ) -> Result<Self> {
        if neurons == 0 || input_size == 0 || hidden_size == 0 {
            return Err(RnnError::InvalidConfig {
                what: "gate dimensions must be positive".into(),
            });
        }
        let wx = Initializer::XavierUniform.matrix(rng, neurons, input_size);
        let wh = Initializer::XavierUniform.matrix(rng, neurons, hidden_size);
        let bias = Initializer::Uniform { bound: 0.05 }.vector(rng, neurons);
        let peephole = if peephole {
            Some(Initializer::Uniform { bound: 0.1 }.vector(rng, neurons))
        } else {
            None
        };
        Gate::new(wx, wh, bias, peephole, activation)
    }

    /// Number of neurons (rows) in the gate.
    pub fn neurons(&self) -> usize {
        self.wx.rows()
    }

    /// Width of the forward input `x_t`.
    pub fn input_size(&self) -> usize {
        self.wx.cols()
    }

    /// Width of the recurrent input `h_{t-1}`.
    pub fn hidden_size(&self) -> usize {
        self.wh.cols()
    }

    /// Forward-connection weight matrix (`neurons x input_size`).
    pub fn wx(&self) -> &Matrix {
        &self.wx
    }

    /// Recurrent-connection weight matrix (`neurons x hidden_size`).
    pub fn wh(&self) -> &Matrix {
        &self.wh
    }

    /// Bias vector.
    pub fn bias(&self) -> &Vector {
        &self.bias
    }

    /// Peephole weights, if the gate has them.
    pub fn peephole(&self) -> Option<&Vector> {
        self.peephole.as_ref()
    }

    /// Activation function applied after bias/peephole.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of weights fetched when a single neuron is evaluated
    /// exactly (forward + recurrent row).
    pub fn weights_per_neuron(&self) -> usize {
        self.input_size() + self.hidden_size()
    }

    /// Total number of weights in the gate.
    pub fn weight_count(&self) -> usize {
        self.wx.element_count() + self.wh.element_count()
    }

    /// Exact pre-activation dot product of neuron `n`:
    /// `W_x[n]·x + W_h[n]·h_prev`.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `x`/`h_prev` widths do not match the
    /// gate.
    ///
    /// # Panics
    ///
    /// Panics if `n >= self.neurons()`.
    pub fn neuron_dot(&self, n: usize, x: &[f32], h_prev: &[f32]) -> Result<f32> {
        let fwd = self.wx.row_dot(n, x)?;
        let rec = self.wh.row_dot(n, h_prev)?;
        Ok(fwd + rec)
    }

    /// Check-free variant of [`Gate::neuron_dot`] for batched evaluators
    /// that have already validated the input widths once per gate call.
    /// Bit-identical to the checked version (same kernel, same order).
    ///
    /// # Panics
    ///
    /// Panics if `n >= self.neurons()`; may panic on mismatched widths.
    #[inline]
    pub fn neuron_dot_unchecked(&self, n: usize, x: &[f32], h_prev: &[f32]) -> f32 {
        kernels::dot_unchecked(self.wx.row(n), x) + kernels::dot_unchecked(self.wh.row(n), h_prev)
    }

    /// Completes a neuron evaluation from its pre-activation dot product:
    /// adds bias, an optional peephole contribution (`p[n] * c_prev[n]`),
    /// and applies the activation function.
    ///
    /// # Panics
    ///
    /// Panics if `n >= self.neurons()` or if a peephole is present but
    /// `c_prev` is `None` shorter than `n`.
    pub fn finish_neuron(&self, n: usize, dot: f32, c_prev: Option<&Vector>) -> f32 {
        let mut pre = dot + self.bias[n];
        if let Some(p) = &self.peephole {
            if let Some(c) = c_prev {
                pre += p[n] * c[n];
            }
        }
        self.activation.apply(pre)
    }

    /// Batched exact pre-activation of every neuron:
    /// `out[n] = W_x[n]·x + W_h[n]·h_prev` (no bias/peephole/activation).
    ///
    /// One fused dual matrix-vector product; this is what the exact
    /// evaluator and the memoization predictors run when a neuron must be
    /// computed in full precision.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `x`/`h_prev`/`out` widths do not match
    /// the gate.
    pub fn preactivate_into(&self, x: &[f32], h_prev: &[f32], out: &mut [f32]) -> Result<()> {
        kernels::dual_matvec_into(&self.wx, &self.wh, x, h_prev, out)?;
        Ok(())
    }

    /// Completes a whole gate evaluation in place: adds bias, the
    /// optional peephole contribution and the activation to every dot
    /// product in `pre` (which arrives from
    /// [`NeuronEvaluator::evaluate_gate`] and leaves as the gate output).
    ///
    /// # Panics
    ///
    /// Panics if `pre.len() != self.neurons()` or if a peephole is
    /// present and `c_prev` is shorter than the gate.
    pub fn finish_into(&self, pre: &mut [f32], c_prev: Option<&[f32]>) {
        assert_eq!(pre.len(), self.neurons(), "gate output width mismatch");
        let bias = self.bias.as_slice();
        match (&self.peephole, c_prev) {
            (Some(p), Some(c)) => {
                let p = p.as_slice();
                for n in 0..pre.len() {
                    // Keep the scalar order of finish_neuron: (dot + bias) + p*c.
                    pre[n] = self.activation.apply(pre[n] + bias[n] + p[n] * c[n]);
                }
            }
            _ => {
                for n in 0..pre.len() {
                    pre[n] = self.activation.apply(pre[n] + bias[n]);
                }
            }
        }
    }

    /// Evaluates the whole gate for one timestep into a caller-owned
    /// buffer, routing the dot products through `evaluator` (one batched
    /// [`NeuronEvaluator::evaluate_gate`] call) and then applying
    /// bias/peephole/activation in place.
    ///
    /// `gate_id` identifies this gate to the evaluator, `timestep` is the
    /// index of the current element in the sequence, and `c_prev` supplies
    /// the previous cell state for peephole connections (LSTM only).
    ///
    /// # Errors
    ///
    /// Returns an error if the input widths do not match the gate shape.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.neurons()`.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_into(
        &self,
        gate_id: GateId,
        timestep: usize,
        x: &[f32],
        h_prev: &[f32],
        c_prev: Option<&[f32]>,
        evaluator: &mut dyn NeuronEvaluator,
        out: &mut [f32],
    ) -> Result<()> {
        if x.len() != self.input_size() {
            return Err(RnnError::InputSizeMismatch {
                expected: self.input_size(),
                found: x.len(),
                timestep,
            });
        }
        if h_prev.len() != self.hidden_size() {
            return Err(RnnError::InputSizeMismatch {
                expected: self.hidden_size(),
                found: h_prev.len(),
                timestep,
            });
        }
        assert_eq!(out.len(), self.neurons(), "gate output width mismatch");
        evaluator.evaluate_gate(gate_id, timestep, self, x, h_prev, out)?;
        self.finish_into(out, c_prev);
        Ok(())
    }

    /// Evaluates the whole gate for one timestep across `lanes`
    /// independent sequences into a caller-owned lane-striped buffer.
    ///
    /// `xs`/`h_prevs`/`c_prevs`/`out` are lane-striped (`lanes *` the
    /// respective width); lane `l`'s result is bit-identical to a
    /// single-sequence [`Gate::evaluate_into`] over lane `l`'s vectors.
    /// When `fwd` is `Some`, it holds the pre-computed input projections
    /// `W_x[n]·xs[l]` (lane-striped, `lanes * neurons`) and the
    /// evaluator's hoisted path is used (callers only pass this for
    /// evaluators whose
    /// [`supports_input_hoisting`](crate::NeuronEvaluator::supports_input_hoisting)
    /// returns `true`).
    ///
    /// # Errors
    ///
    /// Returns an error if the input widths do not match the gate shape.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != lanes * self.neurons()`.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_batch_into(
        &self,
        gate_id: GateId,
        timestep: usize,
        lanes: usize,
        xs: &[f32],
        h_prevs: &[f32],
        c_prevs: Option<&[f32]>,
        fwd: Option<&[f32]>,
        evaluator: &mut dyn NeuronEvaluator,
        out: &mut [f32],
    ) -> Result<()> {
        if xs.len() != lanes * self.input_size() {
            return Err(RnnError::InputSizeMismatch {
                expected: lanes * self.input_size(),
                found: xs.len(),
                timestep,
            });
        }
        if h_prevs.len() != lanes * self.hidden_size() {
            return Err(RnnError::InputSizeMismatch {
                expected: lanes * self.hidden_size(),
                found: h_prevs.len(),
                timestep,
            });
        }
        let neurons = self.neurons();
        assert_eq!(out.len(), lanes * neurons, "gate output width mismatch");
        match fwd {
            Some(fwd) => evaluator.evaluate_gate_batch_hoisted(
                gate_id, timestep, lanes, self, fwd, xs, h_prevs, out,
            )?,
            None => {
                evaluator.evaluate_gate_batch(gate_id, timestep, lanes, self, xs, h_prevs, out)?
            }
        }
        for l in 0..lanes {
            let c_lane = c_prevs.map(|c| &c[l * neurons..(l + 1) * neurons]);
            self.finish_into(&mut out[l * neurons..(l + 1) * neurons], c_lane);
        }
        Ok(())
    }

    /// Evaluates the whole gate for one timestep, returning a freshly
    /// allocated output vector.  Allocation-conscious callers (the cells'
    /// sequence loops) use [`Gate::evaluate_into`] with reused scratch
    /// buffers instead.
    ///
    /// # Errors
    ///
    /// Returns an error if the input widths do not match the gate shape.
    pub fn evaluate(
        &self,
        gate_id: GateId,
        timestep: usize,
        x: &Vector,
        h_prev: &Vector,
        c_prev: Option<&Vector>,
        evaluator: &mut dyn NeuronEvaluator,
    ) -> Result<Vector> {
        let mut out = vec![0.0f32; self.neurons()];
        self.evaluate_into(
            gate_id,
            timestep,
            x.as_slice(),
            h_prev.as_slice(),
            c_prev.map(Vector::as_slice),
            evaluator,
            &mut out,
        )?;
        Ok(Vector::from(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::ExactEvaluator;

    fn small_gate(peephole: bool) -> Gate {
        let wx = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let wh = Matrix::from_rows(vec![vec![0.5, 0.0], vec![0.0, 0.5]]).unwrap();
        let bias = Vector::from(vec![0.0, 0.1]);
        let p = if peephole {
            Some(Vector::from(vec![0.2, 0.2]))
        } else {
            None
        };
        Gate::new(wx, wh, bias, p, Activation::Identity).unwrap()
    }

    #[test]
    fn new_validates_shapes() {
        let wx = Matrix::zeros(2, 3);
        let wh = Matrix::zeros(3, 2);
        let bias = Vector::zeros(2);
        assert!(matches!(
            Gate::new(wx, wh, bias, None, Activation::Sigmoid),
            Err(RnnError::InvalidConfig { .. })
        ));
        let wx = Matrix::zeros(2, 3);
        let wh = Matrix::zeros(2, 2);
        let bias = Vector::zeros(3);
        assert!(Gate::new(wx, wh, bias, None, Activation::Sigmoid).is_err());
        let wx = Matrix::zeros(2, 3);
        let wh = Matrix::zeros(2, 2);
        let bias = Vector::zeros(2);
        let peephole = Some(Vector::zeros(5));
        assert!(Gate::new(wx, wh, bias, peephole, Activation::Sigmoid).is_err());
    }

    #[test]
    fn random_gate_has_requested_shape() {
        let mut rng = DeterministicRng::seed_from_u64(3);
        let g = Gate::random(4, 6, 4, Activation::Sigmoid, true, &mut rng).unwrap();
        assert_eq!(g.neurons(), 4);
        assert_eq!(g.input_size(), 6);
        assert_eq!(g.hidden_size(), 4);
        assert_eq!(g.weights_per_neuron(), 10);
        assert_eq!(g.weight_count(), 40);
        assert!(g.peephole().is_some());
        assert!(Gate::random(0, 1, 1, Activation::Sigmoid, false, &mut rng).is_err());
    }

    #[test]
    fn neuron_dot_matches_manual() {
        let g = small_gate(false);
        let x = [2.0, 3.0];
        let h = [4.0, 6.0];
        assert_eq!(g.neuron_dot(0, &x, &h).unwrap(), 2.0 + 2.0);
        assert_eq!(g.neuron_dot(1, &x, &h).unwrap(), 3.0 + 3.0);
        assert!(g.neuron_dot(0, &[1.0], &h).is_err());
    }

    #[test]
    fn finish_neuron_applies_bias_peephole_activation() {
        let g = small_gate(true);
        let c_prev = Vector::from(vec![1.0, 2.0]);
        // neuron 1: dot 3.0 + bias 0.1 + peephole 0.2*2.0 = 3.5, identity activation
        let y = g.finish_neuron(1, 3.0, Some(&c_prev));
        assert!((y - 3.5).abs() < 1e-6);
        // Without cell state the peephole term is skipped.
        let y = g.finish_neuron(1, 3.0, None);
        assert!((y - 3.1).abs() < 1e-6);
    }

    #[test]
    fn evaluate_routes_through_evaluator() {
        let g = small_gate(false);
        let x = Vector::from(vec![1.0, 2.0]);
        let h = Vector::from(vec![2.0, 2.0]);
        let mut eval = ExactEvaluator::new();
        let out = g
            .evaluate(
                GateId::new(0, 0, GateKind::Input),
                0,
                &x,
                &h,
                None,
                &mut eval,
            )
            .unwrap();
        // neuron 0: 1.0*1 + 0.5*2 = 2.0 + bias 0 = 2.0
        assert!((out[0] - 2.0).abs() < 1e-6);
        // neuron 1: 2.0 + 1.0 + bias 0.1
        assert!((out[1] - 3.1).abs() < 1e-6);
    }

    #[test]
    fn evaluate_rejects_wrong_widths() {
        let g = small_gate(false);
        let mut eval = ExactEvaluator::new();
        let id = GateId::new(0, 0, GateKind::Input);
        let bad_x = Vector::from(vec![1.0]);
        let h = Vector::from(vec![1.0, 1.0]);
        assert!(matches!(
            g.evaluate(id, 0, &bad_x, &h, None, &mut eval),
            Err(RnnError::InputSizeMismatch { .. })
        ));
        let x = Vector::from(vec![1.0, 1.0]);
        let bad_h = Vector::from(vec![1.0]);
        assert!(g.evaluate(id, 0, &x, &bad_h, None, &mut eval).is_err());
    }

    #[test]
    fn gate_kind_lists_and_names() {
        assert_eq!(GateKind::LSTM.len(), 4);
        assert_eq!(GateKind::GRU.len(), 3);
        assert_eq!(GateKind::Forget.name(), "forget");
        assert_eq!(GateKind::Update.name(), "update");
    }

    #[test]
    fn gate_id_equality_and_hash() {
        use std::collections::HashSet;
        let a = GateId::new(1, 0, GateKind::Input);
        let b = GateId::new(1, 0, GateKind::Input);
        let c = GateId::new(1, 1, GateKind::Input);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: HashSet<GateId> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
