//! `energy`: the paper's energy claim tracked alongside measured
//! wall-clock speedups.
//!
//! Figures 17–19 regenerate the paper's per-figure artefacts; this
//! experiment is the repository's own regression view of the same
//! pipeline: for each Table 1 network it deploys the BNN predictor at
//! the paper's 2% accuracy-loss budget, then reports side by side
//!
//! * the *measured* software wall-clock speedup of the memoized run
//!   over the exact run (this workspace's CPU implementation, timed
//!   with deterministic sequential scheduling), and
//! * the *simulated* E-PUR+BM speedup, energy savings, per-sequence
//!   energy and average power from `nfm-accel`'s cycle/energy model of
//!   the full-size topology at the measured reuse fraction.
//!
//! The two columns answer different questions — the software speedup
//! is what this repo's serving stack gains today, the accelerator
//! numbers are the paper's hardware claim — and keeping them in one
//! table makes any drift between the functional reuse measurement and
//! the modeled savings visible per PR.

use std::time::Instant;

use crate::experiments::hw::{evaluate, mean};
use crate::harness::EvalConfig;
use crate::report::{ExperimentReport, TableReport};
use nfm_core::BnnMemoConfig;
use nfm_serve::MemoizedRunner;
use nfm_workloads::Workload;

/// Accuracy-loss budget the operating points target (the paper's
/// headline 2%).
const LOSS_BUDGET: f64 = 2.0;

/// Timed repetitions of each functional run; the minimum is reported
/// to suppress scheduler noise.
const TIMING_PASSES: usize = 3;

/// Measures the best-of-N wall-clock seconds of one runner over a
/// workload (deterministic sequential scheduling, so exact and
/// memoized runs see identical orchestration).
fn best_seconds(make_runner: impl Fn() -> MemoizedRunner, workload: &Workload) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TIMING_PASSES {
        let runner = make_runner().sequential();
        let start = Instant::now();
        runner
            .run(workload)
            .expect("workload already ran during scoring; timing rerun cannot fail");
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Regenerates the energy-vs-wallclock regression table.
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("Energy: E-PUR+BM accelerator model vs measured software wall-clock");
    let results = match evaluate(config, &[LOSS_BUDGET]) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Energy experiment failed: {e}");
            return report;
        }
    };
    let mut table = TableReport::new(
        format!("Operating points at {LOSS_BUDGET:.0}% accuracy-loss budget"),
        vec![
            "Network",
            "Threshold",
            "Reuse (%)",
            "SW speedup (measured)",
            "Accel speedup (sim)",
            "Energy savings (%)",
            "Energy/seq (mJ)",
            "Avg power (W)",
        ],
    );
    let mut sw_speedups = Vec::new();
    let mut accel_speedups = Vec::new();
    let mut savings_all = Vec::new();
    for nh in &results {
        let point = &nh.points[0];
        let workload = nh.run.workload();
        let exact_s = best_seconds(MemoizedRunner::exact, workload);
        let threshold = point.operating_point.threshold;
        let memo_s = best_seconds(
            || MemoizedRunner::bnn(BnnMemoConfig::with_threshold(threshold)),
            workload,
        );
        let sw_speedup = if memo_s > 0.0 { exact_s / memo_s } else { 0.0 };
        let accel_speedup = point.comparison.speedup();
        let savings = point.comparison.energy_savings() * 100.0;
        let sequences = config.sequences.max(1) as f64;
        let energy_per_seq_mj = point.comparison.memoized.total_energy_joules() / sequences * 1e3;
        let power = point.comparison.memoized.average_power_watts();
        sw_speedups.push(sw_speedup);
        accel_speedups.push(accel_speedup);
        savings_all.push(savings);
        table.push_row(vec![
            nh.run.spec().id.to_string(),
            format!("{threshold:.3}"),
            format!("{:.1}", point.operating_point.reuse * 100.0),
            format!("{sw_speedup:.2}x"),
            format!("{accel_speedup:.2}x"),
            format!("{savings:.1}"),
            format!("{energy_per_seq_mj:.3}"),
            format!("{power:.2}"),
        ]);
    }
    table.push_row(vec![
        "Average".into(),
        String::new(),
        String::new(),
        format!("{:.2}x", mean(&sw_speedups)),
        format!("{:.2}x", mean(&accel_speedups)),
        format!("{:.1}", mean(&savings_all)),
        String::new(),
        String::new(),
    ]);
    table.push_note(
        "SW speedup: measured best-of-3 wall-clock of this workspace's memoized \
         run vs its exact run (sequential scheduling, functional scale); values \
         below 1 mean the predictor overhead exceeds the skipped MACs on this \
         CPU at this scale — the hardware FMU is what makes the skip free.",
    );
    table.push_note(
        "Accel columns: nfm-accel cycle/energy model of the full-size Table 1 \
         topology at the measured reuse.  Paper averages at 2% loss: 25.5% \
         energy savings, 1.4x speedup.",
    );
    report.tables.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_report_has_one_row_per_network_plus_average() {
        let r = run(&EvalConfig::smoke());
        assert_eq!(r.tables.len(), 1);
        let table = &r.tables[0];
        assert_eq!(table.rows.len(), 5);
        assert_eq!(table.rows[4][0], "Average");
        for row in &table.rows[..4] {
            let reuse: f64 = row[2].parse().unwrap();
            assert!((0.0..=100.0).contains(&reuse));
            let sw: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(sw > 0.0, "measured speedup must be positive");
            let accel: f64 = row[4].trim_end_matches('x').parse().unwrap();
            // At near-zero reuse (smoke operating points) the FMU check
            // overhead can leave the modeled speedup slightly below 1.
            assert!(accel > 0.0);
            let energy: f64 = row[6].parse().unwrap();
            assert!(energy > 0.0);
            let power: f64 = row[7].parse().unwrap();
            assert!(power > 0.0);
        }
    }
}
