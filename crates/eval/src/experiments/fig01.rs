//! Figure 1: accuracy loss and computation reuse versus the relative
//! output-error threshold, using the oracle predictor.

use crate::harness::{EvalConfig, NetworkRun};
use crate::report::{ExperimentReport, Series};

/// Regenerates Figure 1: for every network, an oracle-predictor threshold
/// sweep producing the accuracy-loss curve and the computation-reuse
/// curve.
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Figure 1: accuracy loss and computation reuse vs threshold (oracle predictor)",
    );
    let runs = match NetworkRun::all(config) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Figure 1 failed: {e}");
            return report;
        }
    };
    for run in &runs {
        let spec = run.spec();
        let sweep = run.sweep_oracle(config.threshold_steps);
        let mut loss = Series::new(
            format!("{} / {}", spec.id, spec.accuracy.loss_label()),
            "threshold",
            spec.accuracy.loss_label(),
        );
        let mut reuse = Series::new(
            format!("{} / Computation Reuse (%)", spec.id),
            "threshold",
            "Computation Reuse (%)",
        );
        for point in &sweep {
            loss.push(point.threshold as f64, point.loss);
            reuse.push(point.threshold as f64, point.reuse * 100.0);
        }
        report.series.push(loss);
        report.series.push(reuse);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_two_curves_per_network_and_reuse_is_monotone() {
        let r = run(&EvalConfig::smoke());
        assert_eq!(r.series.len(), 8);
        for s in r.series.iter().filter(|s| s.label.contains("Reuse")) {
            assert!(
                s.is_non_decreasing(1e-6),
                "reuse curve must grow with threshold: {}",
                s.label
            );
            // At threshold zero the oracle reuses only exactly repeated
            // outputs, so reuse starts near zero.
            assert!(s.points[0].1 < 20.0);
        }
        for s in r.series.iter().filter(|s| s.label.contains("Loss")) {
            assert!(s.points.iter().all(|&(_, y)| y >= 0.0));
        }
    }
}
