//! Figure 11: computation reuse with and without the throttling
//! mechanism, at 1% and 2% accuracy loss.

use crate::experiments::hw::mean;
use crate::harness::{EvalConfig, NetworkRun};
use crate::report::{ExperimentReport, TableReport};

/// Regenerates Figure 11: for every network and for 1% / 2% accuracy-loss
/// budgets, the reuse achieved by the BNN predictor with and without
/// accumulating relative differences across consecutive reuses.
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Figure 11: computation reuse with and without the throttling mechanism",
    );
    let runs = match NetworkRun::all(config) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Figure 11 failed: {e}");
            return report;
        }
    };
    let mut table = TableReport::new(
        "Reuse (%) at fixed accuracy loss",
        vec![
            "Network",
            "1% loss, no throttling",
            "1% loss, throttling",
            "2% loss, no throttling",
            "2% loss, throttling",
        ],
    );
    let mut with_1 = Vec::new();
    let mut without_1 = Vec::new();
    for run in &runs {
        let p1_no = run.operating_point(1.0, config.threshold_steps, false);
        let p1_yes = run.operating_point(1.0, config.threshold_steps, true);
        let p2_no = run.operating_point(2.0, config.threshold_steps, false);
        let p2_yes = run.operating_point(2.0, config.threshold_steps, true);
        without_1.push(p1_no.reuse * 100.0);
        with_1.push(p1_yes.reuse * 100.0);
        table.push_row(vec![
            run.spec().id.to_string(),
            format!("{:.1}", p1_no.reuse * 100.0),
            format!("{:.1}", p1_yes.reuse * 100.0),
            format!("{:.1}", p2_no.reuse * 100.0),
            format!("{:.1}", p2_yes.reuse * 100.0),
        ]);
    }
    table.push_row(vec![
        "Average".into(),
        format!("{:.1}", mean(&without_1)),
        format!("{:.1}", mean(&with_1)),
        String::from("-"),
        String::from("-"),
    ]);
    table.push_note(
        "The paper reports that throttling buys ~5 extra points of reuse at equal accuracy; the \
         mechanism constrains how long a stale value may be reused, letting larger thresholds \
         stay within the loss budget.",
    );
    report.tables.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_reports_all_networks_plus_average() {
        let r = run(&EvalConfig::smoke());
        let table = &r.tables[0];
        assert_eq!(table.rows.len(), 5);
        assert_eq!(table.rows[4][0], "Average");
        for row in &table.rows[..4] {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!((0.0..=100.0).contains(&v));
            }
        }
    }
}
