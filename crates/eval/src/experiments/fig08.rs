//! Figure 8: histogram of per-neuron BNN/FP correlation factors.

use crate::harness::{EvalConfig, NetworkRun};
use crate::report::{ExperimentReport, Series, TableReport};
use nfm_bnn::{BinaryNetwork, CorrelationProbe};
use nfm_tensor::stats::Histogram;

/// Regenerates Figure 8: for every network, the distribution of
/// per-neuron correlation factors between binarized and full-precision
/// outputs, plus the fraction of neurons above R = 0.8 (the paper quotes
/// 85% for EESEN, IMDB and DeepSpeech).
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("Figure 8: per-neuron correlation between BNN and full precision");
    let runs = match NetworkRun::all(config) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Figure 8 failed: {e}");
            return report;
        }
    };
    let mut summary = TableReport::new(
        "Correlation summary",
        vec![
            "Network",
            "Median R",
            "Neurons with R > 0.8 (%)",
            "Neurons with R > 0.5 (%)",
        ],
    );
    for run in &runs {
        let spec = run.spec();
        let mut probe = CorrelationProbe::new(BinaryNetwork::mirror(run.workload().network()));
        for seq in run.workload().sequences() {
            let _ = run
                .workload()
                .network()
                .run(seq, &mut probe)
                .expect("correlation probe run");
        }
        let correlations = probe.per_neuron_correlations();
        if correlations.is_empty() {
            continue;
        }
        let mut hist = Histogram::new(-1.0, 1.0, 20).expect("valid histogram bounds");
        hist.extend(correlations.iter().copied());
        let mut series = Series::new(
            format!("{} correlation histogram", spec.id),
            "R factor (bin centre)",
            "Percentage of Neurons (%)",
        );
        for (i, fraction) in hist.fractions().iter().enumerate() {
            let (lo, hi) = hist.bin_bounds(i);
            series.push(((lo + hi) / 2.0) as f64, *fraction as f64 * 100.0);
        }
        report.series.push(series);

        let above = |t: f32| {
            correlations.iter().filter(|&&r| r > t).count() as f64 / correlations.len() as f64
                * 100.0
        };
        let mut sorted = correlations.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = sorted[sorted.len() / 2];
        summary.push_row(vec![
            spec.id.to_string(),
            format!("{median:.2}"),
            format!("{:.1}", above(0.8)),
            format!("{:.1}", above(0.5)),
        ]);
    }
    summary.push_note(
        "Paper: 85% of neurons above R=0.8 for EESEN/IMDB/DeepSpeech; MNMT mostly above 0.5.",
    );
    report.tables.push(summary);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_histograms_cover_all_networks_and_skew_positive() {
        let r = run(&EvalConfig::smoke());
        assert_eq!(r.series.len(), 4);
        assert_eq!(r.tables[0].rows.len(), 4);
        for row in &r.tables[0].rows {
            let median: f64 = row[1].parse().unwrap();
            assert!(
                median > 0.0,
                "{}: median correlation should be positive",
                row[0]
            );
        }
        for s in &r.series {
            let total: f64 = s.points.iter().map(|&(_, y)| y).sum();
            assert!(total > 50.0, "histogram should cover most neurons");
        }
    }
}
