//! One module per table/figure of the paper's evaluation.

pub mod ablation;
pub mod energy;
pub mod fig01;
pub mod fig05;
pub mod fig07;
pub mod fig08;
pub mod fig11;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod frontier;
pub mod headline;
pub mod hw;
pub mod sensitivity;
pub mod table1;
pub mod table2;
