//! Table 2: configuration parameters of E-PUR and the memoization unit.

use crate::report::{ExperimentReport, TableReport};
use nfm_accel::{AreaModel, EpurConfig};

/// Regenerates Table 2: the accelerator and memoization-unit parameters
/// this reproduction simulates, plus the Section 5 area summary.
pub fn run() -> ExperimentReport {
    let config = EpurConfig::default();
    let area = AreaModel::default();
    let mut report = ExperimentReport::new("Table 2: configuration parameters");

    let mut epur = TableReport::new("E-PUR", vec!["Parameter", "Value"]);
    epur.push_row(vec![
        "Technology".into(),
        format!("{} nm", config.technology_nm),
    ]);
    epur.push_row(vec![
        "Frequency".into(),
        format!("{} MHz", config.frequency_hz / 1e6),
    ]);
    epur.push_row(vec![
        "Intermediate Memory".into(),
        format!("{} MiB", config.intermediate_memory_bytes / (1024 * 1024)),
    ]);
    epur.push_row(vec![
        "Weight Buffer".into(),
        format!("{} MiB per CU", config.weight_buffer_bytes / (1024 * 1024)),
    ]);
    epur.push_row(vec![
        "Input Buffer".into(),
        format!("{} KiB per CU", config.input_buffer_bytes / 1024),
    ]);
    epur.push_row(vec![
        "DPU Width".into(),
        format!("{} operations", config.dpu_width),
    ]);
    epur.push_row(vec![
        "Computation Units".into(),
        config.computation_units.to_string(),
    ]);
    report.tables.push(epur);

    let memo = config.memoization;
    let mut fmu = TableReport::new("Memoization Unit", vec!["Parameter", "Value"]);
    fmu.push_row(vec![
        "BDPU Width".into(),
        format!("{} bits", memo.bdpu_width_bits),
    ]);
    fmu.push_row(vec![
        "Latency".into(),
        format!("{} cycles", memo.latency_cycles),
    ]);
    fmu.push_row(vec![
        "Integer Width".into(),
        format!("{} bytes", memo.integer_width_bytes),
    ]);
    fmu.push_row(vec![
        "Memoization Buffer".into(),
        format!("{} KiB", memo.memo_buffer_bytes / 1024),
    ]);
    fmu.push_note(format!(
        "Area: E-PUR {:.1} mm2, E-PUR+BM {:.1} mm2 ({:.1}% overhead).",
        area.baseline_mm2(),
        area.with_memoization_mm2(),
        area.overhead_fraction() * 100.0
    ));
    report.tables.push(fmu);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reports_paper_parameters() {
        let text = run().to_string();
        assert!(text.contains("28 nm"));
        assert!(text.contains("500 MHz"));
        assert!(text.contains("6 MiB"));
        assert!(text.contains("2 MiB per CU"));
        assert!(text.contains("16 operations"));
        assert!(text.contains("2048 bits"));
        assert!(text.contains("5 cycles"));
        assert!(text.contains("8 KiB"));
        assert!(text.contains("64.6 mm2"));
        assert!(text.contains("66.8 mm2"));
    }
}
