//! Predictor ablation: BNN predictor vs the input-similarity strawman.
//!
//! Section 1 of the paper argues that predicting output similarity from
//! *input* similarity alone is not accurate, because small input changes
//! multiplied by large weights produce large output changes; the BNN
//! predictor folds the weights in at negligible cost.  This experiment
//! quantifies that argument: for each network it sweeps both predictors
//! and reports the accuracy loss at comparable levels of computation
//! reuse.

use crate::harness::{EvalConfig, NetworkRun};
use crate::report::{ExperimentReport, Series, TableReport};
use nfm_core::{InputSimilarityConfig, InputSimilarityEvaluator, ReuseStats};
use nfm_tensor::Vector;

/// Runs the input-similarity predictor over a workload at one threshold,
/// returning `(reuse, loss)`.
fn score_input_similarity(run: &NetworkRun, threshold: f32) -> (f64, f64) {
    let mut evaluator =
        InputSimilarityEvaluator::new(InputSimilarityConfig::with_threshold(threshold));
    let mut outputs: Vec<Vec<Vector>> = Vec::new();
    for seq in run.workload().sequences() {
        outputs.push(
            run.workload()
                .network()
                .run(seq, &mut evaluator)
                .expect("input-similarity run"),
        );
    }
    let stats: &ReuseStats = evaluator.stats();
    let loss = run
        .workload()
        .metric()
        .batch_loss(run.baseline_outputs(), &outputs);
    (stats.reuse_fraction(), loss)
}

/// Regenerates the predictor ablation.
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new("Ablation: BNN predictor vs input-similarity predictor");
    let runs = match NetworkRun::all(config) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Ablation failed: {e}");
            return report;
        }
    };
    let mut table = TableReport::new(
        "Accuracy loss at the operating point closest to 30% reuse",
        vec![
            "Network",
            "BNN reuse (%)",
            "BNN loss",
            "Input-sim reuse (%)",
            "Input-sim loss",
        ],
    );
    for run in &runs {
        let spec = run.spec();

        // Sweep both predictors.
        let bnn_points = run.sweep_bnn(config.threshold_steps, true);
        let mut input_series = Series::new(
            format!("{} / input-similarity predictor", spec.id),
            "Computation Reuse (%)",
            spec.accuracy.loss_label(),
        );
        let mut input_points = Vec::new();
        for threshold in run.oracle_thresholds(config.threshold_steps) {
            let (reuse, loss) = score_input_similarity(run, threshold);
            input_points.push((threshold, reuse, loss));
            input_series.push(reuse * 100.0, loss);
        }
        let mut bnn_series = Series::new(
            format!("{} / BNN predictor", spec.id),
            "Computation Reuse (%)",
            spec.accuracy.loss_label(),
        );
        for p in &bnn_points {
            bnn_series.push(p.reuse * 100.0, p.loss);
        }
        report.series.push(bnn_series);
        report.series.push(input_series);

        // Compare the points closest to 30% reuse (the paper's average
        // operating region).
        let target = 0.30;
        let closest_bnn = bnn_points
            .iter()
            .min_by(|a, b| {
                (a.reuse - target)
                    .abs()
                    .partial_cmp(&(b.reuse - target).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied();
        let closest_input = input_points
            .iter()
            .min_by(|a, b| {
                (a.1 - target)
                    .abs()
                    .partial_cmp(&(b.1 - target).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied();
        if let (Some(b), Some(i)) = (closest_bnn, closest_input) {
            table.push_row(vec![
                spec.id.to_string(),
                format!("{:.1}", b.reuse * 100.0),
                format!("{:.2}", b.loss),
                format!("{:.1}", i.1 * 100.0),
                format!("{:.2}", i.2),
            ]);
        }
    }
    table.push_note(
        "The paper's argument (Section 1) is that input similarity alone is unreliable because \
         small input changes multiplied by large trained weights cause large output changes. \
         On this reproduction's synthetic Xavier-initialised weights the weight magnitudes are \
         homogeneous, so the effect is muted — see EXPERIMENTS.md for the discussion.",
    );
    report.tables.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_compares_both_predictors_on_every_network() {
        let r = run(&EvalConfig::smoke());
        assert_eq!(r.series.len(), 8);
        assert_eq!(r.tables[0].rows.len(), 4);
        for row in &r.tables[0].rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v >= 0.0);
            }
        }
    }
}
