//! Shared functional→hardware pipeline used by Figures 17, 18, 19 and the
//! headline numbers.
//!
//! For every network and every accuracy-loss budget the pipeline:
//! 1. finds the deployable threshold with the BNN predictor (the
//!    Section 3.2.1 exploration) on the functional model,
//! 2. feeds the measured computation-reuse fraction into the E-PUR
//!    simulator configured with the *full-size* Table 1 topology,
//! 3. returns the paired baseline / memoized reports.

use crate::harness::{EvalConfig, NetworkRun, ScoredPoint};
use nfm_accel::{ComparisonReport, EpurConfig, EpurSimulator};

/// Hardware results for one network at one accuracy-loss budget.
#[derive(Debug, Clone)]
pub struct HardwarePoint {
    /// Accuracy-loss budget in percentage points (1, 2 or 3 in the paper).
    pub loss_budget: f64,
    /// The functional operating point (threshold, reuse, measured loss).
    pub operating_point: ScoredPoint,
    /// Baseline vs memoized accelerator reports.
    pub comparison: ComparisonReport,
}

/// Hardware results for one network across all requested loss budgets.
#[derive(Debug, Clone)]
pub struct NetworkHardware {
    /// The functional run the measurements came from.
    pub run: NetworkRun,
    /// One entry per loss budget, in the order requested.
    pub points: Vec<HardwarePoint>,
}

/// Runs the pipeline for all four networks and the given loss budgets.
///
/// # Errors
///
/// Propagates workload construction failures.
pub fn evaluate(config: &EvalConfig, loss_budgets: &[f64]) -> Result<Vec<NetworkHardware>, String> {
    let simulator = EpurSimulator::new(EpurConfig::default());
    let runs = NetworkRun::all(config)?;
    let mut out = Vec::with_capacity(runs.len());
    for run in runs {
        let shape = run.full_scale_shape();
        let timesteps = run.full_scale_timesteps(config);
        let sequences = config.sequences.max(1) as u64;
        let points = loss_budgets
            .iter()
            .map(|&budget| {
                let op = run.operating_point(budget, config.threshold_steps, true);
                let comparison = simulator.compare(&shape, timesteps, sequences, op.reuse);
                HardwarePoint {
                    loss_budget: budget,
                    operating_point: op,
                    comparison,
                }
            })
            .collect();
        out.push(NetworkHardware { run, points });
    }
    Ok(out)
}

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_produces_one_point_per_budget_per_network() {
        let results = evaluate(&EvalConfig::smoke(), &[1.0, 2.0]).unwrap();
        assert_eq!(results.len(), 4);
        for nh in &results {
            assert_eq!(nh.points.len(), 2);
            for p in &nh.points {
                assert!(p.operating_point.reuse >= 0.0);
                assert!(p.comparison.baseline.cycles > 0);
                assert!(p.comparison.memoized.cycles > 0);
                // Energy savings can be slightly negative at zero reuse but
                // must never exceed the reuse fraction itself.
                assert!(p.comparison.energy_savings() <= p.operating_point.reuse + 1e-9);
            }
        }
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
