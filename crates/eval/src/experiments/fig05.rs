//! Figure 5: relative change in neuron output between consecutive input
//! elements.

use crate::harness::{EvalConfig, NetworkRun};
use crate::report::{ExperimentReport, Series, TableReport};
use nfm_core::SimilarityProbe;
use nfm_tensor::stats::empirical_cdf;

/// Regenerates Figure 5: for every network, the distribution of relative
/// neuron-output changes between consecutive timesteps, presented as the
/// paper does (relative difference as a function of the cumulative
/// percentage of neuron-output transitions).
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Figure 5: relative change in neuron output between consecutive inputs",
    );
    let runs = match NetworkRun::all(config) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Figure 5 failed: {e}");
            return report;
        }
    };
    let mut summary = TableReport::new(
        "Output similarity summary",
        vec!["Network", "Mean change (%)", "Changes <= 10% (%)"],
    );
    for run in &runs {
        let spec = run.spec();
        let mut probe = SimilarityProbe::new();
        for seq in run.workload().sequences() {
            let _ = run
                .workload()
                .network()
                .run(seq, &mut probe)
                .expect("similarity probe run");
        }
        let changes = probe.relative_changes();
        if changes.is_empty() {
            continue;
        }
        let mut series = Series::new(
            format!("{} cumulative distribution", spec.id),
            "Cumulative % of neurons",
            "Relative Output Difference (%)",
        );
        if let Ok(cdf) = empirical_cdf(changes, 21) {
            for point in cdf {
                series.push(
                    point.fraction as f64 * 100.0,
                    (point.value as f64 * 100.0).min(100.0),
                );
            }
        }
        report.series.push(series);
        summary.push_row(vec![
            spec.id.to_string(),
            format!("{:.1}", probe.mean_relative_change().unwrap_or(0.0) * 100.0),
            format!("{:.1}", probe.fraction_below(0.10).unwrap_or(0.0) * 100.0),
        ]);
    }
    summary.push_note(
        "The paper reports ~23% average change and ~25% of transitions below 10% across its \
         trained models (Section 3.1.1).",
    );
    report.tables.push(summary);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_produces_monotone_cdfs_and_a_summary() {
        let r = run(&EvalConfig::smoke());
        assert_eq!(r.series.len(), 4);
        for s in &r.series {
            assert!(s.is_non_decreasing(1e-6), "a CDF must be non-decreasing");
            assert!(s.points.iter().all(|&(_, y)| (0.0..=100.0).contains(&y)));
        }
        assert_eq!(r.tables[0].rows.len(), 4);
    }
}
