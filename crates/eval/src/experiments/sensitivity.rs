//! Hardware sensitivity study: how the design parameters called out in
//! Table 2 (FMU latency, DPU width) move the headline speedup.
//!
//! The paper fixes the FMU latency at 5 cycles and the DPU width at 16
//! lanes; this ablation sweeps both to show how sensitive the speedup is
//! to those design choices (DESIGN.md lists it as an ablation bench).

use crate::harness::{shape_from_spec, EvalConfig};
use crate::report::{ExperimentReport, Series, TableReport};
use nfm_accel::{EpurConfig, EpurSimulator};
use nfm_workloads::{NetworkId, NetworkSpec};

/// Reuse levels representative of the paper's 1% / 2% / 3% loss budgets.
const REUSE_LEVELS: [f64; 3] = [0.242, 0.31, 0.40];

/// Regenerates the sensitivity study.
pub fn run(_config: &EvalConfig) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("Sensitivity: FMU latency and DPU width vs achievable speedup");
    let spec = NetworkSpec::of(NetworkId::Eesen);
    let shape = shape_from_spec(&spec);
    let timesteps = spec.typical_sequence_length as u64;

    // FMU latency sweep at the Table 2 DPU width.
    let mut latency_table = TableReport::new(
        "Speedup vs FMU latency (EESEN topology, DPU width 16)",
        vec![
            "FMU latency (cycles)",
            "24.2% reuse",
            "31% reuse",
            "40% reuse",
        ],
    );
    for latency in [1u64, 3, 5, 8, 12, 20] {
        let mut config = EpurConfig::default();
        config.memoization.latency_cycles = latency;
        let sim = EpurSimulator::new(config);
        let mut row = vec![latency.to_string()];
        for reuse in REUSE_LEVELS {
            let cmp = sim.compare(&shape, timesteps, 1, reuse);
            row.push(format!("{:.2}", cmp.speedup()));
        }
        latency_table.push_row(row);
    }
    latency_table.push_note("Table 2 uses 5 cycles; longer FMU latencies erode the speedup.");
    report.tables.push(latency_table);

    // DPU width sweep at the Table 2 FMU latency.
    let mut width_series = Series::new(
        "Speedup vs DPU width at 31% reuse (EESEN topology)",
        "DPU width (lanes)",
        "Speedup (x)",
    );
    let mut width_table = TableReport::new(
        "Speedup vs DPU width (EESEN topology, FMU latency 5)",
        vec![
            "DPU width",
            "Baseline cycles/step",
            "24.2% reuse",
            "31% reuse",
            "40% reuse",
        ],
    );
    for width in [8usize, 16, 32, 64] {
        let config = EpurConfig {
            dpu_width: width,
            ..EpurConfig::default()
        };
        let sim = EpurSimulator::new(config);
        let baseline_per_step = sim.timing_model().baseline_cycles_per_step(&shape);
        let mut row = vec![width.to_string(), baseline_per_step.to_string()];
        for reuse in REUSE_LEVELS {
            let cmp = sim.compare(&shape, timesteps, 1, reuse);
            row.push(format!("{:.2}", cmp.speedup()));
            if (reuse - 0.31).abs() < 1e-9 {
                width_series.push(width as f64, cmp.speedup());
            }
        }
        width_table.push_row(row);
    }
    width_table.push_note(
        "Wider DPUs shrink the full-precision evaluation time, so the fixed FMU latency weighs \
         more and the relative benefit of memoization drops — the same trend the paper notes for \
         small networks.",
    );
    report.tables.push(width_table);
    report.series.push(width_series);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_trends_match_expectations() {
        let r = run(&EvalConfig::smoke());
        // Speedup decreases as FMU latency grows (column for 31% reuse).
        let latencies = &r.tables[0];
        let speedups: Vec<f64> = latencies
            .rows
            .iter()
            .map(|row| row[2].parse().unwrap())
            .collect();
        assert!(speedups.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        // Speedup decreases as the DPU gets wider.
        let widths = &r.series[0];
        assert!(widths.points.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-9));
        // At the Table 2 design point the speedup is positive and > 1 for
        // paper-level reuse.
        let table2_row = &r.tables[0].rows[2];
        assert_eq!(table2_row[0], "5");
        assert!(table2_row[2].parse::<f64>().unwrap() > 1.0);
    }
}
