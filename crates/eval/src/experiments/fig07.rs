//! Figure 7: binarized versus full-precision neuron outputs for EESEN.

use crate::harness::{EvalConfig, NetworkRun};
use crate::report::{ExperimentReport, Series, TableReport};
use nfm_bnn::{BinaryNetwork, CorrelationProbe};
use nfm_workloads::NetworkId;

/// Regenerates Figure 7: the scatter of BNN outputs against
/// full-precision outputs for the EESEN network, and the pooled linear
/// correlation coefficient (the paper reports R = 0.96).
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("Figure 7: binarized vs full-precision neuron outputs (EESEN)");
    let run = match NetworkRun::build(NetworkId::Eesen, config) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Figure 7 failed: {e}");
            return report;
        }
    };
    let mut probe = CorrelationProbe::new(BinaryNetwork::mirror(run.workload().network()));
    for seq in run.workload().sequences() {
        let _ = run
            .workload()
            .network()
            .run(seq, &mut probe)
            .expect("correlation probe run");
    }
    let pooled = probe.pooled_correlation().unwrap_or(0.0);

    let mut table = TableReport::new("Correlation", vec!["Quantity", "Value"]);
    table.push_row(vec![
        "Correlation factor (R)".into(),
        format!("{pooled:.3}"),
    ]);
    table.push_row(vec![
        "Neurons sampled".into(),
        probe.neuron_count().to_string(),
    ]);
    table.push_row(vec![
        "Paired samples".into(),
        probe.paired_samples().len().to_string(),
    ]);
    table.push_note("The paper reports R = 0.96 for EESEN's trained model.");
    report.tables.push(table);

    // A down-sampled scatter so the report stays readable.
    let mut scatter = Series::new(
        "EESEN scatter (subsampled)",
        "Full-precision output",
        "Binarized output",
    );
    let samples = probe.paired_samples();
    let stride = (samples.len() / 200).max(1);
    for (fp, bnn) in samples.iter().step_by(stride) {
        scatter.push(*fp as f64, *bnn as f64);
    }
    report.series.push(scatter);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_finds_a_strong_positive_correlation() {
        let r = run(&EvalConfig::smoke());
        let value: f64 = r.tables[0].rows[0][1].parse().unwrap();
        // Untrained random networks at smoke scale correlate far less than
        // the paper's trained EESEN (R = 0.96); the qualitative claim is a
        // clearly positive pooled correlation.
        assert!(
            value > 0.3,
            "pooled BNN/FP correlation should be clearly positive, got {value}"
        );
        assert!(!r.series[0].points.is_empty());
        assert!(r.series[0].points.len() <= 250);
    }
}
