//! Table 1: the RNN networks used for the experiments.

use crate::harness::{EvalConfig, NetworkRun};
use crate::report::{ExperimentReport, TableReport};

/// Regenerates Table 1: the static network descriptions plus the
/// computation reuse this reproduction measures at a 1% accuracy-loss
/// budget (the paper's "Reuse" column).
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new("Table 1: RNN networks used for the experiments");
    let mut table = TableReport::new(
        "Workloads",
        vec![
            "Network",
            "App Domain",
            "Cell",
            "Layers",
            "Neurons",
            "Base Accuracy",
            "Paper Reuse",
            "Measured Reuse",
            "Dataset",
        ],
    );
    match NetworkRun::all(config) {
        Ok(runs) => {
            for run in &runs {
                let spec = run.spec();
                let op = run.operating_point(1.0, config.threshold_steps, true);
                table.push_row(vec![
                    spec.id.to_string(),
                    spec.app_domain.to_string(),
                    format!(
                        "{}{}",
                        if spec.direction == nfm_rnn::Direction::Bidirectional {
                            "Bi"
                        } else {
                            ""
                        },
                        spec.cell.name()
                    ),
                    spec.layers.to_string(),
                    spec.neurons.to_string(),
                    format!("{:.2}", spec.base_accuracy),
                    format!("{:.1}%", spec.paper_reuse_percent),
                    format!("{:.1}%", op.reuse * 100.0),
                    spec.dataset.to_string(),
                ]);
            }
        }
        Err(e) => table.push_note(format!("measurement failed: {e}")),
    }
    table.push_note(
        "Measured reuse uses the BNN predictor at the largest threshold whose accuracy-proxy \
         loss stays within 1% (Section 3.2.1), on synthetic stand-in data.",
    );
    table.push_note(format!(
        "Functional model scale = {:.2}, sequences = {}, threshold grid = {} points.",
        config.scale, config.sequences, config.threshold_steps
    ));
    report.tables.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_all_four_networks() {
        let r = run(&EvalConfig::smoke());
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.tables[0].rows.len(), 4);
        let text = r.to_string();
        assert!(text.contains("EESEN"));
        assert!(text.contains("DeepSpeech2"));
        assert!(text.contains("MNMT"));
        assert!(text.contains("IMDB Sentiment"));
        assert!(text.contains("BiLSTM"));
    }
}
