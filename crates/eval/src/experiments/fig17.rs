//! Figure 17: energy savings and computation reuse of E-PUR+BM.

use crate::experiments::hw::{evaluate, mean};
use crate::harness::EvalConfig;
use crate::report::{ExperimentReport, TableReport};

/// Regenerates Figure 17: for accuracy-loss budgets of 1%, 2% and 3%, the
/// energy savings and computation reuse of E-PUR+BM relative to the
/// baseline accelerator, per network and on average.
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("Figure 17: energy savings and computation reuse of E-PUR+BM");
    let budgets = [1.0, 2.0, 3.0];
    let results = match evaluate(config, &budgets) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Figure 17 failed: {e}");
            return report;
        }
    };
    for (i, &budget) in budgets.iter().enumerate() {
        let mut table = TableReport::new(
            format!("Accuracy loss budget {budget:.0}%"),
            vec!["Network", "Computation Reuse (%)", "Energy Savings (%)"],
        );
        let mut reuses = Vec::new();
        let mut savings = Vec::new();
        for nh in &results {
            let point = &nh.points[i];
            let reuse = point.operating_point.reuse * 100.0;
            let saving = point.comparison.energy_savings() * 100.0;
            reuses.push(reuse);
            savings.push(saving);
            table.push_row(vec![
                nh.run.spec().id.to_string(),
                format!("{reuse:.1}"),
                format!("{saving:.1}"),
            ]);
        }
        table.push_row(vec![
            "Average".into(),
            format!("{:.1}", mean(&reuses)),
            format!("{:.1}", mean(&savings)),
        ]);
        if (budget - 1.0).abs() < f64::EPSILON {
            table.push_note("Paper averages at 1% loss: 24.2% reuse, 18.5% energy savings.");
        }
        if (budget - 2.0).abs() < f64::EPSILON {
            table.push_note("Paper averages at 2% loss: 31% reuse, 25.5% energy savings.");
        }
        report.tables.push(table);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure17_has_three_budgets_with_averages() {
        let r = run(&EvalConfig::smoke());
        assert_eq!(r.tables.len(), 3);
        for table in &r.tables {
            assert_eq!(table.rows.len(), 5);
            assert_eq!(table.rows[4][0], "Average");
            for row in &table.rows {
                let reuse: f64 = row[1].parse().unwrap();
                let savings: f64 = row[2].parse().unwrap();
                assert!((0.0..=100.0).contains(&reuse));
                assert!(savings <= reuse + 1e-6, "savings cannot exceed reuse");
            }
        }
    }
}
