//! Figure 19: speedup of E-PUR+BM over the baseline.

use crate::experiments::hw::{evaluate, mean};
use crate::harness::EvalConfig;
use crate::report::{ExperimentReport, TableReport};

/// Regenerates Figure 19: the speedup of E-PUR+BM over E-PUR for
/// accuracy-loss budgets of 1%, 2% and 3%, per network and on average.
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new("Figure 19: speedup of E-PUR+BM over E-PUR");
    let budgets = [1.0, 2.0, 3.0];
    let results = match evaluate(config, &budgets) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Figure 19 failed: {e}");
            return report;
        }
    };
    let mut table = TableReport::new(
        "Speedup (x)",
        vec!["Network", "1% loss", "2% loss", "3% loss"],
    );
    let mut per_budget: Vec<Vec<f64>> = vec![Vec::new(); budgets.len()];
    for nh in &results {
        let mut row = vec![nh.run.spec().id.to_string()];
        for (i, point) in nh.points.iter().enumerate() {
            let speedup = point.comparison.speedup();
            per_budget[i].push(speedup);
            row.push(format!("{speedup:.2}"));
        }
        table.push_row(row);
    }
    table.push_row(vec![
        "Average".into(),
        format!("{:.2}", mean(&per_budget[0])),
        format!("{:.2}", mean(&per_budget[1])),
        format!("{:.2}", mean(&per_budget[2])),
    ]);
    table.push_note("Paper averages: 1.35x at 1% loss, 1.5x at 2%, 1.67x at 3%.");
    table.push_note(
        "Workloads with low reuse (e.g. DeepSpeech at 1%) show smaller speedups because every \
         neuron still pays the 5-cycle FMU latency.",
    );
    report.tables.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure19_speedups_are_positive_and_grow_with_the_budget() {
        let r = run(&EvalConfig::smoke());
        let table = &r.tables[0];
        assert_eq!(table.rows.len(), 5);
        let avg: Vec<f64> = table.rows[4][1..]
            .iter()
            .map(|c| c.parse().unwrap())
            .collect();
        assert!(avg.iter().all(|&s| s > 0.5));
        // A larger accuracy budget can only allow more reuse, hence at
        // least as much speedup.
        assert!(avg[2] + 1e-9 >= avg[0]);
    }
}
