//! Figure 16: computation reuse versus accuracy loss for the oracle and
//! BNN predictors.

use crate::harness::{EvalConfig, NetworkRun};
use crate::report::{ExperimentReport, Series};

/// Regenerates Figure 16: for every network, the (computation reuse,
/// accuracy loss) trade-off curves of the oracle predictor and the BNN
/// predictor.
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Figure 16: computation reuse vs accuracy loss, oracle and BNN predictors",
    );
    let runs = match NetworkRun::all(config) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Figure 16 failed: {e}");
            return report;
        }
    };
    for run in &runs {
        let spec = run.spec();
        let mut oracle = Series::new(
            format!("{} / Oracle predictor", spec.id),
            "Computation Reuse (%)",
            spec.accuracy.loss_label(),
        );
        for p in run.sweep_oracle(config.threshold_steps) {
            oracle.push(p.reuse * 100.0, p.loss);
        }
        let mut bnn = Series::new(
            format!("{} / Binary Network predictor", spec.id),
            "Computation Reuse (%)",
            spec.accuracy.loss_label(),
        );
        for p in run.sweep_bnn(config.threshold_steps, true) {
            bnn.push(p.reuse * 100.0, p.loss);
        }
        report.series.push(oracle);
        report.series.push(bnn);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure16_has_oracle_and_bnn_curves_per_network() {
        let r = run(&EvalConfig::smoke());
        assert_eq!(r.series.len(), 8);
        let oracle_curves = r
            .series
            .iter()
            .filter(|s| s.label.contains("Oracle"))
            .count();
        assert_eq!(oracle_curves, 4);
        for s in &r.series {
            assert!(!s.points.is_empty());
            // Reuse percentages on the x axis stay in range.
            assert!(s.points.iter().all(|&(x, _)| (0.0..=100.0).contains(&x)));
            assert!(s.points.iter().all(|&(_, y)| y >= 0.0));
        }
    }
}
