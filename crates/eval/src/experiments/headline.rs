//! The paper's headline averages (abstract / Section 5).

use crate::experiments::hw::{evaluate, mean};
use crate::harness::EvalConfig;
use crate::report::{ExperimentReport, TableReport};

/// Reproduces the headline claim: at a 1% accuracy-loss budget the
/// BNN-guided memoization scheme avoids >24.2% of computations, saves
/// 18.5% energy and speeds execution up by 1.35x on average.
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new("Headline: averages at 1% accuracy loss");
    let results = match evaluate(config, &[1.0]) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Headline failed: {e}");
            return report;
        }
    };
    let reuse: Vec<f64> = results
        .iter()
        .map(|nh| nh.points[0].operating_point.reuse * 100.0)
        .collect();
    let savings: Vec<f64> = results
        .iter()
        .map(|nh| nh.points[0].comparison.energy_savings() * 100.0)
        .collect();
    let speedup: Vec<f64> = results
        .iter()
        .map(|nh| nh.points[0].comparison.speedup())
        .collect();

    let mut table = TableReport::new(
        "Headline comparison",
        vec!["Metric", "Paper", "This reproduction"],
    );
    table.push_row(vec![
        "Computation reuse (%)".into(),
        "24.2".into(),
        format!("{:.1}", mean(&reuse)),
    ]);
    table.push_row(vec![
        "Energy savings (%)".into(),
        "18.5".into(),
        format!("{:.1}", mean(&savings)),
    ]);
    table.push_row(vec![
        "Speedup (x)".into(),
        "1.35".into(),
        format!("{:.2}", mean(&speedup)),
    ]);
    table.push_note(
        "Reproduction numbers use synthetic stand-in workloads and an analytical energy model; \
         the comparison targets the shape of the result (reuse > savings, speedup > 1, FMU \
         overhead small), not the absolute values.",
    );
    report.tables.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_produces_the_three_metrics() {
        let r = run(&EvalConfig::smoke());
        let table = &r.tables[0];
        assert_eq!(table.rows.len(), 3);
        let reuse: f64 = table.rows[0][2].parse().unwrap();
        let savings: f64 = table.rows[1][2].parse().unwrap();
        let speedup: f64 = table.rows[2][2].parse().unwrap();
        assert!((0.0..=100.0).contains(&reuse));
        assert!(savings <= reuse + 1e-6);
        assert!(speedup > 0.5);
    }
}
