//! The θ/accuracy/speedup frontier: a static threshold sweep against
//! the online adaptive controller (`nfm-control`), across input
//! regimes whose statistics drift.
//!
//! The paper picks θ offline on a validation set (Section 3.2.1); this
//! experiment shows what that costs under non-stationary traffic.  For
//! each regime (slow drift, bursty switches, long memory) it measures
//! every static θ of a sweep and one adaptive run against the same
//! accuracy SLO, reporting reuse (the speedup proxy — the paper's
//! speedup is monotone in reuse, see `fig19`) and the mean audited
//! error (the controller's own feedback signal, measured identically
//! for both policies).

use crate::harness::EvalConfig;
use crate::report::{ExperimentReport, Series, TableReport};
use nfm_bnn::BinaryNetwork;
use nfm_control::{AdaptivePredictor, ControllerConfig};
use nfm_core::{AuditConfig, BnnMemoConfig, BnnMemoEvaluator};
use nfm_rnn::{CellKind, DeepRnn, DeepRnnConfig};
use nfm_tensor::rng::DeterministicRng;
use nfm_tensor::Vector;
use nfm_workloads::{InputDomain, SequenceGenerator};
use std::sync::Arc;

/// Input width of the frontier networks (also the generator's feature
/// count).
const FEATURES: usize = 8;

/// Audit one in this many memo hits — denser than the serving default
/// so the controller gets feedback even at eval scales.
const AUDIT_PERIOD: u64 = 8;

/// One measured operating point on the frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Applied θ (static points) or the final mean per-layer θ (the
    /// adaptive point).
    pub theta: f32,
    /// Memo reuse fraction achieved, in `[0, 1]`.
    pub reuse: f64,
    /// Cumulative mean `|exact − cached|` over the audited hits.
    pub audit_error: f64,
}

/// The frontier of one input regime: the static sweep, the adaptive
/// run, and the SLO both were judged against.
#[derive(Debug, Clone)]
pub struct RegimeFrontier {
    /// Regime label ("drifting" / "bursty" / "long-memory").
    pub regime: &'static str,
    /// The accuracy SLO the adaptive controller targeted.
    pub slo: f64,
    /// Static sweep, in ascending θ.
    pub statics: Vec<FrontierPoint>,
    /// The adaptive run's aggregate point.
    pub adaptive: FrontierPoint,
    /// Final per-layer θ the controller settled on.
    pub adaptive_thetas: Vec<f32>,
}

impl RegimeFrontier {
    /// The PR's acceptance predicate: the adaptive run holds the SLO
    /// while the static θ matching its hit rate violates it, **or**
    /// the adaptive run reaches at least 95% of the best static reuse
    /// that stays within the SLO (at equal error semantics: the
    /// adaptive run itself within the SLO).
    pub fn adaptive_holds_frontier(&self) -> bool {
        let holds_slo = self.adaptive.audit_error <= self.slo;
        // The cheapest static at least as aggressive (reuse-wise) as
        // the adaptive run.
        let matching_static = self
            .statics
            .iter()
            .filter(|p| p.reuse >= self.adaptive.reuse)
            .min_by(|a, b| a.reuse.total_cmp(&b.reuse));
        let beats_matching = holds_slo && matching_static.is_some_and(|p| p.audit_error > self.slo);
        let best_static_within = self
            .statics
            .iter()
            .filter(|p| p.audit_error <= self.slo)
            .map(|p| p.reuse)
            .fold(0.0f64, f64::max);
        let matches_best = holds_slo && self.adaptive.reuse >= 0.95 * best_static_within;
        beats_matching || matches_best
    }
}

/// A small LSTM stack sized from the eval config (the frontier is
/// about traffic statistics, not Table 1 topologies, so one synthetic
/// network per regime keeps the sweep cheap).
fn network(config: &EvalConfig, seed: u64) -> DeepRnn {
    let hidden = ((96.0 * config.scale).round() as usize).max(4);
    let layers = config.max_layers.unwrap_or(2).clamp(1, 2);
    let mut rng = DeterministicRng::seed_from_u64(seed);
    DeepRnn::random(
        &DeepRnnConfig::new(CellKind::Lstm, FEATURES, hidden).layers(layers),
        &mut rng,
    )
    .expect("frontier topology is valid")
}

/// Log-spaced static sweep over `[0.05, 2.0]`.
fn sweep(steps: usize) -> Vec<f32> {
    let steps = steps.max(2);
    (0..steps)
        .map(|i| {
            let t = i as f32 / (steps - 1) as f32;
            0.05 * (2.0f32 / 0.05).powf(t)
        })
        .collect()
}

fn run_static(
    net: &DeepRnn,
    mirror: &Arc<BinaryNetwork>,
    theta: f32,
    audit: AuditConfig,
    sequences: &[Vec<Vector>],
) -> FrontierPoint {
    let mut evaluator =
        BnnMemoEvaluator::new(Arc::clone(mirror), BnnMemoConfig::with_threshold(theta))
            .with_audit(audit);
    for sequence in sequences {
        net.run(sequence, &mut evaluator)
            .expect("frontier static run");
    }
    FrontierPoint {
        theta,
        reuse: evaluator.stats().reuse_fraction(),
        audit_error: evaluator.audit_stats().mean_error().unwrap_or(0.0),
    }
}

fn run_adaptive(
    net: &DeepRnn,
    mirror: &Arc<BinaryNetwork>,
    slo: f64,
    seed: u64,
    sequences: &[Vec<Vector>],
) -> (FrontierPoint, Vec<f32>) {
    // Start conservative (below the sweep's midpoint) and converge
    // quickly: the controller approaches the SLO from the low-error
    // side, so the cumulative audited error stays within it.
    let config = ControllerConfig::new(slo)
        .audit_period(AUDIT_PERIOD)
        .min_audits_per_update(8)
        .initial_theta(0.1)
        .alpha(0.3)
        .gains(1.25, 0.6)
        .seed(seed);
    let predictor = AdaptivePredictor::new(Arc::clone(mirror), config);
    let mut evaluator = predictor.evaluator();
    for sequence in sequences {
        net.run(sequence, &mut evaluator)
            .expect("frontier adaptive run");
    }
    evaluator.flush();
    let reuse = evaluator.inner().stats().reuse_fraction();
    let snapshot = predictor.controller().snapshot();
    let thetas = snapshot.thresholds();
    let mean_theta = thetas.iter().copied().sum::<f32>() / thetas.len().max(1) as f32;
    (
        FrontierPoint {
            theta: mean_theta,
            reuse,
            audit_error: snapshot.mean_audited_error().unwrap_or(0.0),
        },
        thetas,
    )
}

/// An SLO that splits the static sweep: the (geometric) median of the
/// positive static audit errors, so some statics hold it and some
/// violate it.  Falls back to a fixed budget when the sweep audited
/// nothing (degenerate smoke scales).
fn pick_slo(statics: &[FrontierPoint]) -> f64 {
    let mut errors: Vec<f64> = statics
        .iter()
        .map(|p| p.audit_error)
        .filter(|e| *e > 0.0)
        .collect();
    errors.sort_by(f64::total_cmp);
    match errors.len() {
        0 => 0.05,
        n => (errors[(n - 1) / 2] * errors[n / 2]).sqrt().max(1e-6),
    }
}

/// Measures the full frontier of one input regime.
pub fn frontier_for_regime(
    config: &EvalConfig,
    regime: &'static str,
    domain: InputDomain,
    salt: u64,
) -> RegimeFrontier {
    let net = network(config, config.seed ^ (salt.wrapping_mul(0x9E37_79B9)));
    let mirror = Arc::new(BinaryNetwork::mirror(&net));
    let length = config.sequence_length.unwrap_or(60);
    let sequences = SequenceGenerator::new(domain, FEATURES, config.seed.wrapping_add(salt))
        .sequences(config.sequences, length);
    let audit = AuditConfig::new(AUDIT_PERIOD, config.seed);
    let statics: Vec<FrontierPoint> = sweep(config.threshold_steps)
        .into_iter()
        .map(|theta| run_static(&net, &mirror, theta, audit, &sequences))
        .collect();
    let slo = pick_slo(&statics);
    let (adaptive, adaptive_thetas) = run_adaptive(&net, &mirror, slo, config.seed, &sequences);
    RegimeFrontier {
        regime,
        slo,
        statics,
        adaptive,
        adaptive_thetas,
    }
}

/// The three regimes in display order.
fn regimes() -> [(&'static str, InputDomain); 3] {
    [
        ("drifting", InputDomain::drifting()),
        ("bursty", InputDomain::bursty()),
        ("long-memory", InputDomain::long_memory()),
    ]
}

/// Regenerates the θ/accuracy/speedup frontier: adaptive vs static
/// sweep per input regime.
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("Frontier: adaptive θ control vs static sweep under drift");
    let mut table = TableReport::new(
        "θ / audited error / reuse, per input regime",
        vec![
            "Regime",
            "Policy",
            "θ",
            "Reuse (%)",
            "Audited err",
            "SLO",
            "Holds SLO",
        ],
    );
    let mut held = 0usize;
    for (salt, (regime, domain)) in regimes().into_iter().enumerate() {
        let frontier = frontier_for_regime(config, regime, domain, salt as u64 + 1);
        let mut series = Series::new(
            format!("static frontier ({regime})"),
            "threshold",
            "reuse (%)",
        );
        for p in &frontier.statics {
            series.push(f64::from(p.theta), p.reuse * 100.0);
            table.push_row(vec![
                regime.to_string(),
                format!("static θ={:.3}", p.theta),
                format!("{:.3}", p.theta),
                format!("{:.1}", p.reuse * 100.0),
                format!("{:.5}", p.audit_error),
                format!("{:.5}", frontier.slo),
                if p.audit_error <= frontier.slo {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ]);
        }
        let a = &frontier.adaptive;
        table.push_row(vec![
            regime.to_string(),
            "adaptive".to_string(),
            format!("{:.3}", a.theta),
            format!("{:.1}", a.reuse * 100.0),
            format!("{:.5}", a.audit_error),
            format!("{:.5}", frontier.slo),
            if a.audit_error <= frontier.slo {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
        if frontier.adaptive_holds_frontier() {
            held += 1;
        }
        report.series.push(series);
    }
    table.push_note(
        "Reuse is the speedup proxy (the accelerator's speedup is monotone in reuse; see fig19). \
         The audited error is the controller's live feedback: a deterministic 1-in-N subsample \
         of memo hits also computed exactly.",
    );
    table.push_note(format!(
        "Adaptive held the frontier on {held}/3 regimes (within-SLO error while the \
         hit-rate-matching static violates it, or ≥95% of the best within-SLO static reuse)."
    ));
    report.tables.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Heavier than `EvalConfig::smoke` — the controller needs enough
    /// timesteps to converge — but still subsecond.
    fn test_config() -> EvalConfig {
        EvalConfig {
            scale: 0.08,
            sequences: 2,
            sequence_length: Some(120),
            max_layers: Some(2),
            threshold_steps: 5,
            seed: 2019,
        }
    }

    #[test]
    fn frontier_runs_at_smoke_scale() {
        let r = run(&EvalConfig::smoke());
        assert_eq!(r.series.len(), 3);
        // 3 regimes × (threshold_steps static rows + 1 adaptive row).
        assert_eq!(r.tables[0].rows.len(), 3 * (3 + 1));
    }

    #[test]
    fn adaptive_holds_the_frontier_on_drift() {
        // The PR's acceptance criterion, on the drifting regime.
        let frontier = frontier_for_regime(&test_config(), "drifting", InputDomain::drifting(), 1);
        assert!(
            frontier.adaptive.reuse > 0.0,
            "adaptive run produced no reuse"
        );
        assert!(
            frontier.adaptive_holds_frontier(),
            "adaptive missed the frontier: slo={} adaptive={:?} statics={:?}",
            frontier.slo,
            frontier.adaptive,
            frontier.statics
        );
    }

    #[test]
    fn static_sweep_reuse_is_monotone_in_theta() {
        let frontier = frontier_for_regime(&test_config(), "bursty", InputDomain::bursty(), 2);
        for pair in frontier.statics.windows(2) {
            assert!(
                pair[1].reuse >= pair[0].reuse - 1e-9,
                "larger θ must not reuse less: {pair:?}"
            );
        }
    }
}
