//! Figure 18: energy breakdown of E-PUR and E-PUR+BM.

use crate::experiments::hw::evaluate;
use crate::harness::EvalConfig;
use crate::report::{ExperimentReport, TableReport};

/// Regenerates Figure 18: the energy breakdown (scratch-pad memories,
/// pipeline operations, LPDDR4 and the FMU) of the baseline accelerator
/// and of E-PUR+BM at a 1% accuracy-loss budget, for every network.
pub fn run(config: &EvalConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new("Figure 18: energy breakdown for E-PUR and E-PUR+BM");
    let results = match evaluate(config, &[1.0]) {
        Ok(r) => r,
        Err(e) => {
            report.heading = format!("Figure 18 failed: {e}");
            return report;
        }
    };
    let mut table = TableReport::new(
        "Normalised energy breakdown (fraction of the E-PUR baseline total)",
        vec![
            "Network",
            "Config",
            "Scratchpad",
            "Operations",
            "LPDDR4",
            "FMU",
            "Total",
        ],
    );
    for nh in &results {
        let point = &nh.points[0];
        let base_total = point.comparison.baseline.total_energy_joules();
        for (label, rep) in [
            ("E-PUR", &point.comparison.baseline),
            ("E-PUR+BM", &point.comparison.memoized),
        ] {
            let e = &rep.energy;
            table.push_row(vec![
                nh.run.spec().id.to_string(),
                label.to_string(),
                format!("{:.3}", e.scratchpad_j / base_total),
                format!("{:.3}", e.operations_j / base_total),
                format!("{:.3}", e.dram_j / base_total),
                format!("{:.3}", e.fmu_j / base_total),
                format!("{:.3}", e.total() / base_total),
            ]);
        }
    }
    table.push_note(
        "Scratch-pad memories dominate (weight fetches are ~80% of accelerator energy, \
         Section 3.1); memoization shrinks the scratch-pad and operations bars while LPDDR4 \
         is unaffected and the FMU adds a negligible overhead.",
    );
    report.tables.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure18_breakdown_shapes_match_the_paper() {
        let r = run(&EvalConfig::smoke());
        let table = &r.tables[0];
        assert_eq!(table.rows.len(), 8);
        for pair in table.rows.chunks(2) {
            let base: Vec<f64> = pair[0][2..].iter().map(|c| c.parse().unwrap()).collect();
            let memo: Vec<f64> = pair[1][2..].iter().map(|c| c.parse().unwrap()).collect();
            // Baseline total is 1.0 by construction; memoized total is lower
            // or roughly equal (at tiny reuse the FMU overhead can offset).
            assert!((base[4] - 1.0).abs() < 1e-6);
            assert!(memo[4] <= base[4] * 1.05);
            // Scratch-pad dominates the baseline.
            assert!(base[0] > base[1]);
            // The baseline has no FMU energy; the memoized design has some.
            assert_eq!(base[3], 0.0);
            assert!(memo[3] >= 0.0);
            // DRAM energy is identical in both configurations.
            assert!((base[2] - memo[2]).abs() < 1e-6);
        }
    }
}
