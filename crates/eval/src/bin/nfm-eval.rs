//! Command-line entry point: regenerate any table or figure of the paper.
//!
//! ```text
//! nfm-eval <experiment> [--full] [--scale S] [--sequences N] [--length L] [--steps K] [--seed X]
//! nfm-eval all [--full]
//! ```

use nfm_eval::{run_experiment, EvalConfig, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return;
    }
    let experiment = args[0].clone();
    let mut config = EvalConfig::fast();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => config = EvalConfig::full(),
            "--scale" => {
                config.scale = next_value(&args, &mut i, "--scale");
            }
            "--sequences" => {
                config.sequences = next_value(&args, &mut i, "--sequences");
            }
            "--length" => {
                config.sequence_length = Some(next_value(&args, &mut i, "--length"));
            }
            "--steps" => {
                config.threshold_steps = next_value(&args, &mut i, "--steps");
            }
            "--seed" => {
                config.seed = next_value(&args, &mut i, "--seed");
            }
            other => {
                eprintln!("unknown option: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let experiments: Vec<&str> = if experiment == "all" {
        EXPERIMENTS.to_vec()
    } else {
        vec![experiment.as_str()]
    };
    for name in experiments {
        match run_experiment(name, &config) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn next_value<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
}

fn print_usage() {
    println!("Usage: nfm-eval <experiment|all> [options]");
    println!("Experiments: {}", EXPERIMENTS.join(", "));
    println!("Options:");
    println!("  --full           faithful Table 1 topologies (slow; use release mode)");
    println!("  --scale S        topology scale factor (default 0.1)");
    println!("  --sequences N    input sequences per workload (default 2)");
    println!("  --length L       timesteps per sequence (default 30)");
    println!("  --steps K        threshold sweep points (default 7)");
    println!("  --seed X         RNG seed (default 2019)");
}
