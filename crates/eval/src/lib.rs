//! # nfm-eval
//!
//! The evaluation harness: one experiment per table and figure of the
//! paper's evaluation (Sections 3.1, 4 and 5), each regenerating the
//! corresponding rows/series from the systems built in this workspace.
//!
//! | Experiment | Paper artefact | Module |
//! |------------|----------------|--------|
//! | `table1`   | Table 1 — workload networks | [`experiments::table1`] |
//! | `table2`   | Table 2 — accelerator configuration | [`experiments::table2`] |
//! | `fig1`     | Figure 1 — oracle threshold sweep | [`experiments::fig01`] |
//! | `fig5`     | Figure 5 — consecutive-output similarity CDF | [`experiments::fig05`] |
//! | `fig7`     | Figure 7 — BNN vs FP output correlation (EESEN) | [`experiments::fig07`] |
//! | `fig8`     | Figure 8 — per-neuron correlation histogram | [`experiments::fig08`] |
//! | `fig11`    | Figure 11 — throttling ablation | [`experiments::fig11`] |
//! | `fig16`    | Figure 16 — oracle vs BNN predictor | [`experiments::fig16`] |
//! | `fig17`    | Figure 17 — energy savings & reuse | [`experiments::fig17`] |
//! | `fig18`    | Figure 18 — energy breakdown | [`experiments::fig18`] |
//! | `fig19`    | Figure 19 — speedup | [`experiments::fig19`] |
//! | `headline` | Abstract / Section 5 averages | [`experiments::headline`] |
//! | `ablation` | BNN vs input-similarity predictor (Section 1 argument) | [`experiments::ablation`] |
//! | `sensitivity` | FMU-latency / DPU-width design sweep | [`experiments::sensitivity`] |
//! | `energy`   | E-PUR+BM energy model vs measured wall-clock speedup | [`experiments::energy`] |
//! | `frontier` | Adaptive θ control vs static sweep under drift (Section 3.2.1 extension) | [`experiments::frontier`] |
//!
//! Run any of them with `cargo run -p nfm-eval -- <experiment> [--full]`.
//!
//! The functional (accuracy/reuse) measurements run on scaled-down
//! instances of the Table 1 networks by default ([`EvalConfig::fast`]);
//! the accelerator timing/energy results always use the *full-size*
//! Table 1 topologies, with the reuse fraction measured functionally —
//! the same two-stage methodology as the paper (TensorFlow for accuracy,
//! the cycle-level simulator for time/energy).

pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{EvalConfig, NetworkRun, ScoredPoint};
pub use report::{Series, TableReport};

/// Names of every runnable experiment, as accepted by the `nfm-eval`
/// binary and produced by [`run_experiment`].
pub const EXPERIMENTS: [&str; 16] = [
    "table1",
    "table2",
    "fig1",
    "fig5",
    "fig7",
    "fig8",
    "fig11",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "headline",
    "ablation",
    "sensitivity",
    "energy",
    "frontier",
];

/// Runs an experiment by name and returns its printable report.
///
/// # Errors
///
/// Returns an error string for unknown experiment names or if the
/// underlying workload construction fails.
pub fn run_experiment(name: &str, config: &EvalConfig) -> Result<String, String> {
    match name {
        "table1" => Ok(experiments::table1::run(config).to_string()),
        "table2" => Ok(experiments::table2::run().to_string()),
        "fig1" => Ok(experiments::fig01::run(config).to_string()),
        "fig5" => Ok(experiments::fig05::run(config).to_string()),
        "fig7" => Ok(experiments::fig07::run(config).to_string()),
        "fig8" => Ok(experiments::fig08::run(config).to_string()),
        "fig11" => Ok(experiments::fig11::run(config).to_string()),
        "fig16" => Ok(experiments::fig16::run(config).to_string()),
        "fig17" => Ok(experiments::fig17::run(config).to_string()),
        "fig18" => Ok(experiments::fig18::run(config).to_string()),
        "fig19" => Ok(experiments::fig19::run(config).to_string()),
        "headline" => Ok(experiments::headline::run(config).to_string()),
        "ablation" => Ok(experiments::ablation::run(config).to_string()),
        "sensitivity" => Ok(experiments::sensitivity::run(config).to_string()),
        "energy" => Ok(experiments::energy::run(config).to_string()),
        "frontier" => Ok(experiments::frontier::run(config).to_string()),
        other => Err(format!(
            "unknown experiment '{other}'; expected one of {EXPERIMENTS:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_rejected() {
        let err = run_experiment("fig99", &EvalConfig::smoke()).unwrap_err();
        assert!(err.contains("unknown experiment"));
    }

    #[test]
    fn experiment_list_matches_dispatch() {
        // Every listed experiment must dispatch successfully on the
        // smoke-test configuration (tiny models, tiny sweeps).
        let config = EvalConfig::smoke();
        for name in EXPERIMENTS {
            let out = run_experiment(name, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!out.is_empty(), "{name} produced empty output");
        }
    }
}
