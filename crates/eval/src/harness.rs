//! Shared machinery: building workloads, scoring thresholds, and mapping
//! functional results onto the full-size accelerator model.

use nfm_accel::{LayerShape, NetworkShape};
use nfm_core::{BnnMemoConfig, OracleMemoConfig, ThresholdExplorer, ThresholdPoint};
use nfm_serve::MemoizedRunner;
use nfm_tensor::Vector;
use nfm_workloads::{NetworkId, NetworkSpec, Workload, WorkloadBuilder};

/// Controls how heavy the functional measurements are.
///
/// * [`EvalConfig::fast`] — the default for the CLI and benches: the
///   Table 1 topologies scaled down (~10%), a couple of short sequences,
///   coarse threshold sweeps.  Finishes in seconds.
/// * [`EvalConfig::full`] — the faithful Table 1 topologies and typical
///   sequence lengths.  Slow; intended for release-mode runs.
/// * [`EvalConfig::smoke`] — minimal sizes for unit tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// Topology scale factor passed to the workload builder.
    pub scale: f32,
    /// Number of input sequences per workload.
    pub sequences: usize,
    /// Length of each input sequence (None = the spec's typical length).
    pub sequence_length: Option<usize>,
    /// Cap on the number of recurrent layers (None = the spec's depth).
    pub max_layers: Option<usize>,
    /// Number of points in threshold sweeps.
    pub threshold_steps: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl EvalConfig {
    /// Fast preset used by the CLI by default and by the benches.
    pub fn fast() -> Self {
        EvalConfig {
            scale: 0.1,
            sequences: 2,
            sequence_length: Some(30),
            max_layers: Some(4),
            threshold_steps: 7,
            seed: 2019,
        }
    }

    /// Minimal preset for unit tests.
    pub fn smoke() -> Self {
        EvalConfig {
            scale: 0.04,
            sequences: 1,
            sequence_length: Some(10),
            max_layers: Some(2),
            threshold_steps: 3,
            seed: 7,
        }
    }

    /// Faithful Table 1 topologies (slow; run in release mode).
    pub fn full() -> Self {
        EvalConfig {
            scale: 1.0,
            sequences: 4,
            sequence_length: None,
            max_layers: None,
            threshold_steps: 13,
            seed: 2019,
        }
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::fast()
    }
}

/// One measured operating point of a predictor on a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPoint {
    /// The threshold `θ` that was applied.
    pub threshold: f32,
    /// Computation reuse achieved, in `[0, 1]`.
    pub reuse: f64,
    /// Accuracy loss versus the exact baseline, in percentage points.
    pub loss: f64,
}

impl From<ThresholdPoint> for ScoredPoint {
    fn from(p: ThresholdPoint) -> Self {
        ScoredPoint {
            threshold: p.threshold,
            reuse: p.reuse,
            loss: p.accuracy_loss,
        }
    }
}

/// A workload instantiated under an [`EvalConfig`], with its exact
/// (non-memoized) baseline outputs already computed.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    spec: NetworkSpec,
    workload: Workload,
    baseline_outputs: Vec<Vec<Vector>>,
}

impl NetworkRun {
    /// Builds the run for one network.
    ///
    /// # Errors
    ///
    /// Returns a human-readable error if workload construction or the
    /// baseline inference fails.
    pub fn build(id: NetworkId, config: &EvalConfig) -> Result<Self, String> {
        let spec = NetworkSpec::of(id);
        let mut builder = WorkloadBuilder::new(id)
            .scale(config.scale)
            .sequences(config.sequences)
            .seed(config.seed);
        if let Some(len) = config.sequence_length {
            builder = builder.sequence_length(len);
        }
        if let Some(cap) = config.max_layers {
            builder = builder.layers(spec.layers.min(cap));
        }
        let workload = builder.build().map_err(|e| format!("{id}: {e}"))?;
        let baseline = MemoizedRunner::exact()
            .run(&workload)
            .map_err(|e| format!("{id}: baseline run failed: {e}"))?;
        Ok(NetworkRun {
            spec,
            workload,
            baseline_outputs: baseline.outputs,
        })
    }

    /// Builds the runs for all four Table 1 networks.
    ///
    /// # Errors
    ///
    /// Propagates the first construction failure.
    pub fn all(config: &EvalConfig) -> Result<Vec<Self>, String> {
        NetworkId::ALL
            .iter()
            .map(|&id| NetworkRun::build(id, config))
            .collect()
    }

    /// The Table 1 specification.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// The instantiated (possibly scaled-down) workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The exact baseline outputs.
    pub fn baseline_outputs(&self) -> &[Vec<Vector>] {
        &self.baseline_outputs
    }

    /// Scores one run of the BNN predictor at a threshold.
    pub fn score_bnn(&self, config: BnnMemoConfig) -> ScoredPoint {
        let outcome = MemoizedRunner::bnn(config)
            .run(&self.workload)
            .expect("workload already ran exactly; memoized run cannot fail");
        ScoredPoint {
            threshold: config.threshold,
            reuse: outcome.reuse_fraction(),
            loss: self
                .workload
                .metric()
                .batch_loss(&self.baseline_outputs, &outcome.outputs),
        }
    }

    /// Scores one run of the oracle predictor at a threshold.
    pub fn score_oracle(&self, threshold: f32) -> ScoredPoint {
        let outcome = MemoizedRunner::oracle(OracleMemoConfig::with_threshold(threshold))
            .run(&self.workload)
            .expect("workload already ran exactly; oracle run cannot fail");
        ScoredPoint {
            threshold,
            reuse: outcome.reuse_fraction(),
            loss: self
                .workload
                .metric()
                .batch_loss(&self.baseline_outputs, &outcome.outputs),
        }
    }

    /// The oracle threshold sweep grid for this network (Figure 1 uses
    /// 0–0.6 for speech, up to 1.0 for classification).
    pub fn oracle_thresholds(&self, steps: usize) -> Vec<f32> {
        linspace(self.spec.threshold_sweep_max(), steps)
    }

    /// The BNN threshold sweep grid.  The BNN predictor accumulates
    /// relative differences over consecutive reuses, so the useful range
    /// extends a little beyond the oracle's.
    pub fn bnn_thresholds(&self, steps: usize) -> Vec<f32> {
        linspace(self.spec.threshold_sweep_max() * 2.0, steps)
    }

    /// Sweeps the oracle predictor over its threshold grid.
    pub fn sweep_oracle(&self, steps: usize) -> Vec<ScoredPoint> {
        self.oracle_thresholds(steps)
            .into_iter()
            .map(|t| self.score_oracle(t))
            .collect()
    }

    /// Sweeps the BNN predictor over its threshold grid.
    pub fn sweep_bnn(&self, steps: usize, throttle: bool) -> Vec<ScoredPoint> {
        self.bnn_thresholds(steps)
            .into_iter()
            .map(|t| {
                let mut cfg = BnnMemoConfig::with_threshold(t);
                if !throttle {
                    cfg = cfg.without_throttling();
                }
                self.score_bnn(cfg)
            })
            .collect()
    }

    /// Finds the operating point the paper would deploy: the highest
    /// reuse whose accuracy loss stays within `max_loss` percentage
    /// points (Section 3.2.1).  Falls back to the most conservative
    /// threshold if nothing qualifies.
    pub fn operating_point(&self, max_loss: f64, steps: usize, throttle: bool) -> ScoredPoint {
        let explorer = ThresholdExplorer::new(self.bnn_thresholds(steps));
        let points = explorer.sweep(|threshold| {
            let mut cfg = BnnMemoConfig::with_threshold(threshold);
            if !throttle {
                cfg = cfg.without_throttling();
            }
            let scored = self.score_bnn(cfg);
            (scored.reuse, scored.loss)
        });
        match ThresholdExplorer::select(&points, max_loss) {
            Some(p) => p.into(),
            None => points
                .first()
                .copied()
                .map(ScoredPoint::from)
                .unwrap_or(ScoredPoint {
                    threshold: 0.0,
                    reuse: 0.0,
                    loss: 0.0,
                }),
        }
    }

    /// The *full-size* Table 1 topology of this network, used by the
    /// accelerator model regardless of the functional scale factor.
    pub fn full_scale_shape(&self) -> NetworkShape {
        shape_from_spec(&self.spec)
    }

    /// Total timesteps the accelerator model simulates: the spec's
    /// typical sequence length times the configured sequence count.
    pub fn full_scale_timesteps(&self, config: &EvalConfig) -> u64 {
        (self.spec.typical_sequence_length * config.sequences.max(1)) as u64
    }
}

/// Builds the full-size accelerator-facing shape of a Table 1 network.
pub fn shape_from_spec(spec: &NetworkSpec) -> NetworkShape {
    let directions = spec.direction.cells_per_layer();
    let mut layers = Vec::with_capacity(spec.layers);
    let mut input = spec.input_features;
    for _ in 0..spec.layers {
        layers.push(LayerShape {
            neurons: spec.neurons,
            input_size: input,
            hidden_size: spec.neurons,
            gates: spec.cell.gates(),
            directions,
        });
        input = spec.neurons * directions;
    }
    NetworkShape::new(layers)
}

fn linspace(max: f32, steps: usize) -> Vec<f32> {
    let steps = steps.max(2);
    (0..steps)
        .map(|i| max * i as f32 / (steps - 1) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_config_builds_all_networks() {
        let runs = NetworkRun::all(&EvalConfig::smoke()).unwrap();
        assert_eq!(runs.len(), 4);
        for run in &runs {
            assert_eq!(run.baseline_outputs().len(), 1);
            assert!(!run.baseline_outputs()[0].is_empty());
        }
    }

    #[test]
    fn scoring_produces_sane_numbers() {
        let run = NetworkRun::build(NetworkId::ImdbSentiment, &EvalConfig::smoke()).unwrap();
        let exactish = run.score_bnn(BnnMemoConfig::with_threshold(-1.0));
        assert_eq!(exactish.reuse, 0.0);
        assert_eq!(exactish.loss, 0.0);
        let generous = run.score_bnn(BnnMemoConfig::with_threshold(4.0));
        assert!(generous.reuse > 0.0);
        assert!(generous.loss >= 0.0);
        let oracle = run.score_oracle(0.5);
        assert!(oracle.reuse >= 0.0 && oracle.reuse <= 1.0);
    }

    #[test]
    fn threshold_grids_follow_the_spec() {
        let run = NetworkRun::build(NetworkId::Eesen, &EvalConfig::smoke()).unwrap();
        let grid = run.oracle_thresholds(4);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0], 0.0);
        assert!((grid[3] - 0.6).abs() < 1e-6);
        let bnn = run.bnn_thresholds(4);
        assert!((bnn[3] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn operating_point_respects_the_loss_budget() {
        let run = NetworkRun::build(NetworkId::ImdbSentiment, &EvalConfig::smoke()).unwrap();
        let p = run.operating_point(50.0, 3, true);
        assert!(p.loss <= 50.0);
        assert!(p.reuse >= 0.0);
    }

    #[test]
    fn full_scale_shape_matches_table1() {
        let run = NetworkRun::build(NetworkId::Eesen, &EvalConfig::smoke()).unwrap();
        let shape = run.full_scale_shape();
        assert_eq!(shape.layers().len(), 10);
        assert_eq!(shape.layers()[0].neurons, 320);
        assert_eq!(shape.layers()[0].directions, 2);
        assert_eq!(shape.layers()[1].input_size, 640);
        assert_eq!(
            shape.neurons_per_step(),
            NetworkSpec::of(NetworkId::Eesen).neuron_evaluations_per_step()
        );
        let steps = run.full_scale_timesteps(&EvalConfig::smoke());
        assert_eq!(steps, 200);
    }
}
