//! Plain-text report types shared by all experiments.

use std::fmt;

/// A named series of `(x, y)` points — one curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (e.g. "EESEN / Oracle predictor").
    pub label: String,
    /// Axis label of `x`.
    pub x_label: String,
    /// Axis label of `y`.
    pub y_label: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(
        label: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Series {
            label: label.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Returns `true` if `y` never decreases as `x` increases (within a
    /// small tolerance); used by tests on reuse-vs-threshold curves.
    pub fn is_non_decreasing(&self, tolerance: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 + tolerance >= w[0].1)
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.label)?;
        writeln!(f, "# {:>12} {:>14}", self.x_label, self.y_label)?;
        for (x, y) in &self.points {
            writeln!(f, "{x:>14.4} {y:>14.4}")?;
        }
        Ok(())
    }
}

/// A simple column-aligned table report.
#[derive(Debug, Clone, PartialEq)]
pub struct TableReport {
    /// Table title (e.g. "Table 1: RNN networks used for the experiments").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row should have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed after the table.
    pub notes: Vec<String>,
}

impl TableReport {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: Vec<&str>) -> Self {
        TableReport {
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        widths
    }
}

impl fmt::Display for TableReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let widths = self.column_widths();
        let render = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", render(row))?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// A full experiment report: any number of tables and series plus a
/// heading, rendered as plain text.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentReport {
    /// Heading line identifying the paper artefact being regenerated.
    pub heading: String,
    /// Tables in display order.
    pub tables: Vec<TableReport>,
    /// Series in display order.
    pub series: Vec<Series>,
}

impl ExperimentReport {
    /// Creates a report with a heading.
    pub fn new(heading: impl Into<String>) -> Self {
        ExperimentReport {
            heading: heading.into(),
            tables: Vec::new(),
            series: Vec::new(),
        }
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== {} ====", self.heading)?;
        for t in &self.tables {
            writeln!(f, "{t}")?;
        }
        for s in &self.series {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_display_and_monotonicity() {
        let mut s = Series::new("EESEN", "threshold", "reuse (%)");
        s.push(0.0, 0.0);
        s.push(0.3, 25.0);
        s.push(0.5, 40.0);
        assert!(s.is_non_decreasing(1e-9));
        let text = s.to_string();
        assert!(text.contains("EESEN"));
        assert!(text.contains("threshold"));
        assert!(text.lines().count() >= 5);
        s.push(0.6, 10.0);
        assert!(!s.is_non_decreasing(1e-9));
    }

    #[test]
    fn table_display_aligns_columns() {
        let mut t = TableReport::new("Table 1", vec!["Network", "Reuse"]);
        t.push_row(vec!["EESEN".into(), "30.5%".into()]);
        t.push_row(vec!["IMDB Sentiment".into(), "36.2%".into()]);
        t.push_note("measured on synthetic data");
        let text = t.to_string();
        assert!(text.contains("== Table 1 =="));
        assert!(text.contains("note: measured"));
        // Both rows render the second column at the same offset.
        let lines: Vec<&str> = text.lines().collect();
        // line 0: title, 1: headers, 2: separator, 3: first row
        assert!(lines[3].contains("EESEN"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = TableReport::new("x", vec!["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn experiment_report_combines_parts() {
        let mut r = ExperimentReport::new("Figure 1");
        r.tables.push(TableReport::new("t", vec!["c"]));
        let mut s = Series::new("curve", "x", "y");
        s.push(1.0, 2.0);
        r.series.push(s);
        let text = r.to_string();
        assert!(text.contains("==== Figure 1 ===="));
        assert!(text.contains("curve"));
    }
}
