//! # nfm — Neuron-Level Fuzzy Memoization in RNNs
//!
//! Umbrella crate for the reproduction of *"Neuron-Level Fuzzy Memoization
//! in RNNs"* (Silfa, Dot, Arnau, González — MICRO-52, 2019).
//!
//! It re-exports the workspace crates under a single namespace so
//! examples, integration tests and downstream users can write
//! `use nfm::memo::...` without tracking individual crate names:
//!
//! * [`tensor`] — dense linear algebra, activations, statistics.
//! * [`rnn`] — LSTM/GRU cells, layers and deep networks.
//! * [`bnn`] — binarized (bitwise) network substrate.
//! * [`memo`] — the paper's contribution: neuron-level fuzzy memoization.
//! * [`control`] — online adaptive threshold controller holding an
//!   accuracy SLO from deterministic audit sampling.
//! * [`serve`] — the request-oriented serving engine (multi-model
//!   registry, per-request options, deadlines, unified lane scheduler
//!   with mid-wave refill, cross-context lane borrowing and worker
//!   work stealing) and the `MemoizedRunner` workload façade built on
//!   it.
//! * [`net`] — the TCP serving surface: length-prefixed wire
//!   protocol, nonblocking poll-loop server, client.
//! * [`loadgen`] — closed/open-loop traffic generator with latency
//!   histograms for the serving surface.
//! * [`accel`] — the E-PUR accelerator simulator (timing/energy/area).
//! * [`workloads`] — the four Table 1 RNNs with synthetic data.
//! * [`eval`] — per-figure/per-table experiment harness.
//!
//! # Quickstart
//!
//! ```
//! use nfm::workloads::{NetworkId, WorkloadBuilder};
//! use nfm::memo::{BnnMemoConfig, MemoizedRunner};
//!
//! // Build a scaled-down IMDB sentiment workload and run it with the
//! // BNN-predictor memoization scheme at threshold 0.05.
//! let workload = WorkloadBuilder::new(NetworkId::ImdbSentiment)
//!     .scale(0.125)
//!     .sequences(2)
//!     .sequence_length(16)
//!     .seed(7)
//!     .build()
//!     .expect("workload");
//! let mut runner = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(0.05));
//! let outcome = runner.run(&workload).expect("run");
//! assert!(outcome.reuse_fraction() >= 0.0);
//! ```

pub use nfm_accel as accel;
pub use nfm_bnn as bnn;
pub use nfm_control as control;
pub use nfm_eval as eval;
pub use nfm_loadgen as loadgen;
pub use nfm_net as net;
pub use nfm_rnn as rnn;
pub use nfm_serve as serve;
pub use nfm_tensor as tensor;
pub use nfm_workloads as workloads;

/// The memoization surface: the `nfm-core` evaluators and the open
/// [`Predictor`](nfm_core::Predictor) factory abstraction, plus the
/// workload-level runner API, which now lives in [`serve`] (the runner
/// is a thin wrapper over the request engine) but is re-exported here
/// so `nfm::memo::MemoizedRunner` keeps working.
pub mod memo {
    pub use nfm_core::*;
    pub use nfm_serve::{InferenceWorkload, MemoizedRunner, RunOutcome};
}
