//! # nfm — Neuron-Level Fuzzy Memoization in RNNs
//!
//! Umbrella crate for the reproduction of *"Neuron-Level Fuzzy Memoization
//! in RNNs"* (Silfa, Dot, Arnau, González — MICRO-52, 2019).
//!
//! It re-exports the workspace crates under a single namespace so
//! examples, integration tests and downstream users can write
//! `use nfm::memo::...` without tracking individual crate names.
//!
//! # Public surface
//!
//! Every type has exactly **one canonical path**; the table is the
//! contract (aliases that predate it are deprecated re-exports, kept
//! for one release):
//!
//! | Path | What lives there |
//! |---|---|
//! | [`tensor`] | dense linear algebra, activations, statistics, kernel backends, per-shape autotune cache |
//! | [`rnn`] | LSTM/GRU cells, layers, deep networks, lane schedulers |
//! | [`bnn`] | binarized (bitwise) network substrate |
//! | [`memo`] | the paper's contribution: neuron-level fuzzy memoization (evaluators, configs, the open [`Predictor`](nfm_core::Predictor) abstraction) |
//! | [`model`] | versioned binary model artifacts: zero-copy aligned save/load, prebuilt BNN mirrors |
//! | [`control`] | online adaptive threshold controller holding an accuracy SLO |
//! | [`serve`] | the request-oriented serving engine: multi-model registry, per-request options, deadlines, hot swaps with canary routing, and the `MemoizedRunner` workload façade |
//! | [`net`] | the TCP serving surface: length-prefixed wire protocol, poll-loop server, client |
//! | [`loadgen`] | closed/open-loop traffic generator with latency histograms |
//! | [`accel`] | the E-PUR accelerator simulator (timing/energy/area) |
//! | [`workloads`] | the four Table 1 RNNs with synthetic data |
//! | [`eval`] | per-figure/per-table experiment harness |
//!
//! Types re-exported by more than one crate resolve as follows:
//!
//! * Workload-level running ([`MemoizedRunner`](serve::MemoizedRunner),
//!   [`InferenceWorkload`](serve::InferenceWorkload),
//!   [`RunOutcome`](serve::RunOutcome)) is canonical in [`serve`] — the
//!   runner is a thin wrapper over the request engine.  The `memo::`
//!   aliases are deprecated.
//! * The predictor abstraction ([`Predictor`](nfm_core::Predictor) and
//!   the built-in implementations) is canonical in [`memo`]; [`serve`]
//!   re-exports it because the engine is where implementations plug in.
//!
//! # Quickstart
//!
//! ```
//! use nfm::workloads::{NetworkId, WorkloadBuilder};
//! use nfm::memo::BnnMemoConfig;
//! use nfm::serve::MemoizedRunner;
//!
//! // Build a scaled-down IMDB sentiment workload and run it with the
//! // BNN-predictor memoization scheme at threshold 0.05.
//! let workload = WorkloadBuilder::new(NetworkId::ImdbSentiment)
//!     .scale(0.125)
//!     .sequences(2)
//!     .sequence_length(16)
//!     .seed(7)
//!     .build()
//!     .expect("workload");
//! let mut runner = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(0.05));
//! let outcome = runner.run(&workload).expect("run");
//! assert!(outcome.reuse_fraction() >= 0.0);
//! ```

pub use nfm_accel as accel;
pub use nfm_bnn as bnn;
pub use nfm_control as control;
pub use nfm_eval as eval;
pub use nfm_loadgen as loadgen;
pub use nfm_model as model;
pub use nfm_net as net;
pub use nfm_rnn as rnn;
pub use nfm_serve as serve;
pub use nfm_tensor as tensor;
pub use nfm_workloads as workloads;

/// The memoization surface: the `nfm-core` evaluators and the open
/// [`Predictor`](nfm_core::Predictor) factory abstraction.
pub mod memo {
    pub use nfm_core::*;

    #[deprecated(
        since = "0.1.0",
        note = "canonical path is `nfm::serve::InferenceWorkload`"
    )]
    pub use nfm_serve::InferenceWorkload;
    #[deprecated(
        since = "0.1.0",
        note = "canonical path is `nfm::serve::MemoizedRunner`"
    )]
    pub use nfm_serve::MemoizedRunner;
    #[deprecated(since = "0.1.0", note = "canonical path is `nfm::serve::RunOutcome`")]
    pub use nfm_serve::RunOutcome;
}
