#!/usr/bin/env bash
# Records the inference-throughput perf baseline into BENCH_inference.json.
#
# Usage: scripts/bench_snapshot.sh [output-file]
#
# Runs the `inference_throughput` bench target (release/bench profile)
# and writes the medians + derived speedups as JSON.  Commit the
# refreshed file so every optimisation PR is judged against the
# recorded baseline.
#
# The build is deliberately *portable* (no `-C target-cpu=native`):
# SIMD now comes from the runtime-dispatched kernels in
# `nfm_tensor::kernels`, which is exactly what a deployed binary runs.
# The snapshot records which dispatch tier was active in its `meta`
# object (`kernel_backend` / `popcount_backend`); force a tier with
# `NFM_KERNEL_BACKEND=scalar|avx2|avx512|neon` to record a comparison
# snapshot.  Set RUSTFLAGS explicitly if you want native codegen on top.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_inference.json}"
case "$OUT" in
  /*) : ;;
  # cargo runs bench binaries from the package directory, so resolve the
  # output path against the workspace root before handing it over.
  *) OUT="$(pwd)/$OUT" ;;
esac

export RUSTFLAGS="${RUSTFLAGS:-}"
cargo bench -p nfm-bench --bench inference_throughput -- --save "$OUT"

echo
echo "Snapshot written to $OUT (meta: $(grep -o '"meta": {[^}]*}' "$OUT")):"
cat "$OUT"
