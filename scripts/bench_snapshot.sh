#!/usr/bin/env bash
# Records the inference-throughput perf baseline into BENCH_inference.json.
#
# Usage: scripts/bench_snapshot.sh [output-file]
#
# Runs the `inference_throughput` bench target (release/bench profile,
# native CPU features) and writes the medians + derived speedups as JSON.
# Commit the refreshed file so every optimisation PR is judged against
# the recorded baseline.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_inference.json}"
case "$OUT" in
  /*) : ;;
  # cargo runs bench binaries from the package directory, so resolve the
  # output path against the workspace root before handing it over.
  *) OUT="$(pwd)/$OUT" ;;
esac

export RUSTFLAGS="${RUSTFLAGS:--C target-cpu=native}"
cargo bench -p nfm-bench --bench inference_throughput -- --save "$OUT"

echo
echo "Snapshot written to $OUT:"
cat "$OUT"
