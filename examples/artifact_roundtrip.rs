//! Cross-process model-artifact round trip.
//!
//! Two modes, driven by CI's kernel-matrix job:
//!
//! * `save <path>` — build the deterministic demo network, write it
//!   (plus its prebuilt BNN mirror) as a versioned artifact, then run
//!   memoized inference from the in-memory weights and print every
//!   output as IEEE-754 bit patterns.
//! * `load <path>` — load the artifact back (zero-copy arena views),
//!   run the identical inference from the *loaded* weights, and print
//!   the same lines.
//!
//! CI saves under `NFM_KERNEL_BACKEND=scalar` and loads under the
//! matrix backend, then diffs the two transcripts: the artifact
//! round-trip and the kernel dispatch tier must both be bit-exact, so
//! the outputs are required to be byte-for-byte identical.

use std::env;
use std::fs;
use std::process::ExitCode;

use nfm::bnn::BinaryNetwork;
use nfm::memo::BnnMemoConfig;
use nfm::model::{load_from_slice, save_to_vec};
use nfm::rnn::{CellKind, DeepRnn, DeepRnnConfig};
use nfm::serve::{Engine, EngineBuilder, InferenceRequest, ModelRegistry, PredictorKind};
use nfm::tensor::rng::DeterministicRng;
use nfm::tensor::Vector;

const FEATURES: usize = 6;
const HIDDEN: usize = 10;
const SEQUENCES: usize = 4;
const SEQUENCE_LEN: usize = 12;

fn demo_network() -> DeepRnn {
    let mut rng = DeterministicRng::seed_from_u64(0x5eed);
    DeepRnn::random(
        &DeepRnnConfig::new(CellKind::Gru, FEATURES, HIDDEN),
        &mut rng,
    )
    .expect("demo network builds")
}

fn demo_sequences() -> Vec<Vec<Vector>> {
    let mut rng = DeterministicRng::seed_from_u64(0xfeed);
    (0..SEQUENCES)
        .map(|_| {
            (0..SEQUENCE_LEN)
                .map(|_| Vector::from_fn(FEATURES, |_| rng.uniform(-1.0, 1.0)))
                .collect()
        })
        .collect()
}

/// Run every demo sequence through a single-worker memoizing engine
/// built on `net` and print each output vector as hex bit patterns.
/// One worker keeps execution order (and therefore memo state)
/// deterministic, so the transcript is stable across runs.
fn run_and_print(net: DeepRnn) {
    let mut registry = ModelRegistry::new();
    registry
        .register("demo", net, PredictorKind::Exact)
        .expect("register");
    registry
        .add_predictor(
            "demo",
            PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.25)),
        )
        .expect("add bnn predictor");
    let engine: Engine = EngineBuilder::from_registry(registry)
        .workers(1)
        .build()
        .expect("engine builds");

    for (i, seq) in demo_sequences().into_iter().enumerate() {
        engine
            .submit(InferenceRequest::new(i as u64, seq))
            .expect("submit");
    }
    let mut responses = engine.drain();
    responses.sort_by_key(|r| r.id);
    for r in &responses {
        let last = r.outputs.last().expect("nonempty output");
        let bits: Vec<String> = last
            .as_slice()
            .iter()
            .map(|v| format!("{:08x}", v.to_bits()))
            .collect();
        println!("id={} out={}", r.id, bits.join(","));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [mode, path] if mode == "save" || mode == "load" => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: artifact_roundtrip <save|load> <path>");
            return ExitCode::FAILURE;
        }
    };

    match mode {
        "save" => {
            let net = demo_network();
            let mirror = BinaryNetwork::mirror(&net);
            let bytes = save_to_vec(&net, Some(&mirror)).expect("artifact encodes");
            fs::write(path, &bytes).expect("artifact writes");
            eprintln!("saved {} artifact bytes to {path}", bytes.len());
            run_and_print(net);
        }
        "load" => {
            let bytes = fs::read(path).expect("artifact reads");
            let loaded = load_from_slice(&bytes).expect("artifact decodes");
            assert!(loaded.mirror.is_some(), "artifact carries the BNN mirror");
            assert_eq!(loaded.network, demo_network(), "weights round-trip exactly");
            eprintln!(
                "loaded {} artifact bytes ({} arena bytes) from {path}",
                bytes.len(),
                loaded.arena_bytes()
            );
            run_and_print(loaded.network);
        }
        _ => unreachable!(),
    }
    ExitCode::SUCCESS
}
