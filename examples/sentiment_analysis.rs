//! Sentiment-classification scenario (IMDB style): pick the deployable
//! threshold with the Section 3.2.1 exploration, then verify the chosen
//! operating point on held-out sequences.
//!
//! ```text
//! cargo run --release --example sentiment_analysis
//! ```

use nfm::memo::{BnnMemoConfig, MemoizedRunner, ThresholdExplorer};
use nfm::workloads::{NetworkId, WorkloadBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "Training set": the sequences used to calibrate the threshold.
    let calibration = WorkloadBuilder::new(NetworkId::ImdbSentiment)
        .scale(0.25)
        .sequences(6)
        .sequence_length(40)
        .seed(100)
        .build()?;
    // "Test set": a different seed, so different reviews.
    let test = WorkloadBuilder::new(NetworkId::ImdbSentiment)
        .scale(0.25)
        .sequences(6)
        .sequence_length(40)
        .seed(200)
        .build()?;

    let calibration_baseline = MemoizedRunner::exact().run(&calibration)?;

    // Explore thresholds on the calibration set (Section 3.2.1): highest
    // reuse with less than 1% accuracy loss.
    let explorer = ThresholdExplorer::linspace(2.0, 11);
    let chosen = explorer
        .explore(
            |theta| {
                let outcome = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(theta))
                    .run(&calibration)
                    .expect("calibration run");
                let loss = calibration
                    .metric()
                    .batch_loss(&calibration_baseline.outputs, &outcome.outputs);
                (outcome.reuse_fraction(), loss)
            },
            1.0,
        )
        .expect("at least the zero threshold qualifies");

    println!(
        "chosen threshold θ = {:.2} (calibration reuse {:.1}%, accuracy loss {:.2}%)",
        chosen.threshold,
        chosen.reuse * 100.0,
        chosen.accuracy_loss
    );

    // Apply the chosen threshold to the test set.
    let test_baseline = MemoizedRunner::exact().run(&test)?;
    let deployed =
        MemoizedRunner::bnn(BnnMemoConfig::with_threshold(chosen.threshold)).run(&test)?;
    let test_loss = test
        .metric()
        .batch_loss(&test_baseline.outputs, &deployed.outputs);
    println!(
        "test set: reuse {:.1}%, accuracy loss {:.2}%",
        deployed.reuse_percent(),
        test_loss
    );
    println!("\nThe threshold is chosen once per model and reused at inference time,");
    println!("exactly as the paper does with its training sets.");
    Ok(())
}
