//! Speech recognition scenario (DeepSpeech2 / EESEN style): sweep the
//! memoization threshold on an audio-like workload and print the
//! reuse-vs-WER-loss trade-off, i.e. a miniature of Figures 1 and 16.
//!
//! ```text
//! cargo run --release --example speech_recognition
//! ```

use nfm::memo::{BnnMemoConfig, MemoizedRunner, OracleMemoConfig};
use nfm::workloads::{NetworkId, WorkloadBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadBuilder::new(NetworkId::DeepSpeech2)
        .scale(0.1)
        .layers(3)
        .sequences(2)
        .sequence_length(60)
        .seed(7)
        .build()?;
    println!(
        "DeepSpeech2-like workload: {} GRU layers, {} neurons, {} audio frames/sequence",
        workload.network().layers().len(),
        workload.network().layers()[0].forward_cell().hidden_size(),
        workload.sequences()[0].len()
    );

    let baseline = MemoizedRunner::exact().run(&workload)?;

    println!(
        "\n{:>10} {:>18} {:>18} {:>14} {:>14}",
        "threshold", "oracle reuse (%)", "bnn reuse (%)", "oracle WER loss", "bnn WER loss"
    );
    for theta in [0.0_f32, 0.1, 0.2, 0.3, 0.4, 0.6] {
        let oracle =
            MemoizedRunner::oracle(OracleMemoConfig::with_threshold(theta)).run(&workload)?;
        let bnn = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(theta)).run(&workload)?;
        let oracle_loss = workload
            .metric()
            .batch_loss(&baseline.outputs, &oracle.outputs);
        let bnn_loss = workload
            .metric()
            .batch_loss(&baseline.outputs, &bnn.outputs);
        println!(
            "{theta:>10.2} {:>18.1} {:>18.1} {:>14.2} {:>14.2}",
            oracle.reuse_percent(),
            bnn.reuse_percent(),
            oracle_loss,
            bnn_loss
        );
    }

    println!("\nAudio frames change slowly between timesteps, so even modest thresholds");
    println!("let the BNN predictor skip a large share of the full-precision dot products.");
    Ok(())
}
