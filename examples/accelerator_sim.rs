//! Accelerator scenario: measure the computation reuse functionally, then
//! project it onto the full-size E-PUR+BM accelerator to obtain the
//! paper's energy/speedup numbers (Figures 17–19).
//!
//! ```text
//! cargo run --release --example accelerator_sim
//! ```

use nfm::accel::{EpurConfig, EpurSimulator, LayerShape, NetworkShape};
use nfm::memo::{BnnMemoConfig, MemoizedRunner};
use nfm::workloads::{NetworkId, NetworkSpec, WorkloadBuilder};

fn full_scale_shape(spec: &NetworkSpec) -> NetworkShape {
    let directions = spec.direction.cells_per_layer();
    let mut layers = Vec::new();
    let mut input = spec.input_features;
    for _ in 0..spec.layers {
        layers.push(LayerShape {
            neurons: spec.neurons,
            input_size: input,
            hidden_size: spec.neurons,
            gates: spec.cell.gates(),
            directions,
        });
        input = spec.neurons * directions;
    }
    NetworkShape::new(layers)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let simulator = EpurSimulator::new(EpurConfig::default());
    println!(
        "E-PUR: {} CUs, DPU width {}, {} MHz  |  area {:.1} mm2 -> {:.1} mm2 with memoization",
        simulator.config().computation_units,
        simulator.config().dpu_width,
        simulator.config().frequency_hz / 1e6,
        simulator.area_model().baseline_mm2(),
        simulator.area_model().with_memoization_mm2()
    );

    println!(
        "\n{:<16} {:>10} {:>12} {:>12} {:>10}",
        "network", "reuse (%)", "energy (mJ)", "savings (%)", "speedup"
    );
    for id in [
        NetworkId::ImdbSentiment,
        NetworkId::DeepSpeech2,
        NetworkId::Eesen,
        NetworkId::Mnmt,
    ] {
        let spec = NetworkSpec::of(id);
        // Functional measurement on a scaled-down instance.
        let workload = WorkloadBuilder::new(id)
            .scale(0.08)
            .layers(spec.layers.min(3))
            .sequences(2)
            .sequence_length(30)
            .seed(11)
            .build()?;
        let memo = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(0.5)).run(&workload)?;
        let reuse = memo.reuse_fraction();

        // Hardware projection on the full Table 1 topology.
        let shape = full_scale_shape(&spec);
        let timesteps = spec.typical_sequence_length as u64;
        let cmp = simulator.compare(&shape, timesteps, 1, reuse);
        println!(
            "{:<16} {:>10.1} {:>12.2} {:>12.1} {:>9.2}x",
            spec.id.to_string(),
            reuse * 100.0,
            cmp.memoized.total_energy_joules() * 1e3,
            cmp.energy_savings() * 100.0,
            cmp.speedup()
        );
    }

    println!("\nEnergy savings track the reuse fraction scaled by the share of energy spent");
    println!("on weight fetches and dot products; main-memory energy is unaffected.");
    Ok(())
}
