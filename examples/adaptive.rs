//! Adaptive thresholds end to end: one model served with a static-θ
//! BNN predictor *and* an adaptive controller-driven predictor, behind
//! `NetServer`, under drifting-regime traffic from `nfm-loadgen`.
//!
//! The drifting pool makes the input distribution wander over the run,
//! so a θ tuned for the opening regime is wrong by the end.  The
//! adaptive predictor audits one in eight memoization hits, feeds the
//! exact-vs-cached error into the per-layer controller, and walks θ to
//! hold the accuracy SLO while keeping as much reuse as the error
//! budget allows.  The scenario report closes with the engine-side
//! [`context_stats`](nfm::serve::Engine::context_stats): per-context
//! memo hit rates plus the live controller state.
//!
//! ```text
//! cargo run --release --example adaptive
//! ```

use nfm::control::{AdaptivePredictor, ControllerConfig};
use nfm::loadgen::{drifting_pool, run_scenario, BlendEntry, Scenario};
use nfm::memo::{BnnMemoConfig, PredictorKind};
use nfm::net::NetServer;
use nfm::rnn::{CellKind, DeepRnn, DeepRnnConfig};
use nfm::serve::{EngineBuilder, ModelRegistry};
use nfm::tensor::rng::DeterministicRng;
use std::sync::Arc;

const FEATURES: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = DeterministicRng::seed_from_u64(2019);
    let config = DeepRnnConfig::new(CellKind::Lstm, FEATURES, 48).layers(2);
    let net = DeepRnn::random(&config, &mut rng)?;

    // Accuracy SLO: mean |exact − cached| per audited hit ≤ 0.05.
    // Aggressive gains so the controller visibly reacts within a short
    // example run; the defaults are gentler.
    let control = ControllerConfig::new(0.05)
        .audit_period(8)
        .initial_theta(0.1)
        .alpha(0.3)
        .gains(1.25, 0.6)
        .min_audits_per_update(8)
        .seed(2019);
    let adaptive = Arc::new(AdaptivePredictor::for_network(&net, control));

    let mut registry = ModelRegistry::new();
    registry.register(
        "rnn",
        net,
        PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.1)),
    )?;
    registry.add_custom_predictor("rnn", "adaptive", Arc::clone(&adaptive) as _)?;
    let engine = EngineBuilder::from_registry(registry)
        .lanes(4)
        .workers(2)
        .queue_capacity(64)
        .build()?;

    let server = NetServer::bind("127.0.0.1:0", engine)?;
    let handle = server.spawn()?;
    println!("serving on {}\n", handle.addr());

    // Drifting-regime pool: a random walk through input space, so the
    // distribution the memo caches were warmed on keeps moving.
    let pool = drifting_pool(FEATURES, 12, 40, 7);
    let scenario = Scenario::closed_loop(pool, 6)
        .seed(42)
        .warmup(16)
        .measure(160)
        .blend(vec![
            BlendEntry::new(1.0).predictor("bnn"),
            BlendEntry::new(1.0).predictor("adaptive"),
        ]);
    let mut report = run_scenario(handle.addr(), &scenario)?;

    // Quiesce the workers so the final per-context counters are
    // published, then attach them to the traffic report.
    handle.engine().drain();
    report.attach_context_stats(handle.engine().context_stats());
    println!("drifting regime: {}", report.summary());

    let snapshot = adaptive.controller().snapshot();
    println!(
        "\ncontroller: {} θ updates · θ {:?} · mean audited err {:?} · slo {}",
        adaptive.controller().updates(),
        snapshot.thresholds(),
        snapshot.mean_audited_error(),
        snapshot.slo,
    );
    assert!(
        adaptive.controller().updates() > 0,
        "the drifting run should trigger at least one θ update"
    );

    handle.shutdown();
    Ok(())
}
