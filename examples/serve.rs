//! Serving quickstart: submit → poll → per-request stats.
//!
//! Builds a request engine over an IMDB-like LSTM, submits a burst of
//! ragged-length requests (some with tight deadlines), polls for
//! completions while the lanes drain, and prints each request's own
//! reuse statistics and latency split.  Finally cross-checks that the
//! engine's outputs are bit-identical to the workload-level
//! `MemoizedRunner` API (which is itself a thin wrapper over this
//! engine).
//!
//! ```text
//! cargo run --release --example serve
//! ```

use nfm::memo::BnnMemoConfig;
use nfm::serve::{
    CompletionStatus, DeadlinePolicy, EngineBuilder, InferenceRequest, MemoizedRunner,
    PredictorKind,
};
use nfm::workloads::{NetworkId, WorkloadBuilder};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A half-scale IMDB sentiment LSTM and a batch of synthetic
    // "reviews" of very different lengths — the ragged traffic shape
    // that mid-wave lane refill exists for.
    let workload = WorkloadBuilder::new(NetworkId::ImdbSentiment)
        .scale(0.5)
        .sequences(12)
        .sequence_length(32)
        .seed(11)
        .build()?;
    let lens = [32usize, 6, 20, 9, 32, 4, 14, 27, 8, 32, 11, 5];
    let sequences: Vec<_> = workload
        .sequences()
        .iter()
        .zip(lens)
        .map(|(s, len)| s[..len].to_vec())
        .collect();

    let predictor = PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5));
    let engine = EngineBuilder::new(workload.network().clone(), predictor)
        .lanes(4) // 4 sequences share each gate's weight stream
        .workers(1) // one compute thread; results never depend on this
        .queue_capacity(64) // submissions beyond this get backpressure
        .deadline_policy(DeadlinePolicy::DropExpired)
        .build()?;

    // Submit the burst.  Two requests carry a deadline that already
    // expired (zero budget) to show expiry reporting; everything else
    // is unbounded.
    for (id, seq) in sequences.iter().enumerate() {
        let mut request = InferenceRequest::new(id as u64, seq.clone());
        if id % 6 == 5 {
            request = request.with_deadline(Duration::ZERO);
        }
        engine.submit(request)?;
    }
    println!(
        "submitted {} requests, pending = {}",
        lens.len(),
        engine.pending()
    );

    // Poll: take completions as they appear (a real server would do
    // this from its response loop; `drain()` is the blocking variant).
    let mut responses = Vec::new();
    while responses.len() < lens.len() {
        let batch = engine.take_completed();
        if batch.is_empty() {
            std::thread::yield_now();
            continue;
        }
        responses.extend(batch);
    }
    responses.sort_by_key(|r| r.id);

    println!("\n  id  len  status            reuse%   queue      compute");
    for r in &responses {
        let status = match r.status {
            CompletionStatus::Done => "done",
            CompletionStatus::DeadlineExpired => "deadline-expired",
            CompletionStatus::Rejected => "rejected",
        };
        println!(
            "  {:>2}  {:>3}  {:<16}  {:>5.1}   {:>7.1?}  {:>9.1?}",
            r.id,
            sequences[r.id as usize].len(),
            status,
            r.stats.reuse_percent(),
            r.queue_latency,
            r.compute_latency,
        );
    }

    // Cross-check: the engine's per-request outputs are bit-identical
    // to the workload façade (itself an engine wrapper) over the same
    // admitted sequences.
    struct Ragged {
        net: nfm::rnn::DeepRnn,
        seqs: Vec<Vec<nfm::tensor::Vector>>,
    }
    impl nfm::serve::InferenceWorkload for Ragged {
        fn network(&self) -> &nfm::rnn::DeepRnn {
            &self.net
        }
        fn input_sequences(&self) -> &[Vec<nfm::tensor::Vector>] {
            &self.seqs
        }
    }
    let admitted: Vec<usize> = responses
        .iter()
        .filter(|r| r.status == CompletionStatus::Done)
        .map(|r| r.id as usize)
        .collect();
    let reference = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(0.5)).run_batched(
        &Ragged {
            net: workload.network().clone(),
            seqs: admitted.iter().map(|&i| sequences[i].clone()).collect(),
        },
        4,
    )?;
    for (slot, &id) in admitted.iter().enumerate() {
        let response = responses.iter().find(|r| r.id == id as u64).unwrap();
        assert_eq!(response.outputs, reference.outputs[slot]);
    }
    let merged = responses
        .iter()
        .fold(nfm::memo::ReuseStats::new(), |mut acc, r| {
            acc.merge(&r.stats);
            acc
        });
    assert_eq!(merged, reference.stats);
    println!(
        "\n{} admitted requests: outputs and reuse stats bit-identical to MemoizedRunner \
         (merged reuse = {:.1}%)",
        admitted.len(),
        merged.reuse_percent()
    );
    println!(
        "{} expired requests were reported, not silently dropped",
        responses.len() - admitted.len()
    );
    Ok(())
}
