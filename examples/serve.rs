//! Serving quickstart: submit → poll → per-request stats, then the
//! multi-model registry.
//!
//! Part 1 builds a single-model request engine over an IMDB-like LSTM,
//! submits a burst of ragged-length requests (some with tight
//! deadlines), polls for completions while the lanes drain, and prints
//! each request's own reuse statistics and latency split — finally
//! cross-checking that the engine's outputs are bit-identical to the
//! workload-level `MemoizedRunner` API (itself a thin engine wrapper).
//!
//! Part 2 registers **two models** with different predictor sets in one
//! `ModelRegistry` and serves both from a single engine, with requests
//! choosing their model, predictor and reuse threshold per submission
//! (`RequestOptions`).
//!
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! # Migration note (`EngineBuilder::new`)
//!
//! `EngineBuilder::new(network, predictor)` is unchanged and keeps
//! serving exactly one model: it is now sugar for a one-entry
//! `ModelRegistry` whose model id is `nfm::serve::DEFAULT_MODEL`.
//! Multi-model engines use `EngineBuilder::from_registry(registry)`
//! instead; requests without options behave identically on both.

use nfm::memo::BnnMemoConfig;
use nfm::serve::{
    CompletionStatus, DeadlinePolicy, EngineBuilder, InferenceRequest, MemoizedRunner,
    ModelRegistry, PredictorKind, RequestOptions,
};
use nfm::workloads::{NetworkId, WorkloadBuilder};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A half-scale IMDB sentiment LSTM and a batch of synthetic
    // "reviews" of very different lengths — the ragged traffic shape
    // that mid-wave lane refill exists for.
    let workload = WorkloadBuilder::new(NetworkId::ImdbSentiment)
        .scale(0.5)
        .sequences(12)
        .sequence_length(32)
        .seed(11)
        .build()?;
    let lens = [32usize, 6, 20, 9, 32, 4, 14, 27, 8, 32, 11, 5];
    let sequences: Vec<_> = workload
        .sequences()
        .iter()
        .zip(lens)
        .map(|(s, len)| s[..len].to_vec())
        .collect();

    let predictor = PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5));
    let engine = EngineBuilder::new(workload.network().clone(), predictor)
        .lanes(4) // 4 sequences share each gate's weight stream
        .workers(1) // one compute thread; results never depend on this
        .queue_capacity(64) // submissions beyond this get backpressure
        .deadline_policy(DeadlinePolicy::DropExpired)
        .build()?;

    // Submit the burst.  Two requests carry a deadline that already
    // expired (zero budget) to show expiry reporting; everything else
    // is unbounded.
    for (id, seq) in sequences.iter().enumerate() {
        let mut request = InferenceRequest::new(id as u64, seq.clone());
        if id % 6 == 5 {
            request = request.with_deadline(Duration::ZERO);
        }
        engine.submit(request)?;
    }
    println!(
        "submitted {} requests, pending = {} (kernel backend: {})",
        lens.len(),
        engine.pending(),
        engine.kernel_backend()
    );

    // Poll: take completions as they appear (a real server would do
    // this from its response loop; `drain()` is the blocking variant).
    let mut responses = Vec::new();
    while responses.len() < lens.len() {
        let batch = engine.take_completed();
        if batch.is_empty() {
            std::thread::yield_now();
            continue;
        }
        responses.extend(batch);
    }
    responses.sort_by_key(|r| r.id);

    println!("\n  id  len  status            reuse%   queue      compute");
    for r in &responses {
        let status = match r.status {
            CompletionStatus::Done => "done",
            CompletionStatus::DeadlineExpired => "deadline-expired",
            CompletionStatus::Rejected => "rejected",
        };
        println!(
            "  {:>2}  {:>3}  {:<16}  {:>5.1}   {:>7.1?}  {:>9.1?}",
            r.id,
            sequences[r.id as usize].len(),
            status,
            r.stats.reuse_percent(),
            r.queue_latency,
            r.compute_latency,
        );
    }

    // Cross-check: the engine's per-request outputs are bit-identical
    // to the workload façade (itself an engine wrapper) over the same
    // admitted sequences.
    struct Ragged {
        net: nfm::rnn::DeepRnn,
        seqs: Vec<Vec<nfm::tensor::Vector>>,
    }
    impl nfm::serve::InferenceWorkload for Ragged {
        fn network(&self) -> &nfm::rnn::DeepRnn {
            &self.net
        }
        fn input_sequences(&self) -> &[Vec<nfm::tensor::Vector>] {
            &self.seqs
        }
    }
    let admitted: Vec<usize> = responses
        .iter()
        .filter(|r| r.status == CompletionStatus::Done)
        .map(|r| r.id as usize)
        .collect();
    let reference = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(0.5)).run_batched(
        &Ragged {
            net: workload.network().clone(),
            seqs: admitted.iter().map(|&i| sequences[i].clone()).collect(),
        },
        4,
    )?;
    for (slot, &id) in admitted.iter().enumerate() {
        let response = responses.iter().find(|r| r.id == id as u64).unwrap();
        assert_eq!(response.outputs, reference.outputs[slot]);
    }
    let merged = responses
        .iter()
        .fold(nfm::memo::ReuseStats::new(), |mut acc, r| {
            acc.merge(&r.stats);
            acc
        });
    assert_eq!(merged, reference.stats);
    println!(
        "\n{} admitted requests: outputs and reuse stats bit-identical to MemoizedRunner \
         (merged reuse = {:.1}%)",
        admitted.len(),
        merged.reuse_percent()
    );
    println!(
        "{} expired requests were reported, not silently dropped",
        responses.len() - admitted.len()
    );

    // ------------------------------------------------------------------
    // Part 2: several models, one engine.  A half-scale IMDB LSTM and a
    // scaled-down DeepSpeech2 GRU register in one ModelRegistry; each
    // request picks its model, predictor and threshold per submission.
    // ------------------------------------------------------------------
    let asr = WorkloadBuilder::new(NetworkId::DeepSpeech2)
        .scale(0.05)
        .sequences(4)
        .sequence_length(24)
        .seed(23)
        .build()?;

    let mut registry = ModelRegistry::new();
    // "imdb": BNN-memoized by default, exact available on request.
    registry.register(
        "imdb",
        workload.network().clone(),
        PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
    )?;
    registry.add_predictor("imdb", PredictorKind::Exact)?;
    // "asr": exact by default, BNN-memoized on request.
    registry.register("asr", asr.network().clone(), PredictorKind::Exact)?;
    registry.add_predictor(
        "asr",
        PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
    )?;

    let engine = EngineBuilder::from_registry(registry)
        .lanes(4)
        .workers(1)
        .queue_capacity(64)
        .build()?;

    // Interleave traffic for both models.  The three IMDB requests
    // carry the *same review* at three reuse thresholds — the
    // registered 0.5 plus per-request overrides tighter (θ=0.1) and
    // looser (θ=2.0) — so the engine runs three accuracy/reuse
    // trade-offs of one model in flight at once, next to the second
    // model's traffic.
    let review = sequences[0].clone();
    let imdb = |o: RequestOptions| (o.model("imdb"), review.clone());
    let cases: Vec<(RequestOptions, Vec<nfm::tensor::Vector>)> = vec![
        imdb(RequestOptions::default()),
        imdb(RequestOptions::default().threshold(0.1)),
        (
            RequestOptions::default().model("asr"),
            asr.sequences()[0].clone(),
        ),
        imdb(RequestOptions::default().threshold(2.0)),
        (
            RequestOptions::default().model("asr"),
            asr.sequences()[1].clone(),
        ),
        imdb(RequestOptions::default().predictor("exact")),
    ];
    let mut expectations = Vec::new();
    for (i, (options, seq)) in cases.into_iter().enumerate() {
        let id = 100 + i as u64;
        expectations.push((id, options.clone()));
        engine.submit(InferenceRequest::new(id, seq).with_options(options))?;
    }
    let mut multi = engine.drain();
    multi.sort_by_key(|r| r.id);
    println!("\n  id  model predictor      θ        reuse%");
    for (r, (id, options)) in multi.iter().zip(&expectations) {
        assert_eq!(r.id, *id);
        assert_eq!(r.status, CompletionStatus::Done);
        println!(
            "  {:>2}  {:<5} {:<12} {:>8}  {:>5.1}",
            r.id,
            options.model.as_ref().map(|m| m.as_str()).unwrap_or("-"),
            options.predictor.as_deref().unwrap_or("(default)"),
            options
                .threshold
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "(cfg)".into()),
            r.stats.reuse_percent(),
        );
    }
    // Tighter θ trades reuse for accuracy, looser θ the reverse — per
    // request, on the same registered model.
    let reuse_at = |theta: Option<f32>| {
        multi
            .iter()
            .zip(&expectations)
            .find(|(_, (_, o))| {
                o.threshold == theta && o.model.as_ref().map(|m| m.as_str()) == Some("imdb")
            })
            .map(|(r, _)| r.stats.reuse_fraction() * 100.0)
            .unwrap()
    };
    let (tight, base, loose) = (reuse_at(Some(0.1)), reuse_at(None), reuse_at(Some(2.0)));
    assert!(tight <= base && base <= loose, "reuse is monotone in θ");
    println!(
        "\ntwo models served concurrently; per-request θ overrides on \"imdb\" swept reuse \
         {tight:.1}% (θ=0.1) / {base:.1}% (θ=0.5 registered) / {loose:.1}% (θ=2.0)"
    );
    Ok(())
}
