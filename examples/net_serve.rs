//! Network serving end to end: server half, client half, load test.
//!
//! Part 1 puts a two-model engine behind `NetServer` on an ephemeral
//! loopback port and talks to it with `NetClient` — the exact baseline,
//! the BNN predictor, a θ override, a deadline that expires in the
//! queue, and a request for a model that does not exist (a typed reject
//! frame, not a dropped connection).
//!
//! Part 2 turns `nfm-loadgen` loose on the same server: a closed-loop
//! capacity probe and an open-loop Poisson run with a ragged
//! sequence-length mix and a two-model blend, printing the p50/p99/p999
//! latency split each scenario measured.
//!
//! ```text
//! cargo run --release --example net_serve
//! ```

use nfm::loadgen::{run_scenario, ArrivalProcess, BlendEntry, Scenario};
use nfm::memo::{BnnMemoConfig, PredictorKind};
use nfm::net::{NetClient, NetServer, ServerFrame, WireRequest};
use nfm::serve::{CompletionStatus, EngineBuilder, ModelRegistry, Priority};
use nfm::workloads::{NetworkId, WorkloadBuilder};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two quarter-scale models with the same input width, so one
    // request pool can target either: "imdb" serves exact + BNN
    // predictors, "imdb-b" is a differently-seeded sibling.
    let primary = WorkloadBuilder::new(NetworkId::ImdbSentiment)
        .scale(0.25)
        .sequences(8)
        .sequence_length(24)
        .seed(11)
        .build()?;
    let sibling = WorkloadBuilder::new(NetworkId::ImdbSentiment)
        .scale(0.25)
        .sequences(2)
        .sequence_length(24)
        .seed(29)
        .build()?;

    let mut registry = ModelRegistry::new();
    registry.register("imdb", primary.network().clone(), PredictorKind::Exact)?;
    registry.add_predictor(
        "imdb",
        PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
    )?;
    registry.register(
        "imdb-b",
        sibling.network().clone(),
        PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
    )?;
    let engine = EngineBuilder::from_registry(registry)
        .lanes(4)
        .workers(2)
        .queue_capacity(64)
        .build()?;

    // ------------------------------------------------------------------
    // Part 1 — the server half and a hand-driven client half.
    // ------------------------------------------------------------------
    let server = NetServer::bind("127.0.0.1:0", engine)?;
    let handle = server.spawn()?;
    println!("serving on {}\n", handle.addr());

    let mut client = NetClient::connect(handle.addr())?;
    let show = |label: &str, frame: &ServerFrame| match frame {
        ServerFrame::Response(r) => {
            let stats = r.stats();
            println!(
                "{label:<28} id={} {:?}  outputs={}  computed={} reused={} ({:.1}%)  queue={:?} compute={:?}",
                r.id,
                r.status,
                r.outputs.len(),
                stats.computed(),
                stats.reuses(),
                stats.reuse_percent(),
                Duration::from_nanos(r.queue_latency_ns),
                Duration::from_nanos(r.compute_latency_ns),
            );
        }
        ServerFrame::AdminOk(r) => {
            println!("{label:<28} id={} ADMIN OK version={}", r.id, r.version);
        }
        ServerFrame::Reject(r) => {
            println!(
                "{label:<28} id={} REJECT {:?}: {}",
                r.id, r.reason, r.message
            );
        }
    };

    let seq = primary.sequences()[0].clone();
    for (label, request) in [
        ("exact baseline", WireRequest::new(1, seq.clone())),
        (
            "bnn predictor",
            WireRequest::new(2, seq.clone()).with_predictor("bnn"),
        ),
        (
            "bnn, theta=0.2 override",
            WireRequest::new(3, seq.clone())
                .with_predictor("bnn")
                .with_threshold(0.2),
        ),
        (
            "second model, low priority",
            WireRequest::new(4, seq.clone())
                .with_model("imdb-b")
                .with_priority(Priority::Low),
        ),
        (
            "already-expired deadline",
            WireRequest::new(5, seq.clone()).with_deadline(Duration::ZERO),
        ),
        (
            "unknown model (typed reject)",
            WireRequest::new(6, seq.clone()).with_model("no-such-model"),
        ),
    ] {
        client.send(&request)?;
        let frame = client.recv()?;
        if request.id == 5 {
            if let ServerFrame::Response(r) = &frame {
                assert_eq!(r.status, CompletionStatus::DeadlineExpired);
            }
        }
        show(label, &frame);
    }

    // ------------------------------------------------------------------
    // Part 2 — the traffic harness against the same live server.
    // ------------------------------------------------------------------
    let pool: Vec<_> = primary.sequences().to_vec();
    let blend = vec![
        BlendEntry::new(3.0).predictor("bnn"),
        BlendEntry::new(1.0).predictor("bnn").threshold(0.2),
        BlendEntry::new(1.0).model("imdb-b"),
        BlendEntry::new(1.0), // exact baseline keeps the mix honest
    ];

    let closed = Scenario::closed_loop(pool.clone(), 8)
        .seed(42)
        .warmup(16)
        .measure(96)
        .ragged_lengths(vec![6, 12, 24])
        .blend(blend.clone());
    let report = run_scenario(handle.addr(), &closed)?;
    println!("\nclosed loop (8 in flight) : {}", report.summary());

    let mut open = Scenario::open_loop(pool, 300.0)
        .seed(43)
        .warmup(16)
        .measure(96)
        .ragged_lengths(vec![6, 12, 24])
        .blend(blend);
    open.arrival = ArrivalProcess::OpenLoopPoisson {
        rate_per_sec: 300.0,
        max_in_flight: 64,
    };
    let report = run_scenario(handle.addr(), &open)?;
    println!("open loop (Poisson 300/s) : {}", report.summary());

    let stats = handle.shutdown();
    println!(
        "\nserver lifetime: {} connections, {} admitted, {} responses, {} typed rejects, 0 silent drops",
        stats.connections_accepted,
        stats.requests_admitted,
        stats.responses_sent,
        stats.rejects_total(),
    );
    Ok(())
}
