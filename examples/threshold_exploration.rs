//! Machine-translation scenario (MNMT style): show how the throttling
//! mechanism (accumulating BNN differences over consecutive reuses)
//! affects the reuse/accuracy trade-off — a runnable version of the
//! Figure 11 ablation.
//!
//! ```text
//! cargo run --release --example threshold_exploration
//! ```

use nfm::memo::{BnnMemoConfig, MemoizedRunner};
use nfm::workloads::{NetworkId, WorkloadBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadBuilder::new(NetworkId::Mnmt)
        .scale(0.08)
        .layers(3)
        .sequences(3)
        .sequence_length(25)
        .seed(77)
        .build()?;
    println!(
        "MNMT-like workload: {} LSTM layers, {} neurons, BLEU-style accuracy proxy\n",
        workload.network().layers().len(),
        workload.network().layers()[0].forward_cell().hidden_size()
    );

    let baseline = MemoizedRunner::exact().run(&workload)?;

    println!(
        "{:>10} {:>22} {:>22}",
        "threshold", "throttling (reuse/loss)", "no throttling (reuse/loss)"
    );
    for theta in [0.2_f32, 0.4, 0.8, 1.2, 1.6] {
        let with = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(theta)).run(&workload)?;
        let without =
            MemoizedRunner::bnn(BnnMemoConfig::with_threshold(theta).without_throttling())
                .run(&workload)?;
        let with_loss = workload
            .metric()
            .batch_loss(&baseline.outputs, &with.outputs);
        let without_loss = workload
            .metric()
            .batch_loss(&baseline.outputs, &without.outputs);
        println!(
            "{theta:>10.2} {:>13.1}% / {:>5.2} {:>13.1}% / {:>5.2}",
            with.reuse_percent(),
            with_loss,
            without.reuse_percent(),
            without_loss
        );
    }

    println!("\nWithout throttling the same threshold reuses more aggressively but lets the");
    println!("error accumulate over long runs of reuses; with throttling the accumulated");
    println!("difference bounds how stale a cached value may become, so larger thresholds");
    println!("remain safe — the paper gains ~5 points of reuse at equal accuracy this way.");
    Ok(())
}
