//! Quickstart: run one workload under exact inference, the oracle
//! predictor and the BNN predictor, and compare reuse and accuracy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nfm::memo::{BnnMemoConfig, MemoizedRunner, OracleMemoConfig};
use nfm::workloads::{NetworkId, WorkloadBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down EESEN-like workload: 10-layer bidirectional LSTM in the
    // paper; here 3 layers at 10% width so the example runs in seconds.
    let workload = WorkloadBuilder::new(NetworkId::Eesen)
        .scale(0.1)
        .layers(3)
        .sequences(2)
        .sequence_length(40)
        .seed(42)
        .build()?;

    println!("workload: {}", workload.spec().id);
    println!(
        "  cell: {} x {} layers x {} neurons (scale {:.2})",
        workload.spec().cell.name(),
        workload.network().layers().len(),
        workload.network().layers()[0].forward_cell().hidden_size(),
        workload.scale()
    );
    println!(
        "  neuron evaluations per run: {}",
        workload.total_neuron_evaluations()
    );

    // 1. Exact baseline.
    let baseline = MemoizedRunner::exact().run(&workload)?;
    println!("\nexact baseline: reuse = {:.1}%", baseline.reuse_percent());

    // 2. Oracle predictor (upper bound, Figure 1).
    let oracle = MemoizedRunner::oracle(OracleMemoConfig::with_threshold(0.4)).run(&workload)?;
    let oracle_loss = workload
        .metric()
        .batch_loss(&baseline.outputs, &oracle.outputs);
    println!(
        "oracle  (θ=0.40): reuse = {:>5.1}%   {} = {:.2}",
        oracle.reuse_percent(),
        workload.spec().accuracy.loss_label(),
        oracle_loss
    );

    // 3. BNN predictor (the deployable scheme, Figure 10/12).
    for theta in [0.1_f32, 0.4, 0.8] {
        let memo = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(theta)).run(&workload)?;
        let loss = workload
            .metric()
            .batch_loss(&baseline.outputs, &memo.outputs);
        println!(
            "bnn     (θ={theta:.2}): reuse = {:>5.1}%   {} = {:.2}",
            memo.reuse_percent(),
            workload.spec().accuracy.loss_label(),
            loss
        );
    }

    // 4. Multi-sequence batched inference: the serving path.  Up to
    //    `batch_size` sequences (lanes) run through every gate
    //    invocation at once, so one weight stream serves all of them;
    //    memoizing predictors keep one memo table per lane.  Outputs and
    //    reuse statistics are bit-identical to the per-sequence runs
    //    above — batching changes the throughput, never the results.
    let batch_size = 4;
    let batched_exact = MemoizedRunner::exact().run_batched(&workload, batch_size)?;
    assert_eq!(batched_exact.outputs, baseline.outputs);
    let memo_runner = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(0.4));
    let batched_memo = memo_runner.run_batched(&workload, batch_size)?;
    let per_sequence_memo = memo_runner.run(&workload)?;
    assert_eq!(batched_memo.outputs, per_sequence_memo.outputs);
    assert_eq!(batched_memo.stats, per_sequence_memo.stats);
    println!(
        "\nbatched (lanes={batch_size}): exact and bnn outputs bit-identical to the \
         per-sequence path"
    );
    println!(
        "batched bnn (θ=0.40): reuse = {:>5.1}% (same memo hits, one weight stream per gate)",
        batched_memo.reuse_percent()
    );

    println!("\nHigher thresholds trade accuracy for reuse; the paper deploys the largest");
    println!("threshold whose accuracy loss stays below 1% (Section 3.2.1).");
    Ok(())
}
