//! End-to-end contracts for live model hot swaps.
//!
//! 1. **Promotion routes traffic to the new weights** — a staged
//!    version canaried under a wide tolerance promotes, and every
//!    post-swap response is bit-identical to a fresh engine built
//!    directly on the new version's weights.
//! 2. **Rollback keeps the incumbent serving** — a staged version that
//!    diverges beyond the tolerance is discarded after the first
//!    comparison, and post-swap responses are bit-identical to an
//!    engine that never staged anything.
//! 3. **Zero drops under live loadgen traffic** — a swap staged while
//!    a closed-loop loadgen scenario hammers the TCP front door loses
//!    no request: sent = done, zero rejects, zero expiries.
//! 4. **Priority-class canarying** — `CanaryRule::Priority` routes
//!    exactly the chosen class; other traffic never pairs.
//! 5. **Artifact swaps** — a version arriving as serialized bytes
//!    (`swap_model_artifact`) promotes cleanly at zero tolerance when
//!    the weights round-trip, and garbage bytes surface as the typed
//!    `BadArtifact` error without disturbing the live version.

use nfm::memo::BnnMemoConfig;
use nfm::model::save_to_vec;
use nfm::net::NetServer;
use nfm::rnn::{CellKind, DeepRnn, DeepRnnConfig};
use nfm::serve::{
    CanaryConfig, Engine, EngineBuilder, EngineError, InferenceRequest, InferenceResponse,
    ModelRegistry, PredictorKind, Priority, RequestOptions, SwapOutcome,
};
use nfm::tensor::rng::DeterministicRng;
use nfm::tensor::Vector;
use std::time::Duration;

const FEATURES: usize = 4;

fn network(seed: u64) -> DeepRnn {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, FEATURES, 6), &mut rng)
        .expect("network builds")
}

fn sequences(count: usize, seed: u64) -> Vec<Vec<Vector>> {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..8)
                .map(|_| Vector::from_fn(FEATURES, |_| rng.uniform(-1.0, 1.0)))
                .collect()
        })
        .collect()
}

/// Single-worker engine serving `net` under "kws" with an exact and a
/// BNN predictor (one worker keeps execution order, and therefore memo
/// state, deterministic for bit-identity checks).
fn engine_on(net: DeepRnn) -> Engine {
    let mut registry = ModelRegistry::new();
    registry
        .register("kws", net, PredictorKind::Exact)
        .expect("register");
    registry
        .add_predictor(
            "kws",
            PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.3)),
        )
        .expect("add bnn");
    EngineBuilder::from_registry(registry)
        .lanes(2)
        .workers(1)
        .queue_capacity(256)
        .build()
        .expect("engine builds")
}

fn submit_all(engine: &Engine, seqs: &[Vec<Vector>], base_id: u64) -> Vec<InferenceResponse> {
    for (i, seq) in seqs.iter().enumerate() {
        engine
            .submit(InferenceRequest::new(base_id + i as u64, seq.clone()))
            .expect("submit");
    }
    let mut responses = engine.drain();
    responses.sort_by_key(|r| r.id);
    responses
}

fn assert_bit_identical(a: &[InferenceResponse], b: &[InferenceResponse]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.outputs.len(), y.outputs.len());
        for (u, v) in x.outputs.iter().zip(&y.outputs) {
            assert_eq!(u.as_slice(), v.as_slice(), "request {}", x.id);
        }
    }
}

#[test]
fn promotion_routes_all_traffic_to_the_new_version() {
    let seqs = sequences(12, 21);
    let engine = engine_on(network(1));

    // Stage genuinely different weights; the wide tolerance lets the
    // canary comparisons pass despite real output differences.
    let staged = engine
        .swap_model(
            "kws",
            network(2),
            &[PredictorKind::Exact],
            CanaryConfig::fraction(1.0).min_requests(4).tolerance(1e6),
        )
        .expect("stage swap");
    assert_eq!(staged, 2);
    let status = engine.swap_status("kws").expect("swap is staged");
    assert_eq!((status.from, status.to), (1, 2));
    assert!(status.decision.is_none());

    // Drive traffic through the undecided swap; drain applies the
    // decision once the last canary pair lands.
    submit_all(&engine, &seqs[..6], 0);
    let reports = engine.swap_reports();
    assert_eq!(reports.len(), 1, "swap decided after 6 > 4 canaries");
    let report = &reports[0];
    assert_eq!(report.outcome, SwapOutcome::Promoted);
    assert_eq!((report.from, report.to), (1, 2));
    assert!(report.canaries >= 4);
    assert!(report.matched >= 4);
    assert!(engine.swap_status("kws").is_none(), "no swap staged now");
    assert_eq!(engine.registry().version("kws"), Some(2));

    // Post-swap traffic must be bit-identical to a fresh engine built
    // directly on the new version's weights.
    let after = submit_all(&engine, &seqs[6..], 100);
    let fresh = engine_on(network(2));
    let expected = submit_all(&fresh, &seqs[6..], 100);
    assert_bit_identical(&after, &expected);
    engine.shutdown();
    fresh.shutdown();
}

#[test]
fn rollback_discards_the_staged_version_and_keeps_the_incumbent() {
    let seqs = sequences(10, 33);
    let engine = engine_on(network(1));

    engine
        .swap_model(
            "kws",
            network(9),
            &[PredictorKind::Exact],
            CanaryConfig::fraction(1.0).min_requests(4), // zero tolerance
        )
        .expect("stage swap");

    // Different weights at zero tolerance: the first completed
    // comparison rolls the swap back.  Every canaried request still
    // gets exactly one response.
    let during = submit_all(&engine, &seqs[..5], 0);
    assert_eq!(during.len(), 5);
    assert!(during.iter().all(|r| r.is_done()));

    let reports = engine.swap_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].outcome, SwapOutcome::RolledBack);
    assert!(reports[0].max_abs_diff > 0.0);
    assert_eq!(engine.registry().version("kws"), Some(1));

    // The incumbent keeps serving: post-rollback responses are
    // bit-identical to an engine that never staged anything.
    let after = submit_all(&engine, &seqs[5..], 100);
    let fresh = engine_on(network(1));
    submit_all(&fresh, &seqs[..5], 0); // replay the same memo history
    let expected = submit_all(&fresh, &seqs[5..], 100);
    assert_bit_identical(&after, &expected);
    engine.shutdown();
    fresh.shutdown();
}

#[test]
fn loadgen_traffic_during_swap_drops_nothing() {
    use nfm::loadgen::{run_scenario, BlendEntry, Scenario};

    let pool = sequences(16, 55);
    let server = NetServer::bind("127.0.0.1:0", engine_on(network(1))).expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    let loadgen = std::thread::spawn(move || {
        let scenario = Scenario::closed_loop(pool, 4)
            .seed(7)
            .warmup(8)
            .measure(120)
            .blend(vec![
                BlendEntry::new(3.0).model("kws"),
                BlendEntry::new(1.0).model("kws").predictor("bnn"),
            ]);
        run_scenario(addr, &scenario).expect("scenario runs")
    });

    // Stage the swap while the loadgen loop is in full flight.  The
    // artifact round-trips the incumbent's weights, so zero tolerance
    // promotes.
    std::thread::sleep(Duration::from_millis(10));
    let artifact = save_to_vec(&network(1), None).expect("serialize");
    handle
        .engine()
        .swap_model_artifact(
            "kws",
            &artifact,
            &[PredictorKind::Exact],
            CanaryConfig::fraction(0.5).min_requests(8),
        )
        .expect("stage swap mid-traffic");

    let report = loadgen.join().expect("loadgen thread");
    assert_eq!(report.sent, 128, "warmup + measure all sent");
    assert_eq!(report.done, 120, "every measured request completed");
    assert_eq!(report.deadline_expired, 0);
    assert_eq!(report.rejects_total(), 0, "no request shed or dropped");

    // The swap decided during (or right after) the run; whichever, the
    // weights are identical so it must have promoted.
    let engine = handle.engine();
    let mut round = 0u64;
    while engine.swap_status("kws").is_some() {
        // Not enough canaries landed during the run: push a few more.
        assert!(round < 16, "swap should decide within a few rounds");
        let extra = sequences(8, 56 + round);
        for (i, seq) in extra.into_iter().enumerate() {
            engine
                .submit(InferenceRequest::new(10_000 + round * 100 + i as u64, seq))
                .expect("submit");
        }
        engine.drain();
        round += 1;
    }
    let reports = engine.swap_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].outcome, SwapOutcome::Promoted);
    assert_eq!(reports[0].max_abs_diff, 0.0, "round-tripped weights");
    assert_eq!(engine.registry().version("kws"), Some(2));
    handle.shutdown();
}

#[test]
fn priority_rule_canaries_exactly_the_chosen_class() {
    let seqs = sequences(12, 77);
    let engine = engine_on(network(1));
    engine
        .swap_model(
            "kws",
            network(1),
            &[PredictorKind::Exact],
            CanaryConfig::priority(Priority::High).min_requests(3),
        )
        .expect("stage swap");

    // Low/Normal traffic is seen but never canaried.
    for (i, seq) in seqs[..6].iter().enumerate() {
        engine
            .submit(
                InferenceRequest::new(i as u64, seq.clone())
                    .with_options(RequestOptions::new().priority(Priority::Low)),
            )
            .expect("submit");
    }
    engine.drain();
    let status = engine.swap_status("kws").expect("still staged");
    assert_eq!(status.seen, 6);
    assert_eq!(status.canaries, 0);
    assert!(status.decision.is_none());

    // High-priority traffic pairs; identical weights promote.
    for (i, seq) in seqs[6..].iter().enumerate() {
        engine
            .submit(
                InferenceRequest::new(100 + i as u64, seq.clone())
                    .with_options(RequestOptions::new().priority(Priority::High)),
            )
            .expect("submit");
    }
    engine.drain();
    let reports = engine.swap_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].outcome, SwapOutcome::Promoted);
    assert!(reports[0].canaries >= 3);
    engine.shutdown();
}

#[test]
fn swap_errors_are_typed_and_leave_the_live_version_alone() {
    let engine = engine_on(network(1));

    assert!(matches!(
        engine.swap_model(
            "ghost",
            network(2),
            &[PredictorKind::Exact],
            CanaryConfig::fraction(0.5),
        ),
        Err(EngineError::UnknownModel { .. })
    ));
    assert!(matches!(
        engine.swap_model("kws", network(2), &[], CanaryConfig::fraction(0.5)),
        Err(EngineError::InvalidConfig { .. })
    ));
    assert!(matches!(
        engine.swap_model(
            "kws",
            network(2),
            &[PredictorKind::Exact],
            CanaryConfig::fraction(0.0),
        ),
        Err(EngineError::InvalidConfig { .. })
    ));
    assert!(matches!(
        engine.swap_model(
            "kws",
            network(2),
            &[PredictorKind::Exact],
            CanaryConfig::fraction(0.5).min_requests(0),
        ),
        Err(EngineError::InvalidConfig { .. })
    ));
    assert!(matches!(
        engine.swap_model_artifact(
            "kws",
            b"not an artifact",
            &[PredictorKind::Exact],
            CanaryConfig::fraction(0.5),
        ),
        Err(EngineError::BadArtifact { .. })
    ));

    // A staged swap blocks a second one...
    engine
        .swap_model(
            "kws",
            network(2),
            &[PredictorKind::Exact],
            CanaryConfig::fraction(0.5),
        )
        .expect("first stage");
    assert!(matches!(
        engine.swap_model(
            "kws",
            network(3),
            &[PredictorKind::Exact],
            CanaryConfig::fraction(0.5),
        ),
        Err(EngineError::SwapInProgress { .. })
    ));

    // ...and eviction of the last model is refused, while evicting a
    // second model also discards its staged swap.
    assert!(matches!(
        engine.evict_model("kws"),
        Err(EngineError::CannotEvictLast { .. })
    ));
    assert!(matches!(
        engine.evict_model("ghost"),
        Err(EngineError::UnknownModel { .. })
    ));
    assert_eq!(engine.registry().version("kws"), Some(1), "still live");
    engine.shutdown();
}

#[test]
fn evicting_a_model_discards_its_staged_swap() {
    let mut registry = ModelRegistry::new();
    registry
        .register("kws", network(1), PredictorKind::Exact)
        .expect("register kws");
    registry
        .register("asr", network(4), PredictorKind::Exact)
        .expect("register asr");
    let engine = EngineBuilder::from_registry(registry)
        .workers(1)
        .build()
        .expect("engine builds");

    engine
        .swap_model(
            "asr",
            network(5),
            &[PredictorKind::Exact],
            CanaryConfig::fraction(1.0),
        )
        .expect("stage");
    engine.evict_model("asr").expect("evict");
    assert!(engine.swap_status("asr").is_none());
    assert!(engine.swap_reports().is_empty(), "discard is not a report");
    assert!(
        engine
            .submit(InferenceRequest::new(1, sequences(1, 9).pop().unwrap()))
            .is_ok(),
        "default model keeps serving"
    );
    engine.shutdown();
}

#[test]
fn admin_frames_swap_and_evict_over_the_wire() {
    use nfm::net::{NetClient, RejectReason, ServerFrame, WireAdmin, WirePredictorKind};

    let mut registry = ModelRegistry::new();
    registry
        .register("kws", network(1), PredictorKind::Exact)
        .expect("register kws");
    registry
        .register("asr", network(4), PredictorKind::Exact)
        .expect("register asr");
    let engine = EngineBuilder::from_registry(registry)
        .workers(1)
        .build()
        .expect("engine builds");
    let handle = NetServer::bind("127.0.0.1:0", engine)
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut control = NetClient::connect(handle.addr()).expect("connect");

    // A swap staged over the wire acks with the staged version.
    let artifact = save_to_vec(&network(1), None).expect("serialize");
    let admin = WireAdmin::swap(900, "kws", artifact)
        .predictors(vec![WirePredictorKind::Exact, WirePredictorKind::Bnn(0.3)])
        .fraction(1.0)
        .min_requests(2);
    match control.admin(&admin).expect("admin round trip") {
        ServerFrame::AdminOk(ok) => {
            assert_eq!(ok.id, 900);
            assert_eq!(ok.version, 2);
        }
        other => panic!("expected ack, got {other:?}"),
    }
    assert!(handle.engine().swap_status("kws").is_some());

    // Garbage artifact bytes come back as a typed reject, not a drop.
    let bad = WireAdmin::swap(901, "asr", b"junk".to_vec());
    match control.admin(&bad).expect("admin round trip") {
        ServerFrame::Reject(r) => {
            assert_eq!(r.id, 901);
            assert_eq!(r.reason, RejectReason::Internal);
            assert!(r.message.contains("artifact"), "{}", r.message);
        }
        other => panic!("expected reject, got {other:?}"),
    }

    // Eviction over the wire: ok for a spare model, typed reject once
    // only one is left.
    match control.admin(&WireAdmin::evict(902, "asr")).expect("admin") {
        ServerFrame::AdminOk(ok) => assert_eq!((ok.id, ok.version), (902, 0)),
        other => panic!("expected ack, got {other:?}"),
    }
    match control.admin(&WireAdmin::evict(903, "kws")).expect("admin") {
        ServerFrame::Reject(r) => {
            assert_eq!(r.id, 903);
            assert_eq!(r.reason, RejectReason::Internal);
            assert!(r.message.contains("last"), "{}", r.message);
        }
        other => panic!("expected reject, got {other:?}"),
    }
    handle.shutdown();
}
