//! The open serving API: `Predictor` trait + multi-model registry +
//! per-request options.
//!
//! Five contracts:
//!
//! 1. **Open predictors** — a custom [`Predictor`] registered through
//!    the [`ModelRegistry`] and served through the engine is
//!    bit-identical to driving its evaluator directly (dedicated
//!    per-sequence runs and `run_batch` waves).
//! 2. **Multi-model** — one engine serves two registered models under
//!    different predictors concurrently, each request bit-identical to
//!    its dedicated single-model reference, including per-request
//!    threshold overrides.
//! 3. **Registry hygiene** — unknown models/predictors and unsupported
//!    overrides are typed submit-time errors; duplicate registrations
//!    are rejected.
//! 4. **Scheduling knobs** — priorities reorder admission (never
//!    results); per-step deadline aborts free a lane mid-sequence
//!    under `DropExpired` and are policy-gated.
//! 5. **Lane and work stealing** — a hot model borrows the lanes a
//!    cold sibling context leaves idle (never past the worker-wide
//!    fair-share total), a custom evaluator can opt into cross-worker
//!    lane migration, and a migrated request still aborts at its
//!    deadline on the receiving worker — none of which ever changes
//!    results.

use nfm::bnn::BinaryNetwork;
use nfm::memo::{
    BnnMemoConfig, BnnMemoEvaluator, LaneState, OracleEvaluator, OracleMemoConfig, Predictor,
    ServedEvaluator,
};
use nfm::rnn::{
    CellKind, DeepRnn, DeepRnnConfig, Gate, GateId, NeuronEvaluator, NeuronRef, Result as RnnResult,
};
use nfm::serve::{
    CompletionStatus, DeadlinePolicy, EngineBuilder, EngineError, InferenceRequest, ModelRegistry,
    PredictorKind, Priority, RequestOptions,
};
use nfm::tensor::rng::DeterministicRng;
use nfm::tensor::Vector;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn smooth_sequence(len: usize, width: usize, seed: u64) -> Vec<Vector> {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let mut x = Vector::from_fn(width, |_| rng.uniform(-0.5, 0.5));
    (0..len)
        .map(|_| {
            x = x
                .add(&Vector::from_fn(width, |_| rng.uniform(-0.08, 0.08)))
                .unwrap();
            x.clone()
        })
        .collect()
}

fn assert_bit_identical(name: &str, a: &[Vector], b: &[Vector]) {
    assert_eq!(a.len(), b.len(), "{name}: output length");
    for (t, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.len(), y.len(), "{name}: width at t={t}");
        for i in 0..x.len() {
            assert_eq!(
                x[i].to_bits(),
                y[i].to_bits(),
                "{name}: bit mismatch at t={t} i={i}: {} vs {}",
                x[i],
                y[i]
            );
        }
    }
}

// ---------------------------------------------------------------------
// A custom memoization policy, implemented entirely outside the built-in
// family: every third evaluation of a neuron (within one sequence)
// returns the cached value instead of computing.  It keeps full
// per-lane state — the contract a stateful evaluator must satisfy to be
// schedule-independent under lanes > 1.
// ---------------------------------------------------------------------

#[derive(Default)]
struct StickyState {
    /// Per (gate, neuron): cached preactivation + evaluation count.
    cache: HashMap<(GateId, usize), (f32, u32)>,
}

impl StickyState {
    fn produce(&mut self, gate_id: GateId, neuron: usize, exact: impl FnOnce() -> f32) -> f32 {
        let entry = self.cache.entry((gate_id, neuron)).or_insert((0.0, 0));
        entry.1 += 1;
        if entry.1.is_multiple_of(3) {
            entry.0
        } else {
            let y = exact();
            entry.0 = y;
            y
        }
    }
}

/// The custom evaluator: one [`StickyState`] for the single-sequence
/// path plus one per lane for batched schedules.
#[derive(Default)]
struct StickyEvaluator {
    single: StickyState,
    lanes: Vec<StickyState>,
}

impl NeuronEvaluator for StickyEvaluator {
    fn evaluate(
        &mut self,
        neuron: NeuronRef,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
    ) -> RnnResult<f32> {
        let exact = gate.neuron_dot(neuron.neuron, x, h_prev)?;
        Ok(self
            .single
            .produce(neuron.gate_id, neuron.neuron, move || exact))
    }

    fn evaluate_gate_batch(
        &mut self,
        gate_id: GateId,
        _timestep: usize,
        lanes: usize,
        gate: &Gate,
        xs: &[f32],
        h_prevs: &[f32],
        out: &mut [f32],
    ) -> RnnResult<()> {
        let (isz, hsz, nsz) = (gate.input_size(), gate.hidden_size(), gate.neurons());
        for l in 0..lanes {
            let x = &xs[l * isz..(l + 1) * isz];
            let h = &h_prevs[l * hsz..(l + 1) * hsz];
            let state = &mut self.lanes[l];
            for (n, slot) in out[l * nsz..(l + 1) * nsz].iter_mut().enumerate() {
                let exact = gate.neuron_dot(n, x, h)?;
                *slot = state.produce(gate_id, n, move || exact);
            }
        }
        Ok(())
    }

    fn begin_sequence(&mut self) {
        self.single.cache.clear();
    }

    fn begin_batch(&mut self, lanes: usize) {
        while self.lanes.len() < lanes {
            self.lanes.push(StickyState::default());
        }
    }

    fn begin_lane_sequence(&mut self, lane: usize) {
        self.lanes[lane].cache.clear();
    }

    fn swap_lane_state(&mut self, a: usize, b: usize) {
        self.lanes.swap(a, b);
    }
}

// No stats overrides: the engine synthesizes all-computed statistics
// for this policy (it has no notion of skipped work it could report).
impl ServedEvaluator for StickyEvaluator {}

#[derive(Debug)]
struct StickyPredictor;

impl Predictor for StickyPredictor {
    fn name(&self) -> &str {
        "sticky"
    }

    fn build_evaluator(&self, _network: &DeepRnn) -> Box<dyn ServedEvaluator> {
        Box::<StickyEvaluator>::default()
    }
}

fn unidirectional_network(seed: u64) -> DeepRnn {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    DeepRnn::random(
        &DeepRnnConfig::new(CellKind::Lstm, 6, 9)
            .layers(2)
            .output_size(3),
        &mut rng,
    )
    .unwrap()
}

const RAGGED_LENS: [usize; 8] = [12, 5, 9, 1, 3, 11, 7, 2];

fn ragged_sequences(net: &DeepRnn, seed: u64) -> Vec<Vec<Vector>> {
    RAGGED_LENS
        .iter()
        .enumerate()
        .map(|(i, &len)| smooth_sequence(len, net.input_size(), seed + i as u64))
        .collect()
}

/// Contract 1: a custom `Predictor` served through the engine ==
/// driving its evaluator directly, per-sequence and through `run_batch`
/// waves, for every lane count.
#[test]
fn custom_predictor_through_engine_matches_direct_evaluator_runs() {
    let net = unidirectional_network(31);
    let seqs = ragged_sequences(&net, 400);

    // Dedicated per-sequence reference runs.
    let mut reference = Vec::new();
    for seq in &seqs {
        let mut eval = StickyEvaluator::default();
        reference.push(net.run(seq, &mut eval).unwrap());
    }

    // The same sequences through `run_batch` waves (the wave-refill
    // schedule `MemoizedRunner::run_batched` uses).
    let mut wave_eval = StickyEvaluator::default();
    let mut wave_outputs = Vec::new();
    for wave in seqs.chunks(3) {
        let refs: Vec<&[Vector]> = wave.iter().map(|s| s.as_slice()).collect();
        wave_outputs.extend(net.run_batch(&refs, &mut wave_eval).unwrap());
    }
    for (i, (w, r)) in wave_outputs.iter().zip(reference.iter()).enumerate() {
        assert_bit_identical(&format!("run_batch vs dedicated, seq {i}"), w, r);
    }

    // Served through the engine: single lane, mid-wave pipeline lanes.
    for lanes in [1usize, 2, 3] {
        let mut registry = ModelRegistry::new();
        registry
            .register_custom("tiny", net.clone(), "sticky", Arc::new(StickyPredictor))
            .unwrap();
        let engine = EngineBuilder::from_registry(registry)
            .lanes(lanes)
            .workers(1)
            .queue_capacity(seqs.len())
            .start_paused()
            .build()
            .unwrap();
        for (i, seq) in seqs.iter().enumerate() {
            engine
                .submit(InferenceRequest::new(i as u64, seq.clone()))
                .unwrap();
        }
        let mut responses = engine.shutdown();
        assert_eq!(responses.len(), seqs.len());
        responses.sort_by_key(|r| r.id);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.status, CompletionStatus::Done, "lanes={lanes} seq {i}");
            assert_bit_identical(
                &format!("engine lanes={lanes} seq {i}"),
                &r.outputs,
                &reference[i],
            );
            // Synthesized stats: all-computed over the request's own
            // timesteps.
            assert_eq!(
                r.stats.evaluations(),
                (seqs[i].len() * net.neuron_evaluations_per_step()) as u64,
                "lanes={lanes} seq {i}"
            );
            assert_eq!(r.stats.reuses(), 0);
        }
    }
}

/// Contract 2: one engine, two models, three predictor families and a
/// per-request threshold override — every response bit-identical to its
/// dedicated single-model reference.
#[test]
fn one_engine_serves_two_models_with_per_request_options() {
    let imdb = unidirectional_network(41);
    let mut rng = DeterministicRng::seed_from_u64(43);
    let kws =
        DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, 5, 8).layers(2), &mut rng).unwrap();

    let bnn_base = BnnMemoConfig::with_threshold(1.0);
    let oracle_cfg = OracleMemoConfig::with_threshold(0.4);
    let mut registry = ModelRegistry::new();
    registry
        .register("imdb", imdb.clone(), PredictorKind::Bnn(bnn_base))
        .unwrap();
    registry
        .add_predictor("imdb", PredictorKind::Exact)
        .unwrap();
    registry
        .register("kws", kws.clone(), PredictorKind::Exact)
        .unwrap();
    registry
        .add_predictor("kws", PredictorKind::Oracle(oracle_cfg))
        .unwrap();

    // One request shape per (model, options) combination, interleaved
    // across the two models so both are in flight at once.
    enum Expect {
        Bnn(f32),
        ExactImdb,
        ExactKws,
        Oracle,
    }
    let cases: Vec<(RequestOptions, Expect, &DeepRnn)> = vec![
        (RequestOptions::default(), Expect::Bnn(1.0), &imdb),
        (
            RequestOptions::default().model("kws"),
            Expect::ExactKws,
            &kws,
        ),
        (
            RequestOptions::default().threshold(0.25),
            Expect::Bnn(0.25),
            &imdb,
        ),
        (
            RequestOptions::default().model("kws").predictor("oracle"),
            Expect::Oracle,
            &kws,
        ),
        (
            RequestOptions::default().model("imdb").predictor("exact"),
            Expect::ExactImdb,
            &imdb,
        ),
        (
            RequestOptions::default()
                .model("imdb")
                .threshold(4.0)
                .priority(Priority::High),
            Expect::Bnn(4.0),
            &imdb,
        ),
    ];

    // Two full rounds of every case, ragged lengths, through engines
    // with one and two workers: results must not depend on scheduling.
    let imdb_mirror = BinaryNetwork::mirror(&imdb);
    for workers in [1usize, 2] {
        let engine = EngineBuilder::from_registry({
            let mut r = ModelRegistry::new();
            r.register("imdb", imdb.clone(), PredictorKind::Bnn(bnn_base))
                .unwrap();
            r.add_predictor("imdb", PredictorKind::Exact).unwrap();
            r.register("kws", kws.clone(), PredictorKind::Exact)
                .unwrap();
            r.add_predictor("kws", PredictorKind::Oracle(oracle_cfg))
                .unwrap();
            r
        })
        .lanes(2)
        .workers(workers)
        .queue_capacity(64)
        .start_paused()
        .build()
        .unwrap();

        let mut submitted: Vec<(u64, Vec<Vector>, &Expect, &DeepRnn)> = Vec::new();
        for round in 0..2u64 {
            for (c, (options, expect, net)) in cases.iter().enumerate() {
                let id = round * 100 + c as u64;
                let len = 4 + ((round as usize + c) % 3) * 5;
                let seq = smooth_sequence(len, net.input_size(), 700 + id);
                engine
                    .submit(InferenceRequest::new(id, seq.clone()).with_options(options.clone()))
                    .unwrap();
                submitted.push((id, seq, expect, net));
            }
        }
        let responses = engine.shutdown();
        assert_eq!(responses.len(), submitted.len(), "workers={workers}");
        for (id, seq, expect, net) in submitted {
            let r = responses.iter().find(|r| r.id == id).unwrap();
            assert_eq!(
                r.status,
                CompletionStatus::Done,
                "workers={workers} id={id}"
            );
            let name = format!("workers={workers} id={id}");
            match expect {
                Expect::Bnn(theta) => {
                    let mut eval = BnnMemoEvaluator::new(
                        imdb_mirror.clone(),
                        BnnMemoConfig::with_threshold(*theta),
                    );
                    let reference = net.run(&seq, &mut eval).unwrap();
                    assert_bit_identical(&name, &r.outputs, &reference);
                    assert_eq!(r.stats, *eval.stats(), "{name}: per-request stats");
                }
                Expect::Oracle => {
                    let mut eval = OracleEvaluator::for_network(net, oracle_cfg);
                    let reference = net.run(&seq, &mut eval).unwrap();
                    assert_bit_identical(&name, &r.outputs, &reference);
                    assert_eq!(r.stats, *eval.stats(), "{name}: per-request stats");
                }
                Expect::ExactImdb | Expect::ExactKws => {
                    let mut eval = nfm::rnn::ExactEvaluator::new();
                    let reference = net.run(&seq, &mut eval).unwrap();
                    assert_bit_identical(&name, &r.outputs, &reference);
                    assert_eq!(r.stats.reuses(), 0, "{name}");
                    assert_eq!(
                        r.stats.evaluations(),
                        (seq.len() * net.neuron_evaluations_per_step()) as u64,
                        "{name}"
                    );
                }
            }
        }
    }
}

/// A client sweeping many distinct per-request thresholds: each θ
/// materializes (and, past the worker's idle-context cap, LRU-evicts)
/// an execution context, and every response must still be
/// bit-identical to a dedicated run at that θ — eviction/recreation
/// never touches results.
#[test]
fn threshold_sweeps_survive_context_eviction() {
    let net = unidirectional_network(81);
    let mirror = BinaryNetwork::mirror(&net);
    let engine = EngineBuilder::new(
        net.clone(),
        PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
    )
    .lanes(2)
    .workers(1)
    .queue_capacity(64)
    .build()
    .unwrap();
    // 20 distinct overrides, far past the per-worker idle cap of 8,
    // interleaved with re-visits of earlier values.
    let thetas: Vec<f32> = (0..20).map(|i| 0.05 * (i % 13) as f32 + 0.01).collect();
    let mut submitted = Vec::new();
    for (i, &theta) in thetas.iter().enumerate() {
        let seq = smooth_sequence(5 + i % 4, net.input_size(), 900 + i as u64);
        engine
            .submit(
                InferenceRequest::new(i as u64, seq.clone())
                    .with_options(RequestOptions::new().threshold(theta)),
            )
            .unwrap();
        submitted.push((i as u64, theta, seq));
    }
    let responses = engine.drain();
    assert_eq!(responses.len(), submitted.len());
    for (id, theta, seq) in submitted {
        let r = responses.iter().find(|r| r.id == id).unwrap();
        assert_eq!(r.status, CompletionStatus::Done, "id={id}");
        let mut eval = BnnMemoEvaluator::new(mirror.clone(), BnnMemoConfig::with_threshold(theta));
        let reference = net.run(&seq, &mut eval).unwrap();
        assert_bit_identical(&format!("sweep id={id} θ={theta}"), &r.outputs, &reference);
        assert_eq!(r.stats, *eval.stats(), "sweep id={id} θ={theta}: stats");
    }
}

/// The override-context cap is a builder knob: a deliberately tiny cap
/// forces constant LRU eviction/recreation under a θ sweep, and the
/// results must stay bit-identical to dedicated runs; zero is rejected
/// like every other sizing knob.
#[test]
fn override_context_cap_is_configurable_and_never_changes_results() {
    let net = unidirectional_network(83);
    let mirror = BinaryNetwork::mirror(&net);
    let engine = EngineBuilder::new(
        net.clone(),
        PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
    )
    .lanes(2)
    .workers(1)
    .queue_capacity(64)
    .override_context_cap(2)
    .build()
    .unwrap();
    assert_eq!(engine.override_context_cap(), 2);
    // 12 distinct overrides against a cap of 2, with re-visits so
    // evicted contexts are rebuilt mid-stream.
    let thetas: Vec<f32> = (0..12).map(|i| 0.07 * (i % 5) as f32 + 0.02).collect();
    let mut submitted = Vec::new();
    for (i, &theta) in thetas.iter().enumerate() {
        let seq = smooth_sequence(4 + i % 3, net.input_size(), 1300 + i as u64);
        engine
            .submit(
                InferenceRequest::new(i as u64, seq.clone())
                    .with_options(RequestOptions::new().threshold(theta)),
            )
            .unwrap();
        submitted.push((i as u64, theta, seq));
    }
    let responses = engine.drain();
    assert_eq!(responses.len(), submitted.len());
    for (id, theta, seq) in submitted {
        let r = responses.iter().find(|r| r.id == id).unwrap();
        assert_eq!(r.status, CompletionStatus::Done, "id={id}");
        let mut eval = BnnMemoEvaluator::new(mirror.clone(), BnnMemoConfig::with_threshold(theta));
        let reference = net.run(&seq, &mut eval).unwrap();
        assert_bit_identical(&format!("cap=2 id={id} θ={theta}"), &r.outputs, &reference);
        assert_eq!(r.stats, *eval.stats(), "cap=2 id={id} θ={theta}: stats");
    }

    // Zero is a rejected degenerate configuration, never a clamp.
    let err = EngineBuilder::new(net, PredictorKind::Exact)
        .override_context_cap(0)
        .build()
        .unwrap_err();
    match err {
        EngineError::InvalidConfig { what } => {
            assert!(what.contains("override_context_cap"), "{what}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// A predictor that counts evaluator builds: the observable for the
// evicted-context evaluator-reuse contract below.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct CountingPredictor {
    inner: nfm::memo::OraclePredictor,
    builds: Arc<std::sync::atomic::AtomicUsize>,
}

impl Predictor for CountingPredictor {
    fn name(&self) -> &str {
        "counting"
    }

    fn build_evaluator(&self, network: &DeepRnn) -> Box<dyn ServedEvaluator> {
        self.builds
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.inner.build_evaluator(network)
    }

    fn threshold(&self) -> Option<f32> {
        self.inner.threshold()
    }

    fn with_threshold(&self, threshold: f32) -> Option<Arc<dyn Predictor>> {
        let mut config = self.inner.config();
        config.threshold = threshold;
        Some(Arc::new(CountingPredictor {
            inner: nfm::memo::OraclePredictor::new(config),
            builds: Arc::clone(&self.builds),
        }))
    }
}

/// Evicting an idle override context parks its evaluator: sweeping back
/// to a recently-evicted θ revives the parked allocations instead of
/// calling `build_evaluator` again, and the revived context's results
/// stay bit-identical to a dedicated fresh-evaluator run.
#[test]
fn evicted_override_contexts_revive_parked_evaluators() {
    let net = unidirectional_network(87);
    let builds = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let base = OracleMemoConfig::with_threshold(0.5);
    let mut registry = ModelRegistry::new();
    registry
        .register_custom(
            "m",
            net.clone(),
            "counting",
            Arc::new(CountingPredictor {
                inner: nfm::memo::OraclePredictor::new(base),
                builds: Arc::clone(&builds),
            }),
        )
        .unwrap();
    let engine = EngineBuilder::from_registry(registry)
        .lanes(1)
        .workers(1)
        .queue_capacity(8)
        .override_context_cap(2)
        .build()
        .unwrap();

    // One request per distinct θ, drained one at a time so the single
    // worker creates the contexts in submission order: θ1 and θ2 fill
    // the cap, θ3 evicts θ1 (LRU) and parks its evaluator.
    let run_theta = |id: u64, theta: f32| {
        let seq = smooth_sequence(6, net.input_size(), 1700 + id);
        engine
            .submit(
                InferenceRequest::new(id, seq.clone())
                    .with_options(RequestOptions::new().threshold(theta)),
            )
            .unwrap();
        let responses = engine.drain();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].status, CompletionStatus::Done, "id={id}");
        let mut eval = OracleEvaluator::for_network(&net, OracleMemoConfig::with_threshold(theta));
        let reference = net.run(&seq, &mut eval).unwrap();
        assert_bit_identical(
            &format!("θ={theta} id={id}"),
            &responses[0].outputs,
            &reference,
        );
    };
    run_theta(0, 0.1);
    run_theta(1, 0.2);
    run_theta(2, 0.3);
    assert_eq!(
        builds.load(std::sync::atomic::Ordering::SeqCst),
        3,
        "three distinct overrides build three evaluators"
    );

    // Sweeping back to the evicted θ1 recreates its context from the
    // parked evaluator — no fourth build, results still bit-identical
    // to a dedicated fresh evaluator.
    run_theta(3, 0.1);
    assert_eq!(
        builds.load(std::sync::atomic::Ordering::SeqCst),
        3,
        "revisiting a recently-evicted override revives its parked evaluator"
    );

    // A θ that was never parked still builds.
    run_theta(4, 0.4);
    assert_eq!(builds.load(std::sync::atomic::Ordering::SeqCst), 4);
    drop(engine);
}

/// Contract 3: registry and submit-time errors are typed.
#[test]
fn unknown_ids_and_unsupported_overrides_are_typed_errors() {
    let net = unidirectional_network(51);
    let mut registry = ModelRegistry::new();
    registry
        .register("only", net.clone(), PredictorKind::Exact)
        .unwrap();

    // Duplicate registrations are rejected with typed errors.
    assert_eq!(
        registry.register("only", net.clone(), PredictorKind::Exact),
        Err(EngineError::DuplicateModel {
            model: "only".into()
        })
    );
    assert_eq!(
        registry.add_predictor("only", PredictorKind::Exact),
        Err(EngineError::DuplicatePredictor {
            model: "only".into(),
            predictor: "exact".into(),
        })
    );
    assert_eq!(
        registry.add_predictor("ghost", PredictorKind::Exact),
        Err(EngineError::UnknownModel {
            model: "ghost".into()
        })
    );

    let engine = EngineBuilder::from_registry(registry).build().unwrap();
    let seq = smooth_sequence(4, net.input_size(), 1);
    assert_eq!(
        engine.submit(
            InferenceRequest::new(1, seq.clone()).with_options(RequestOptions::for_model("ghost"))
        ),
        Err(EngineError::UnknownModel {
            model: "ghost".into()
        })
    );
    assert_eq!(
        engine.submit(
            InferenceRequest::new(2, seq.clone())
                .with_options(RequestOptions::new().predictor("bnn"))
        ),
        Err(EngineError::UnknownPredictor {
            model: "only".into(),
            predictor: "bnn".into(),
        })
    );
    // The exact baseline has no threshold to override.
    assert_eq!(
        engine.submit(
            InferenceRequest::new(3, seq.clone())
                .with_options(RequestOptions::new().threshold(0.5))
        ),
        Err(EngineError::ThresholdUnsupported {
            model: "only".into(),
            predictor: "exact".into(),
        })
    );
    // Nothing was admitted by the failed submissions.
    engine.submit(InferenceRequest::new(4, seq)).unwrap();
    assert_eq!(engine.drain().len(), 1);

    // An empty registry cannot build an engine.
    assert_eq!(
        EngineBuilder::from_registry(ModelRegistry::new())
            .build()
            .err(),
        Some(EngineError::EmptyRegistry)
    );
}

/// Contract 4a: priorities reorder admission (High before Normal before
/// Low) without changing any request's results.
#[test]
fn priorities_reorder_admission_not_results() {
    let net = unidirectional_network(61);
    let engine = EngineBuilder::new(net.clone(), PredictorKind::Exact)
        .lanes(1)
        .workers(1)
        .queue_capacity(8)
        .start_paused()
        .build()
        .unwrap();
    let mut references = HashMap::new();
    for (id, priority) in [
        (1u64, Priority::Low),
        (2, Priority::Normal),
        (3, Priority::High),
        (4, Priority::Normal),
    ] {
        let seq = smooth_sequence(5, net.input_size(), 800 + id);
        references.insert(
            id,
            net.run(&seq, &mut nfm::rnn::ExactEvaluator::new()).unwrap(),
        );
        engine
            .submit(
                InferenceRequest::new(id, seq)
                    .with_options(RequestOptions::new().priority(priority)),
            )
            .unwrap();
    }
    // Responses are emitted in completion order; with one single-lane
    // worker that is exactly the admission order.
    let responses = engine.drain();
    let order: Vec<u64> = responses.iter().map(|r| r.id).collect();
    assert_eq!(order, vec![3, 2, 4, 1], "High first, FIFO within class");
    for r in &responses {
        assert_bit_identical(
            &format!("priority id={}", r.id),
            &r.outputs,
            &references[&r.id],
        );
    }
}

/// A deliberately slow exact predictor: computing is correct but takes
/// ~`delay` per gate batch, making deadline timing deterministic.
#[derive(Debug)]
struct SleepyPredictor {
    delay: Duration,
}

struct SleepyEvaluator {
    inner: nfm::rnn::ExactEvaluator,
    delay: Duration,
}

impl NeuronEvaluator for SleepyEvaluator {
    fn evaluate(
        &mut self,
        neuron: NeuronRef,
        gate: &Gate,
        x: &[f32],
        h_prev: &[f32],
    ) -> RnnResult<f32> {
        self.inner.evaluate(neuron, gate, x, h_prev)
    }

    fn evaluate_gate_batch(
        &mut self,
        gate_id: GateId,
        timestep: usize,
        lanes: usize,
        gate: &Gate,
        xs: &[f32],
        h_prevs: &[f32],
        out: &mut [f32],
    ) -> RnnResult<()> {
        std::thread::sleep(self.delay);
        self.inner
            .evaluate_gate_batch(gate_id, timestep, lanes, gate, xs, h_prevs, out)
    }
}

// Stateless per lane (the inner exact evaluator recomputes everything
// from the scheduler-carried recurrent state), so it can opt into
// cross-worker lane migration with a unit lane-state token — the
// custom-evaluator side of the work-stealing contract.
impl ServedEvaluator for SleepyEvaluator {
    fn export_lane_state(&mut self, _lane: usize) -> Option<LaneState> {
        Some(Box::new(()))
    }

    fn import_lane_state(&mut self, _lane: usize, state: LaneState) -> bool {
        state.downcast::<()>().is_ok()
    }
}

impl Predictor for SleepyPredictor {
    fn name(&self) -> &str {
        "sleepy"
    }

    fn build_evaluator(&self, _network: &DeepRnn) -> Box<dyn ServedEvaluator> {
        Box::new(SleepyEvaluator {
            inner: nfm::rnn::ExactEvaluator::new(),
            delay: self.delay,
        })
    }
}

fn sleepy_engine(net: &DeepRnn, policy: DeadlinePolicy) -> nfm::serve::Engine {
    let mut registry = ModelRegistry::new();
    registry
        .register_custom(
            "slow",
            net.clone(),
            "sleepy",
            Arc::new(SleepyPredictor {
                delay: Duration::from_millis(1),
            }),
        )
        .unwrap();
    EngineBuilder::from_registry(registry)
        .lanes(2)
        .workers(1)
        .queue_capacity(8)
        .deadline_policy(policy)
        .build()
        .unwrap()
}

/// Contract 4b: an in-flight request whose deadline expires is aborted
/// *between timesteps* under `DropExpired` — its lane frees without
/// computing the rest of the sequence, with the consumed compute time
/// reported — while `RunToCompletion` computes the same request to the
/// (late) end.
#[test]
fn per_step_deadline_abort_frees_the_lane_mid_sequence() {
    let mut rng = DeterministicRng::seed_from_u64(71);
    // One GRU layer => 3 sleepy gate calls ≈ 3ms per timestep.
    let net = DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, 4, 6), &mut rng).unwrap();
    let long = smooth_sequence(60, net.input_size(), 1); // ≈ 180ms of compute
    let short = smooth_sequence(3, net.input_size(), 2);

    let engine = sleepy_engine(&net, DeadlinePolicy::DropExpired);
    engine
        .submit(InferenceRequest::new(1, long.clone()).with_deadline(Duration::from_millis(40)))
        .unwrap();
    engine
        .submit(InferenceRequest::new(2, short.clone()))
        .unwrap();
    let responses = engine.drain();
    assert_eq!(responses.len(), 2);
    let aborted = responses.iter().find(|r| r.id == 1).unwrap();
    assert_eq!(aborted.status, CompletionStatus::DeadlineExpired);
    assert!(
        aborted.outputs.is_empty(),
        "dropped mid-flight, not computed"
    );
    assert!(
        aborted.compute_latency > Duration::ZERO,
        "the abort happened on a lane, not in the queue: partial compute is accounted"
    );
    assert!(
        aborted.compute_latency < Duration::from_millis(150),
        "the request did not run to completion (~180ms): {:?}",
        aborted.compute_latency
    );
    let done = responses.iter().find(|r| r.id == 2).unwrap();
    assert_eq!(
        done.status,
        CompletionStatus::Done,
        "the freed lane kept serving"
    );
    assert_eq!(done.outputs.len(), short.len());

    // Policy-gated: RunToCompletion computes the same request fully.
    let engine = sleepy_engine(&net, DeadlinePolicy::RunToCompletion);
    engine
        .submit(InferenceRequest::new(1, long.clone()).with_deadline(Duration::from_millis(40)))
        .unwrap();
    let responses = engine.drain();
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].status, CompletionStatus::DeadlineExpired);
    assert_eq!(responses[0].outputs.len(), long.len(), "late but complete");
}

/// Contract 5a: cross-context lane stealing.  A hot model may borrow
/// the lanes a cold sibling context leaves idle — but never past the
/// worker-wide fair-share total — and borrowing changes admission only,
/// never results.  With one worker and a paused engine the fill order
/// is the submission order, making the borrow deterministic.
#[test]
fn hot_context_borrows_idle_lanes_from_cold_sibling() {
    let hot = unidirectional_network(91);
    let cold = unidirectional_network(92);
    let theta = 1.0f32;
    let mut registry = ModelRegistry::new();
    registry
        .register(
            "hot",
            hot.clone(),
            PredictorKind::Bnn(BnnMemoConfig::with_threshold(theta)),
        )
        .unwrap();
    registry
        .register("cold", cold.clone(), PredictorKind::Exact)
        .unwrap();
    let engine = EngineBuilder::from_registry(registry)
        .lanes(2)
        .workers(1)
        .queue_capacity(16)
        .start_paused()
        .build()
        .unwrap();

    // Two hot requests fill the hot context's fair share (= the
    // configured 2 lanes), one cold request occupies the cold context,
    // and the third hot request is only admittable by borrowing a lane
    // the cold context leaves idle: 3 active lanes < 2 lanes × 2
    // contexts.  The remaining hot requests wait on the queue until
    // lanes retire.
    let hot_seqs: Vec<Vec<Vector>> = [12usize, 9, 7, 5, 3]
        .iter()
        .enumerate()
        .map(|(i, &len)| smooth_sequence(len, hot.input_size(), 2100 + i as u64))
        .collect();
    let cold_seq = smooth_sequence(10, cold.input_size(), 2200);
    for (i, seq) in hot_seqs.iter().take(2).enumerate() {
        engine
            .submit(
                InferenceRequest::new(i as u64, seq.clone())
                    .with_options(RequestOptions::for_model("hot")),
            )
            .unwrap();
    }
    engine
        .submit(
            InferenceRequest::new(100, cold_seq.clone())
                .with_options(RequestOptions::for_model("cold")),
        )
        .unwrap();
    for (i, seq) in hot_seqs.iter().enumerate().skip(2) {
        engine
            .submit(
                InferenceRequest::new(i as u64, seq.clone())
                    .with_options(RequestOptions::for_model("hot")),
            )
            .unwrap();
    }
    let responses = engine.drain();
    assert_eq!(
        responses.len(),
        hot_seqs.len() + 1,
        "every request reported"
    );
    assert!(
        engine.lane_borrows() >= 1,
        "the third hot request was admitted on a borrowed lane"
    );
    let mirror = BinaryNetwork::mirror(&hot);
    for (i, seq) in hot_seqs.iter().enumerate() {
        let r = responses.iter().find(|r| r.id == i as u64).unwrap();
        assert_eq!(r.status, CompletionStatus::Done, "hot seq {i}");
        let mut eval = BnnMemoEvaluator::new(mirror.clone(), BnnMemoConfig::with_threshold(theta));
        let reference = hot.run(seq, &mut eval).unwrap();
        assert_bit_identical(
            &format!("borrowed-lane hot seq {i}"),
            &r.outputs,
            &reference,
        );
        assert_eq!(r.stats, *eval.stats(), "hot seq {i}: per-request stats");
    }
    let r = responses.iter().find(|r| r.id == 100).unwrap();
    assert_eq!(r.status, CompletionStatus::Done, "cold request");
    let reference = cold
        .run(&cold_seq, &mut nfm::rnn::ExactEvaluator::new())
        .unwrap();
    assert_bit_identical("cold request", &r.outputs, &reference);

    // A single-context worker has no sibling to borrow from: the same
    // traffic through a one-model engine never exceeds the configured
    // lane count, so the borrow counter stays at zero.
    let engine = EngineBuilder::new(
        hot.clone(),
        PredictorKind::Bnn(BnnMemoConfig::with_threshold(theta)),
    )
    .lanes(2)
    .workers(1)
    .queue_capacity(16)
    .start_paused()
    .build()
    .unwrap();
    for (i, seq) in hot_seqs.iter().enumerate() {
        engine
            .submit(InferenceRequest::new(i as u64, seq.clone()))
            .unwrap();
    }
    let responses = engine.drain();
    assert_eq!(responses.len(), hot_seqs.len());
    assert!(responses.iter().all(|r| r.status == CompletionStatus::Done));
    assert_eq!(
        engine.lane_borrows(),
        0,
        "a single-context worker never borrows"
    );
}

/// Contract 5b: steal-then-deadline-abort.  A request migrated to
/// another worker mid-sequence still aborts at its deadline on the
/// receiving worker under `DropExpired`, and every request — migrated
/// or not — is reported exactly once.
#[test]
fn stolen_lanes_still_abort_on_deadline() {
    let mut rng = DeterministicRng::seed_from_u64(73);
    // One GRU layer => 3 sleepy gate calls ≈ 3ms per timestep.
    let net = DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, 4, 6), &mut rng).unwrap();
    // Two shorts (retire fast, leaving their worker idle) + two longs
    // that cannot possibly meet their 250ms deadline (≈ 360ms each).
    let shorts = [
        smooth_sequence(10, net.input_size(), 1),
        smooth_sequence(6, net.input_size(), 2),
    ];
    let longs = [
        smooth_sequence(120, net.input_size(), 3),
        smooth_sequence(120, net.input_size(), 4),
    ];

    let mut migrated = false;
    for attempt in 0..10 {
        let mut registry = ModelRegistry::new();
        registry
            .register_custom(
                "slow",
                net.clone(),
                "sleepy",
                Arc::new(SleepyPredictor {
                    delay: Duration::from_millis(1),
                }),
            )
            .unwrap();
        let engine = EngineBuilder::from_registry(registry)
            .lanes(2)
            .workers(2)
            .queue_capacity(8)
            .deadline_policy(DeadlinePolicy::DropExpired)
            .start_paused()
            .build()
            .unwrap();
        // A paused burst, shorts first: on resume the first worker's
        // fill loop runs to its fair share without yielding, so it
        // usually takes both shorts and the second worker takes both
        // longs — then drains its shorts, goes idle, and receives one
        // of the longs.  The layout is still a scheduling race, hence
        // the retry loop; the deadline/exactly-once assertions hold on
        // every attempt regardless.
        for (i, seq) in shorts.iter().enumerate() {
            engine
                .submit(InferenceRequest::new(i as u64, seq.clone()))
                .unwrap();
        }
        for (i, seq) in longs.iter().enumerate() {
            engine
                .submit(
                    InferenceRequest::new(10 + i as u64, seq.clone())
                        .with_deadline(Duration::from_millis(250)),
                )
                .unwrap();
        }
        let responses = engine.drain();
        assert_eq!(
            responses.len(),
            4,
            "attempt {attempt}: exactly-once across migration"
        );
        for (i, seq) in shorts.iter().enumerate() {
            let r = responses.iter().find(|r| r.id == i as u64).unwrap();
            assert_eq!(
                r.status,
                CompletionStatus::Done,
                "attempt {attempt} short {i}"
            );
            assert_eq!(r.outputs.len(), seq.len());
        }
        for i in 0..longs.len() {
            let r = responses.iter().find(|r| r.id == 10 + i as u64).unwrap();
            assert_eq!(
                r.status,
                CompletionStatus::DeadlineExpired,
                "attempt {attempt} long {i}"
            );
            assert!(r.outputs.is_empty(), "aborted mid-flight, not computed");
            assert!(
                r.compute_latency > Duration::ZERO,
                "attempt {attempt} long {i}: the abort happened on a lane"
            );
        }
        if engine.migrations() > 0 {
            migrated = true;
            break;
        }
    }
    assert!(migrated, "no lane migrated in 10 attempts");
}
