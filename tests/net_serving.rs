//! End-to-end contracts for the TCP serving surface.
//!
//! 1. **Loopback bit-identity** — responses served over a real socket
//!    (outputs *and* `ReuseStats`) are bit-identical to in-process
//!    `Engine::submit` for the same request stream: exact baseline,
//!    BNN predictor, and per-request θ override.
//! 2. **Deadline expiry over the wire** — an already-expired deadline
//!    comes back as `DeadlineExpired` with empty outputs, exactly like
//!    the in-process path.
//! 3. **Shedding and overload over the wire** — against a paused
//!    engine with a tiny queue, Low-priority work is shed at the
//!    watermark and a full queue yields `Overloaded`; every admitted
//!    request is still answered after the graceful drain. No silent
//!    drops: sent = answered.
//! 4. **Malformed traffic** — garbage frames get typed rejects and the
//!    connection keeps working; an oversized frame gets a typed reject
//!    and a close.
//! 5. **Loadgen loops** — closed- and open-loop scenarios drive a live
//!    server and account for every request they send.

use nfm::loadgen::{run_scenario, ArrivalProcess, BlendEntry, Scenario};
use nfm::memo::{BnnMemoConfig, PredictorKind};
use nfm::net::{
    NetClient, NetError, NetServer, RejectReason, ServerConfig, ServerFrame, WireRequest,
};
use nfm::serve::{
    CompletionStatus, Engine, EngineBuilder, InferenceRequest, ModelRegistry, Priority,
    RequestOptions,
};
use nfm::tensor::Vector;
use nfm::workloads::{NetworkId, Workload, WorkloadBuilder};
use std::time::Duration;

fn workload(seed: u64) -> Workload {
    WorkloadBuilder::new(NetworkId::ImdbSentiment)
        .scale(0.05)
        .sequences(4)
        .sequence_length(6)
        .seed(seed)
        .build()
        .expect("workload builds")
}

/// One engine configuration, constructed identically for the
/// in-process reference and the served instance (workers = 1 keeps the
/// execution order, and therefore memo-table evolution, identical).
fn make_engine(w: &Workload) -> Engine {
    let mut registry = ModelRegistry::new();
    registry
        .register("imdb", w.network().clone(), PredictorKind::Exact)
        .expect("register model");
    registry
        .add_predictor(
            "imdb",
            PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.05)),
        )
        .expect("register bnn");
    EngineBuilder::from_registry(registry)
        .workers(1)
        .build()
        .expect("engine builds")
}

/// The request mix the bit-identity test replays on both paths: the
/// exact baseline, the BNN predictor, and a θ override, across all
/// pool sequences.
fn mixed_requests(w: &Workload) -> Vec<(u64, Vec<Vector>, RequestOptions)> {
    let mut requests = Vec::new();
    let mut id = 0u64;
    for seq in w.sequences() {
        for options in [
            RequestOptions::default(),
            RequestOptions::default().predictor("bnn"),
            RequestOptions::default().predictor("bnn").threshold(0.2),
        ] {
            requests.push((id, seq.clone(), options));
            id += 1;
        }
    }
    requests
}

#[test]
fn loopback_responses_bit_identical_to_in_process() {
    let w = workload(11);
    let requests = mixed_requests(&w);

    // In-process reference: submit one at a time so the order is fixed.
    let reference_engine = make_engine(&w);
    let mut reference = Vec::new();
    for (id, seq, options) in &requests {
        reference_engine
            .submit(InferenceRequest::new(*id, seq.clone()).with_options(options.clone()))
            .expect("reference submit");
        let mut done = reference_engine.drain();
        assert_eq!(done.len(), 1);
        reference.push(done.pop().unwrap());
    }
    reference_engine.shutdown();

    // Same stream over a real socket, same one-at-a-time order.
    let server = NetServer::bind("127.0.0.1:0", make_engine(&w)).expect("bind");
    let handle = server.spawn().expect("spawn");
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    for ((id, seq, options), expected) in requests.iter().zip(&reference) {
        let mut wire = WireRequest::new(*id, seq.clone());
        if let Some(predictor) = &options.predictor {
            wire = wire.with_predictor(predictor.clone());
        }
        if let Some(theta) = options.threshold {
            wire = wire.with_threshold(theta);
        }
        client.send(&wire).expect("send");
        let response = match client.recv().expect("recv") {
            ServerFrame::Response(r) => r,
            other => panic!("request {id} got unexpected frame: {other:?}"),
        };
        assert_eq!(response.id, *id);
        assert_eq!(response.status, CompletionStatus::Done);
        assert_eq!(
            response.outputs.len(),
            expected.outputs.len(),
            "request {id}: output length"
        );
        for (t, (a, b)) in response.outputs.iter().zip(&expected.outputs).enumerate() {
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert_eq!(
                    a[i].to_bits(),
                    b[i].to_bits(),
                    "request {id}: bit mismatch at t={t} i={i}"
                );
            }
        }
        let stats = response.stats();
        assert_eq!(stats.computed(), expected.stats.computed(), "request {id}");
        assert_eq!(stats.reuses(), expected.stats.reuses(), "request {id}");
        assert_eq!(
            stats.bnn_evaluations(),
            expected.stats.bnn_evaluations(),
            "request {id}"
        );
    }
    let stats = handle.shutdown();
    assert_eq!(stats.requests_admitted, requests.len() as u64);
    assert_eq!(stats.responses_sent, requests.len() as u64);
    assert_eq!(stats.rejects_total(), 0);
    assert_eq!(stats.responses_orphaned, 0);
}

#[test]
fn deadline_expiry_travels_the_wire() {
    let w = workload(23);
    let server = NetServer::bind("127.0.0.1:0", make_engine(&w)).expect("bind");
    let handle = server.spawn().expect("spawn");
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    client
        .send(&WireRequest::new(1, w.sequences()[0].clone()).with_deadline(Duration::ZERO))
        .expect("send");
    match client.recv().expect("recv") {
        ServerFrame::Response(r) => {
            assert_eq!(r.status, CompletionStatus::DeadlineExpired);
            assert!(r.outputs.is_empty(), "DropExpired ships no outputs");
        }
        other => panic!("unexpected frame: {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn shed_and_overload_paths_over_the_wire() {
    let w = workload(31);
    let mut registry = ModelRegistry::new();
    registry
        .register("imdb", w.network().clone(), PredictorKind::Exact)
        .expect("register model");
    // Paused engine: admissions queue up deterministically, nothing
    // completes until the drain at shutdown. Capacity 4, default
    // watermark 0.75 → Low sheds once depth reaches 3.
    let engine = EngineBuilder::from_registry(registry)
        .workers(1)
        .queue_capacity(4)
        .start_paused()
        .build()
        .expect("engine builds");
    let server = NetServer::bind("127.0.0.1:0", engine).expect("bind");
    let handle = server.spawn().expect("spawn");
    let mut client = NetClient::connect(handle.addr()).expect("connect");

    let seq = &w.sequences()[0];
    let send = |client: &mut NetClient, id: u64, priority: Priority| {
        client
            .send(&WireRequest::new(id, seq.clone()).with_priority(priority))
            .expect("send");
    };
    send(&mut client, 1, Priority::Normal);
    send(&mut client, 2, Priority::Normal);
    send(&mut client, 3, Priority::Normal);
    send(&mut client, 4, Priority::Low); // depth 3 ≥ watermark → shed
    send(&mut client, 5, Priority::Normal); // fills the queue
    send(&mut client, 6, Priority::Normal); // queue full → Overloaded

    // The two rejects arrive while the engine is still paused.
    let mut rejects = Vec::new();
    while rejects.len() < 2 {
        match client.recv().expect("recv reject") {
            ServerFrame::Reject(r) => rejects.push(r),
            other => panic!("unexpected frame before drain: {other:?}"),
        }
    }
    rejects.sort_by_key(|r| r.id);
    assert_eq!(rejects[0].id, 4);
    assert_eq!(rejects[0].reason, RejectReason::ShedLowPriority);
    assert_eq!(rejects[1].id, 6);
    assert_eq!(rejects[1].reason, RejectReason::Overloaded);

    // Graceful drain answers every admitted request.
    let collector = std::thread::spawn(move || {
        let mut done = Vec::new();
        loop {
            match client.recv() {
                Ok(ServerFrame::Response(r)) => {
                    assert_eq!(r.status, CompletionStatus::Done);
                    done.push(r.id);
                }
                Ok(other) => panic!("unexpected frame: {other:?}"),
                Err(NetError::Disconnected) => break,
                Err(e) => panic!("recv failed: {e}"),
            }
        }
        done
    });
    let stats = handle.shutdown();
    let mut done = collector.join().expect("collector");
    done.sort_unstable();
    assert_eq!(done, vec![1, 2, 3, 5]);
    assert_eq!(stats.requests_admitted, 4);
    assert_eq!(stats.responses_sent, 4);
    assert_eq!(stats.rejects(RejectReason::ShedLowPriority), 1);
    assert_eq!(stats.rejects(RejectReason::Overloaded), 1);
    assert_eq!(stats.rejects_total(), 2);
}

#[test]
fn malformed_frames_get_typed_rejects_without_desync() {
    let w = workload(41);
    let config = ServerConfig {
        max_frame_bytes: 4096,
        ..ServerConfig::default()
    };
    let server = NetServer::bind_with("127.0.0.1:0", make_engine(&w), config).expect("bind");
    let handle = server.spawn().expect("spawn");
    let mut client = NetClient::connect(handle.addr()).expect("connect");

    // A frame with a valid prefix but garbage payload: typed reject,
    // connection stays usable.
    let garbage = [9u8, 0, 0, 0, 0xEE, 0xFF, 1, 2, 3, 4, 5, 6, 7];
    client.send_raw(&garbage).expect("send garbage");
    match client.recv().expect("recv") {
        ServerFrame::Reject(r) => assert_eq!(r.reason, RejectReason::UnsupportedVersion),
        other => panic!("unexpected frame: {other:?}"),
    }

    // An unknown model: typed reject, connection stays usable.
    client
        .send(&WireRequest::new(8, w.sequences()[0].clone()).with_model("no-such-model"))
        .expect("send");
    match client.recv().expect("recv") {
        ServerFrame::Reject(r) => {
            assert_eq!(r.id, 8);
            assert_eq!(r.reason, RejectReason::UnknownModel);
        }
        other => panic!("unexpected frame: {other:?}"),
    }

    // A hostile geometry header — width 0, u32::MAX timesteps — passes
    // the payload-length arithmetic (0 bytes wanted) but must be a
    // cheap typed reject, not a multi-gigabyte allocation.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&32u32.to_le_bytes()); // payload length
    hostile.push(1); // protocol version
    hostile.push(0x01); // request kind
    hostile.extend_from_slice(&11u64.to_le_bytes()); // id
    hostile.push(1); // Normal priority
    hostile.extend_from_slice(&u64::MAX.to_le_bytes()); // no deadline
    hostile.push(0); // no θ override
    hostile.extend_from_slice(&0u16.to_le_bytes()); // model: default
    hostile.extend_from_slice(&0u16.to_le_bytes()); // predictor: default
    hostile.extend_from_slice(&0u32.to_le_bytes()); // width 0
    hostile.extend_from_slice(&u32::MAX.to_le_bytes()); // timesteps
    client.send_raw(&hostile).expect("send hostile header");
    match client.recv().expect("recv") {
        ServerFrame::Reject(r) => {
            assert_eq!(r.id, 11);
            assert_eq!(r.reason, RejectReason::Malformed);
        }
        other => panic!("unexpected frame: {other:?}"),
    }

    // The connection still serves real work after the rejects.
    client
        .send(&WireRequest::new(9, w.sequences()[0].clone()))
        .expect("send");
    match client.recv().expect("recv") {
        ServerFrame::Response(r) => {
            assert_eq!(r.id, 9);
            assert_eq!(r.status, CompletionStatus::Done);
        }
        other => panic!("unexpected frame: {other:?}"),
    }

    // An oversized length prefix: typed reject, then the server closes
    // this connection (the frame boundary is gone).
    client
        .send_raw(&(1u32 << 24).to_le_bytes())
        .expect("send oversized prefix");
    match client.recv().expect("recv") {
        ServerFrame::Reject(r) => assert_eq!(r.reason, RejectReason::Oversized),
        other => panic!("unexpected frame: {other:?}"),
    }
    match client.recv() {
        Err(NetError::Disconnected) => {}
        other => panic!("expected close after oversized frame, got {other:?}"),
    }

    // A fresh connection is unaffected.
    let mut fresh = NetClient::connect(handle.addr()).expect("reconnect");
    fresh
        .send(&WireRequest::new(10, w.sequences()[0].clone()))
        .expect("send");
    match fresh.recv().expect("recv") {
        ServerFrame::Response(r) => assert_eq!(r.id, 10),
        other => panic!("unexpected frame: {other:?}"),
    }
    handle.shutdown();
}

/// A client that half-closes its write side after its last request
/// must still receive every response — the server may not reap the
/// connection while admitted requests are in flight.  The paused
/// engine makes the race deterministic: the server observes EOF long
/// before any response exists.
#[test]
fn half_close_still_delivers_pending_responses() {
    let w = workload(71);
    let mut registry = ModelRegistry::new();
    registry
        .register("imdb", w.network().clone(), PredictorKind::Exact)
        .expect("register model");
    let engine = EngineBuilder::from_registry(registry)
        .workers(1)
        .queue_capacity(8)
        .start_paused()
        .build()
        .expect("engine builds");
    let server = NetServer::bind("127.0.0.1:0", engine).expect("bind");
    let handle = server.spawn().expect("spawn");
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    for id in 0..3 {
        client
            .send(&WireRequest::new(id, w.sequences()[0].clone()))
            .expect("send");
    }
    client.finish_sending().expect("half-close");
    // Let the server sweep past the EOF while the engine is still
    // paused (the regression reaped the connection right here and
    // orphaned all three responses).
    std::thread::sleep(Duration::from_millis(50));
    let collector = std::thread::spawn(move || {
        let mut done = Vec::new();
        loop {
            match client.recv() {
                Ok(ServerFrame::Response(r)) => {
                    assert_eq!(r.status, CompletionStatus::Done);
                    done.push(r.id);
                }
                Ok(other) => panic!("unexpected frame: {other:?}"),
                Err(NetError::Disconnected) => break,
                Err(e) => panic!("recv failed: {e}"),
            }
        }
        done
    });
    let stats = handle.shutdown();
    let mut done = collector.join().expect("collector");
    done.sort_unstable();
    assert_eq!(done, vec![0, 1, 2]);
    assert_eq!(stats.requests_admitted, 3);
    assert_eq!(stats.responses_sent, 3);
    assert_eq!(stats.responses_orphaned, 0);
}

#[test]
fn loadgen_closed_loop_accounts_for_every_request() {
    let w = workload(51);
    let server = NetServer::bind("127.0.0.1:0", make_engine(&w)).expect("bind");
    let handle = server.spawn().expect("spawn");

    let scenario = Scenario::closed_loop(w.sequences().to_vec(), 4)
        .seed(77)
        .warmup(4)
        .measure(24)
        .ragged_lengths(vec![2, 4, 6])
        .blend(vec![
            BlendEntry::new(2.0),
            BlendEntry::new(1.0).predictor("bnn"),
            BlendEntry::new(1.0).predictor("bnn").threshold(0.3),
        ]);
    let report = run_scenario(handle.addr(), &scenario).expect("scenario runs");
    assert_eq!(report.sent, 28);
    assert_eq!(report.done, 24);
    assert_eq!(report.deadline_expired, 0);
    assert_eq!(report.rejects_total(), 0);
    assert_eq!(report.latency.count(), 24);
    assert!(report.latency.p50() <= report.latency.p99());
    assert!(report.latency.p99() <= report.latency.p999());
    assert!(report.achieved_rate() > 0.0);

    let stats = handle.shutdown();
    assert_eq!(stats.requests_admitted, 28);
    assert_eq!(stats.responses_sent, 28);
}

#[test]
fn loadgen_open_loop_poisson_accounts_for_every_request() {
    let w = workload(61);
    let server = NetServer::bind("127.0.0.1:0", make_engine(&w)).expect("bind");
    let handle = server.spawn().expect("spawn");

    let mut scenario = Scenario::open_loop(w.sequences().to_vec(), 400.0)
        .seed(88)
        .warmup(4)
        .measure(16);
    scenario.arrival = ArrivalProcess::OpenLoopPoisson {
        rate_per_sec: 400.0,
        max_in_flight: 8,
    };
    let report = run_scenario(handle.addr(), &scenario).expect("scenario runs");
    assert_eq!(report.sent, 20);
    assert_eq!(report.done, 16);
    assert_eq!(report.offered_rate, Some(400.0));
    assert_eq!(report.latency.count(), 16);

    let stats = handle.shutdown();
    assert_eq!(stats.requests_admitted, 20);
    assert_eq!(stats.responses_sent, 20);
}
