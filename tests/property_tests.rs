//! Property-based tests (proptest) on the core data structures and
//! invariants of the reproduction.

use nfm::bnn::{binarize::reference_binary_dot, BitVector};
use nfm::memo::{BnnMemoConfig, MemoizedRunner, OracleMemoConfig, ReuseStats};
use nfm::rnn::{CellKind, DeepRnn, DeepRnnConfig, ExactEvaluator};
use nfm::tensor::quant::{f16_bits_to_f32, f32_to_f16_bits, quantize_f16};
use nfm::tensor::rng::DeterministicRng;
use nfm::tensor::stats::{empirical_cdf, pearson_correlation, percentile};
use nfm::tensor::vector::relative_difference;
use nfm::tensor::Vector;
use nfm::workloads::accuracy::{bleu, edit_distance, word_error_rate};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- Bit-packed sign vectors -------------------------------------

    #[test]
    fn bitvector_packing_roundtrips(values in prop::collection::vec(-10.0f32..10.0, 0..200)) {
        let packed = BitVector::from_signs(&values);
        prop_assert_eq!(packed.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(packed.get(i), v >= 0.0);
        }
    }

    #[test]
    fn xnor_dot_equals_reference_sign_product(
        pair in prop::collection::vec((-5.0f32..5.0, -5.0f32..5.0), 1..300)
    ) {
        let a: Vec<f32> = pair.iter().map(|p| p.0).collect();
        let b: Vec<f32> = pair.iter().map(|p| p.1).collect();
        let pa = BitVector::from_signs(&a);
        let pb = BitVector::from_signs(&b);
        prop_assert_eq!(pa.xnor_dot(&pb).unwrap(), reference_binary_dot(&a, &b));
    }

    #[test]
    fn xnor_dot_is_symmetric_and_bounded(
        pair in prop::collection::vec((-1.0f32..1.0, -1.0f32..1.0), 1..128)
    ) {
        let a: Vec<f32> = pair.iter().map(|p| p.0).collect();
        let b: Vec<f32> = pair.iter().map(|p| p.1).collect();
        let pa = BitVector::from_signs(&a);
        let pb = BitVector::from_signs(&b);
        let ab = pa.xnor_dot(&pb).unwrap();
        let ba = pb.xnor_dot(&pa).unwrap();
        prop_assert_eq!(ab, ba);
        prop_assert!(ab.abs() as usize <= a.len());
        prop_assert_eq!(pa.xnor_dot(&pa).unwrap() as usize, a.len());
    }

    // ---- FP16 quantization -------------------------------------------

    #[test]
    fn f16_roundtrip_is_idempotent_and_close(x in -60000.0f32..60000.0) {
        let once = quantize_f16(x);
        let twice = quantize_f16(once);
        prop_assert_eq!(once, twice, "quantization must be idempotent");
        // binary16 has ~3 decimal digits of precision.
        prop_assert!((once - x).abs() <= x.abs() * 1e-3 + 1e-4);
    }

    #[test]
    fn f16_bits_roundtrip_preserves_ordering(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let qa = f16_bits_to_f32(f32_to_f16_bits(a));
        let qb = f16_bits_to_f32(f32_to_f16_bits(b));
        if a <= b {
            prop_assert!(qa <= qb + 1e-6);
        }
    }

    // ---- Statistics ----------------------------------------------------

    #[test]
    fn correlation_is_bounded_and_symmetric(
        pairs in prop::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 2..64)
    ) {
        let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let r = pearson_correlation(&xs, &ys).unwrap();
        let r2 = pearson_correlation(&ys, &xs).unwrap();
        prop_assert!((-1.0001..=1.0001).contains(&r));
        prop_assert!((r - r2).abs() < 1e-4);
    }

    #[test]
    fn percentiles_are_ordered(values in prop::collection::vec(-50.0f32..50.0, 1..64)) {
        let p10 = percentile(&values, 10.0).unwrap();
        let p50 = percentile(&values, 50.0).unwrap();
        let p90 = percentile(&values, 90.0).unwrap();
        prop_assert!(p10 <= p50 + 1e-6);
        prop_assert!(p50 <= p90 + 1e-6);
    }

    #[test]
    fn empirical_cdf_is_monotone(values in prop::collection::vec(-10.0f32..10.0, 1..80)) {
        let cdf = empirical_cdf(&values, 11).unwrap();
        prop_assert!(cdf.windows(2).all(|w| w[0].value <= w[1].value + 1e-6));
    }

    #[test]
    fn relative_difference_properties(a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let d = relative_difference(a, b, 1e-3);
        prop_assert!(d >= 0.0);
        prop_assert!(d.is_finite());
        let same = relative_difference(a, a, 1e-3);
        prop_assert_eq!(same, 0.0);
    }

    // ---- Accuracy proxies ----------------------------------------------

    #[test]
    fn edit_distance_is_a_metric(
        a in prop::collection::vec(0usize..8, 0..16),
        b in prop::collection::vec(0usize..8, 0..16),
        c in prop::collection::vec(0usize..8, 0..16),
    ) {
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        // Triangle inequality.
        prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
        // Upper bound by the longer sequence.
        prop_assert!(edit_distance(&a, &b) <= a.len().max(b.len()));
    }

    #[test]
    fn wer_and_bleu_are_bounded(
        reference in prop::collection::vec(0usize..6, 1..20),
        hypothesis in prop::collection::vec(0usize..6, 0..20),
    ) {
        let wer = word_error_rate(&reference, &hypothesis);
        prop_assert!(wer >= 0.0);
        prop_assert_eq!(word_error_rate(&reference, &reference), 0.0);
        let b = bleu(&reference, &hypothesis);
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!((bleu(&reference, &reference) - 1.0).abs() < 1e-9);
    }

    // ---- Reuse statistics ----------------------------------------------

    #[test]
    fn reuse_stats_fractions_are_consistent(computed in 0u32..500, reused in 0u32..500) {
        let mut stats = ReuseStats::new();
        for _ in 0..computed {
            stats.record_computed();
        }
        for _ in 0..reused {
            stats.record_reused();
        }
        prop_assert_eq!(stats.evaluations(), (computed + reused) as u64);
        prop_assert_eq!(stats.computed(), computed as u64);
        let f = stats.reuse_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        if computed + reused > 0 {
            let expected = reused as f64 / (computed + reused) as f64;
            prop_assert!((f - expected).abs() < 1e-12);
        }
    }
}

proptest! {
    // Heavier end-to-end properties get fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn lstm_outputs_stay_bounded_for_arbitrary_bounded_inputs(
        seed in 0u64..1000,
        inputs in prop::collection::vec(prop::collection::vec(-2.0f32..2.0, 6), 1..12)
    ) {
        let cfg = DeepRnnConfig::new(CellKind::Lstm, 6, 8);
        let mut rng = DeterministicRng::seed_from_u64(seed);
        let net = DeepRnn::random(&cfg, &mut rng).unwrap();
        let seq: Vec<Vector> = inputs.into_iter().map(Vector::from).collect();
        let out = net.run(&seq, &mut ExactEvaluator::new()).unwrap();
        for v in out {
            prop_assert!(v.iter().all(|x| x.is_finite()));
            prop_assert!(v.norm_inf() <= 1.0 + 1e-4, "LSTM hidden outputs stay in [-1, 1]");
        }
    }

    #[test]
    fn memoized_inference_never_reuses_with_negative_threshold(seed in 0u64..500) {
        let w = nfm::workloads::WorkloadBuilder::new(nfm::workloads::NetworkId::ImdbSentiment)
            .scale(0.05)
            .sequences(1)
            .sequence_length(6)
            .seed(seed)
            .build()
            .unwrap();
        let exact = MemoizedRunner::exact().run(&w).unwrap();
        let memo = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(-1.0)).run(&w).unwrap();
        prop_assert_eq!(memo.stats.reuses(), 0);
        prop_assert_eq!(&exact.outputs, &memo.outputs);
        let oracle = MemoizedRunner::oracle(OracleMemoConfig::with_threshold(-1.0)).run(&w).unwrap();
        prop_assert_eq!(oracle.stats.reuses(), 0);
        prop_assert_eq!(&exact.outputs, &oracle.outputs);
    }

    #[test]
    fn infinite_threshold_reuses_everything_after_the_first_step(seed in 0u64..500) {
        let w = nfm::workloads::WorkloadBuilder::new(nfm::workloads::NetworkId::DeepSpeech2)
            .scale(0.05)
            .layers(1)
            .sequences(1)
            .sequence_length(8)
            .seed(seed)
            .build()
            .unwrap();
        let oracle = MemoizedRunner::oracle(OracleMemoConfig::with_threshold(f32::INFINITY))
            .run(&w)
            .unwrap();
        let per_step = w.network().neuron_evaluations_per_step() as u64;
        prop_assert_eq!(oracle.stats.computed(), per_step);
        prop_assert_eq!(oracle.stats.reuses(), per_step * 7);
    }
}
