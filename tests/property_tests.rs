//! Property-style tests on the core data structures and invariants of
//! the reproduction.
//!
//! The container has no access to the `proptest` crate, so the
//! properties are exercised with seeded deterministic sampling loops
//! instead: every case is reproducible and each property is checked over
//! dozens of randomly drawn inputs.

use nfm::bnn::{binarize::reference_binary_dot, BitVector};
use nfm::memo::{BnnMemoConfig, MemoizedRunner, OracleMemoConfig, ReuseStats};
use nfm::rnn::{CellKind, DeepRnn, DeepRnnConfig, ExactEvaluator};
use nfm::tensor::quant::{f16_bits_to_f32, f32_to_f16_bits, quantize_f16};
use nfm::tensor::rng::DeterministicRng;
use nfm::tensor::stats::{empirical_cdf, pearson_correlation, percentile};
use nfm::tensor::vector::relative_difference;
use nfm::tensor::Vector;
use nfm::workloads::accuracy::{bleu, edit_distance, word_error_rate};

fn vec_f32(rng: &mut DeterministicRng, len: usize, low: f32, high: f32) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(low, high)).collect()
}

fn vec_usize(rng: &mut DeterministicRng, len: usize, bound: usize) -> Vec<usize> {
    (0..len).map(|_| rng.index(bound)).collect()
}

// ---- Bit-packed sign vectors -------------------------------------------

#[test]
fn bitvector_packing_roundtrips() {
    let mut rng = DeterministicRng::seed_from_u64(1);
    for case in 0..64 {
        let len = rng.index(200);
        let values = vec_f32(&mut rng, len, -10.0, 10.0);
        let packed = BitVector::from_signs(&values);
        assert_eq!(packed.len(), values.len(), "case {case}");
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(packed.get(i), v >= 0.0, "case {case} bit {i}");
        }
    }
}

#[test]
fn xnor_dot_equals_reference_sign_product() {
    let mut rng = DeterministicRng::seed_from_u64(2);
    for case in 0..64 {
        let len = 1 + rng.index(300);
        let a = vec_f32(&mut rng, len, -5.0, 5.0);
        let b = vec_f32(&mut rng, len, -5.0, 5.0);
        let pa = BitVector::from_signs(&a);
        let pb = BitVector::from_signs(&b);
        assert_eq!(
            pa.xnor_dot(&pb).unwrap(),
            reference_binary_dot(&a, &b),
            "case {case}"
        );
    }
}

#[test]
fn xnor_dot_is_symmetric_and_bounded() {
    let mut rng = DeterministicRng::seed_from_u64(3);
    for _ in 0..64 {
        let len = 1 + rng.index(128);
        let a = vec_f32(&mut rng, len, -1.0, 1.0);
        let b = vec_f32(&mut rng, len, -1.0, 1.0);
        let pa = BitVector::from_signs(&a);
        let pb = BitVector::from_signs(&b);
        let ab = pa.xnor_dot(&pb).unwrap();
        let ba = pb.xnor_dot(&pa).unwrap();
        assert_eq!(ab, ba);
        assert!(ab.unsigned_abs() as usize <= a.len());
        assert_eq!(pa.xnor_dot(&pa).unwrap() as usize, a.len());
    }
}

// ---- FP16 quantization ---------------------------------------------------

#[test]
fn f16_roundtrip_is_idempotent_and_close() {
    let mut rng = DeterministicRng::seed_from_u64(4);
    for _ in 0..256 {
        let x = rng.uniform(-60000.0, 60000.0);
        let once = quantize_f16(x);
        let twice = quantize_f16(once);
        assert_eq!(once, twice, "quantization must be idempotent for {x}");
        // binary16 has ~3 decimal digits of precision.
        assert!((once - x).abs() <= x.abs() * 1e-3 + 1e-4, "{x} -> {once}");
    }
}

#[test]
fn f16_bits_roundtrip_preserves_ordering() {
    let mut rng = DeterministicRng::seed_from_u64(5);
    for _ in 0..256 {
        let a = rng.uniform(-1000.0, 1000.0);
        let b = rng.uniform(-1000.0, 1000.0);
        let qa = f16_bits_to_f32(f32_to_f16_bits(a));
        let qb = f16_bits_to_f32(f32_to_f16_bits(b));
        if a <= b {
            assert!(qa <= qb + 1e-6, "{a} <= {b} but {qa} > {qb}");
        }
    }
}

// ---- Statistics ----------------------------------------------------------

#[test]
fn correlation_is_bounded_and_symmetric() {
    let mut rng = DeterministicRng::seed_from_u64(6);
    for _ in 0..64 {
        let len = 2 + rng.index(62);
        let xs = vec_f32(&mut rng, len, -100.0, 100.0);
        let ys = vec_f32(&mut rng, len, -100.0, 100.0);
        let r = pearson_correlation(&xs, &ys).unwrap();
        let r2 = pearson_correlation(&ys, &xs).unwrap();
        assert!((-1.0001..=1.0001).contains(&r));
        assert!((r - r2).abs() < 1e-4);
    }
}

#[test]
fn percentiles_are_ordered() {
    let mut rng = DeterministicRng::seed_from_u64(7);
    for _ in 0..64 {
        let len = 1 + rng.index(63);
        let values = vec_f32(&mut rng, len, -50.0, 50.0);
        let p10 = percentile(&values, 10.0).unwrap();
        let p50 = percentile(&values, 50.0).unwrap();
        let p90 = percentile(&values, 90.0).unwrap();
        assert!(p10 <= p50 + 1e-6);
        assert!(p50 <= p90 + 1e-6);
    }
}

#[test]
fn empirical_cdf_is_monotone() {
    let mut rng = DeterministicRng::seed_from_u64(8);
    for _ in 0..64 {
        let len = 1 + rng.index(79);
        let values = vec_f32(&mut rng, len, -10.0, 10.0);
        let cdf = empirical_cdf(&values, 11).unwrap();
        assert!(cdf.windows(2).all(|w| w[0].value <= w[1].value + 1e-6));
    }
}

#[test]
fn relative_difference_properties() {
    let mut rng = DeterministicRng::seed_from_u64(9);
    for _ in 0..256 {
        let a = rng.uniform(-100.0, 100.0);
        let b = rng.uniform(-100.0, 100.0);
        let d = relative_difference(a, b, 1e-3);
        assert!(d >= 0.0);
        assert!(d.is_finite());
        assert_eq!(relative_difference(a, a, 1e-3), 0.0);
    }
}

// ---- Accuracy proxies ----------------------------------------------------

#[test]
fn edit_distance_is_a_metric() {
    let mut rng = DeterministicRng::seed_from_u64(10);
    for _ in 0..64 {
        let (la, lb, lc) = (rng.index(16), rng.index(16), rng.index(16));
        let a = vec_usize(&mut rng, la, 8);
        let b = vec_usize(&mut rng, lb, 8);
        let c = vec_usize(&mut rng, lc, 8);
        assert_eq!(edit_distance(&a, &a), 0);
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        // Triangle inequality.
        assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
        // Upper bound by the longer sequence.
        assert!(edit_distance(&a, &b) <= a.len().max(b.len()));
    }
}

#[test]
fn wer_and_bleu_are_bounded() {
    let mut rng = DeterministicRng::seed_from_u64(11);
    for _ in 0..64 {
        let (lr, lh) = (1 + rng.index(19), rng.index(20));
        let reference = vec_usize(&mut rng, lr, 6);
        let hypothesis = vec_usize(&mut rng, lh, 6);
        let wer = word_error_rate(&reference, &hypothesis);
        assert!(wer >= 0.0);
        assert_eq!(word_error_rate(&reference, &reference), 0.0);
        let b = bleu(&reference, &hypothesis);
        assert!((0.0..=1.0).contains(&b));
        assert!((bleu(&reference, &reference) - 1.0).abs() < 1e-9);
    }
}

// ---- Reuse statistics ----------------------------------------------------

#[test]
fn reuse_stats_fractions_are_consistent() {
    let mut rng = DeterministicRng::seed_from_u64(12);
    for _ in 0..64 {
        let computed = rng.index(500) as u32;
        let reused = rng.index(500) as u32;
        let mut stats = ReuseStats::new();
        for _ in 0..computed {
            stats.record_computed();
        }
        for _ in 0..reused {
            stats.record_reused();
        }
        assert_eq!(stats.evaluations(), (computed + reused) as u64);
        assert_eq!(stats.computed(), computed as u64);
        let f = stats.reuse_fraction();
        assert!((0.0..=1.0).contains(&f));
        if computed + reused > 0 {
            let expected = reused as f64 / (computed + reused) as f64;
            assert!((f - expected).abs() < 1e-12);
        }
    }
}

// ---- Heavier end-to-end properties (fewer cases) -------------------------

#[test]
fn lstm_outputs_stay_bounded_for_arbitrary_bounded_inputs() {
    let mut rng = DeterministicRng::seed_from_u64(13);
    for _ in 0..8 {
        let seed = rng.index(1000) as u64;
        let cfg = DeepRnnConfig::new(CellKind::Lstm, 6, 8);
        let mut net_rng = DeterministicRng::seed_from_u64(seed);
        let net = DeepRnn::random(&cfg, &mut net_rng).unwrap();
        let steps = 1 + rng.index(11);
        let seq: Vec<Vector> = (0..steps)
            .map(|_| Vector::from(vec_f32(&mut rng, 6, -2.0, 2.0)))
            .collect();
        let out = net.run(&seq, &mut ExactEvaluator::new()).unwrap();
        for v in out {
            assert!(v.iter().all(|x| x.is_finite()));
            assert!(
                v.norm_inf() <= 1.0 + 1e-4,
                "LSTM hidden outputs stay in [-1, 1]"
            );
        }
    }
}

#[test]
fn memoized_inference_never_reuses_with_negative_threshold() {
    let mut rng = DeterministicRng::seed_from_u64(14);
    for _ in 0..8 {
        let seed = rng.index(500) as u64;
        let w = nfm::workloads::WorkloadBuilder::new(nfm::workloads::NetworkId::ImdbSentiment)
            .scale(0.05)
            .sequences(1)
            .sequence_length(6)
            .seed(seed)
            .build()
            .unwrap();
        let exact = MemoizedRunner::exact().run(&w).unwrap();
        let memo = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(-1.0))
            .run(&w)
            .unwrap();
        assert_eq!(memo.stats.reuses(), 0);
        assert_eq!(&exact.outputs, &memo.outputs);
        let oracle = MemoizedRunner::oracle(OracleMemoConfig::with_threshold(-1.0))
            .run(&w)
            .unwrap();
        assert_eq!(oracle.stats.reuses(), 0);
        assert_eq!(&exact.outputs, &oracle.outputs);
    }
}

#[test]
fn infinite_threshold_reuses_everything_after_the_first_step() {
    let mut rng = DeterministicRng::seed_from_u64(15);
    for _ in 0..8 {
        let seed = rng.index(500) as u64;
        let w = nfm::workloads::WorkloadBuilder::new(nfm::workloads::NetworkId::DeepSpeech2)
            .scale(0.05)
            .layers(1)
            .sequences(1)
            .sequence_length(8)
            .seed(seed)
            .build()
            .unwrap();
        let oracle = MemoizedRunner::oracle(OracleMemoConfig::with_threshold(f32::INFINITY))
            .run(&w)
            .unwrap();
        let per_step = w.network().neuron_evaluations_per_step() as u64;
        assert_eq!(oracle.stats.computed(), per_step);
        assert_eq!(oracle.stats.reuses(), per_step * 7);
    }
}
