//! Dispatch-tier equivalence at workload scale.
//!
//! The SIMD dispatch layer's contract is that `NFM_KERNEL_BACKEND` is a
//! pure performance knob: every tier computes bit-identical kernels, so
//! every downstream quantity — gate pre-activations, memoization
//! hit/miss sequences, reuse statistics, engine responses — is
//! byte-for-byte independent of the tier.  Coverage is layered:
//!
//! * `crates/tensor/tests/backend_kernels.rs` pins every kernel of
//!   every supported tier to the scalar reference across remainder
//!   shapes (kernel-level identity ⇒ end-to-end identity, since all
//!   float arithmetic on the inference path flows through those kernels
//!   and the BNN popcount is integer-exact);
//! * this file re-checks the identity on *gate-shaped* operands (the
//!   sizes serving actually runs) and proves whole-workload runs are
//!   deterministic under the dispatched kernels;
//! * the CI `kernel-matrix` job re-runs the entire workspace (including
//!   all of the above plus the serving_engine / batched_lanes /
//!   multi_model equivalence suites) once per backend, and diffs a
//!   deterministic example's output across tiers cross-process.

use nfm::memo::{BnnMemoConfig, MemoizedRunner, OracleMemoConfig};
use nfm::tensor::backend::KernelBackend;
use nfm::tensor::kernels::{dot_unchecked_on, dual_matmul_into_on, dual_matvec_into_on};
use nfm::tensor::rng::DeterministicRng;
use nfm::tensor::Matrix;
use nfm::workloads::{NetworkId, Workload, WorkloadBuilder};

fn workload() -> Workload {
    WorkloadBuilder::new(NetworkId::ImdbSentiment)
        .scale(0.25)
        .sequences(3)
        .sequence_length(12)
        .seed(11)
        .build()
        .expect("workload builds")
}

#[test]
fn gate_shaped_kernels_are_bit_identical_across_supported_tiers() {
    // The shapes the serving engine actually runs: IMDB-class gates
    // (128 neurons over 64 inputs / 128 hidden) and the EESEN-class
    // widths, at serving lane counts.
    let mut rng = DeterministicRng::seed_from_u64(42);
    for (rows, xc, hc, lanes) in [(128usize, 64usize, 128usize, 8usize), (80, 39, 80, 5)] {
        let wx = Matrix::from_fn(rows, xc, |_, _| rng.uniform(-1.0, 1.0));
        let wh = Matrix::from_fn(rows, hc, |_, _| rng.uniform(-1.0, 1.0));
        let x: Vec<f32> = (0..xc).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let h: Vec<f32> = (0..hc).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let xs: Vec<f32> = (0..lanes * xc).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let hs: Vec<f32> = (0..lanes * hc).map(|_| rng.uniform(-1.0, 1.0)).collect();

        let mut single_ref = vec![0.0f32; rows];
        dual_matvec_into_on(KernelBackend::Scalar, &wx, &wh, &x, &h, &mut single_ref).unwrap();
        let mut batch_ref = vec![0.0f32; lanes * rows];
        dual_matmul_into_on(
            KernelBackend::Scalar,
            &wx,
            &wh,
            &xs,
            &hs,
            lanes,
            &mut batch_ref,
        )
        .unwrap();
        let dot_ref = dot_unchecked_on(KernelBackend::Scalar, wx.as_slice(), wx.as_slice());

        for backend in KernelBackend::supported() {
            let mut single = vec![f32::NAN; rows];
            dual_matvec_into_on(backend, &wx, &wh, &x, &h, &mut single).unwrap();
            let mut batch = vec![f32::NAN; lanes * rows];
            dual_matmul_into_on(backend, &wx, &wh, &xs, &hs, lanes, &mut batch).unwrap();
            for (i, (a, e)) in single.iter().zip(single_ref.iter()).enumerate() {
                assert_eq!(a.to_bits(), e.to_bits(), "{backend} single[{i}]");
            }
            for (i, (a, e)) in batch.iter().zip(batch_ref.iter()).enumerate() {
                assert_eq!(a.to_bits(), e.to_bits(), "{backend} batch[{i}]");
            }
            assert_eq!(
                dot_unchecked_on(backend, wx.as_slice(), wx.as_slice()).to_bits(),
                dot_ref.to_bits(),
                "{backend} long dot"
            );
        }
    }
}

#[test]
fn whole_workload_runs_are_deterministic_under_dispatch() {
    // Two identical runs through every predictor must agree exactly —
    // outputs and reuse statistics — on whichever tier is active.
    // Combined with kernel-level tier identity (above) this gives
    // cross-tier end-to-end identity; the CI kernel-matrix job verifies
    // it cross-process as well.
    let w = workload();
    for (name, runner) in [
        ("exact", MemoizedRunner::exact()),
        (
            "oracle",
            MemoizedRunner::oracle(OracleMemoConfig::with_threshold(0.4)),
        ),
        (
            "bnn",
            MemoizedRunner::bnn(BnnMemoConfig::with_threshold(0.5)),
        ),
    ] {
        let a = runner.sequential().run(&w).expect("first run");
        let b = runner.sequential().run(&w).expect("second run");
        assert_eq!(a.stats, b.stats, "{name}: stats drifted between runs");
        assert_eq!(
            a.outputs.len(),
            b.outputs.len(),
            "{name}: output counts differ"
        );
        for (s, (seq_a, seq_b)) in a.outputs.iter().zip(b.outputs.iter()).enumerate() {
            assert_eq!(seq_a.len(), seq_b.len(), "{name}: sequence {s} length");
            for (t, (va, vb)) in seq_a.iter().zip(seq_b.iter()).enumerate() {
                for (i, (x, y)) in va.iter().zip(vb.iter()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{name}: seq {s} step {t} element {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn active_backend_is_reported_and_supported() {
    let active = nfm::tensor::backend::active();
    assert!(active.is_supported());
    // Breadcrumb for CI logs: which tier did this test process run on?
    println!("active kernel backend: {active}");
    println!("active popcount backend: {}", nfm::bnn::popcount::active());
}
