//! Equivalence guarantees for multi-sequence batched inference.
//!
//! The contract: `MemoizedRunner::run_batched` — lane-striped gate
//! evaluation with one weight stream serving all lanes and one memo
//! table per lane — must be **bit-identical** to the per-sequence path
//! in outputs, reuse statistics and memo-hit counts, for every
//! predictor, for batch sizes that divide the sequence count and ones
//! that leave a ragged tail, and for ragged sequence *lengths* inside a
//! wave.

use nfm::bnn::BinaryNetwork;
use nfm::memo::{
    BnnMemoConfig, BnnMemoEvaluator, InferenceWorkload, MemoizedRunner, OracleMemoConfig,
};
use nfm::rnn::{CellKind, DeepRnn, DeepRnnConfig, Direction, ExactEvaluator, PerNeuronEvaluator};
use nfm::tensor::rng::DeterministicRng;
use nfm::tensor::Vector;

fn networks() -> Vec<(&'static str, DeepRnn)> {
    let mut rng = DeterministicRng::seed_from_u64(1234);
    vec![
        (
            "lstm-uni-head",
            DeepRnn::random(
                &DeepRnnConfig::new(CellKind::Lstm, 6, 9)
                    .layers(2)
                    .output_size(3),
                &mut rng,
            )
            .unwrap(),
        ),
        (
            "lstm-bidi",
            DeepRnn::random(
                &DeepRnnConfig::new(CellKind::Lstm, 5, 7)
                    .layers(2)
                    .direction(Direction::Bidirectional),
                &mut rng,
            )
            .unwrap(),
        ),
        (
            "gru-uni",
            DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, 6, 8).layers(2), &mut rng).unwrap(),
        ),
        (
            "gru-bidi-head",
            DeepRnn::random(
                &DeepRnnConfig::new(CellKind::Gru, 4, 6)
                    .layers(2)
                    .direction(Direction::Bidirectional)
                    .output_size(2),
                &mut rng,
            )
            .unwrap(),
        ),
    ]
}

fn smooth_sequence(len: usize, width: usize, seed: u64) -> Vec<Vector> {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let mut x = Vector::from_fn(width, |_| rng.uniform(-0.5, 0.5));
    (0..len)
        .map(|_| {
            x = x
                .add(&Vector::from_fn(width, |_| rng.uniform(-0.08, 0.08)))
                .unwrap();
            x.clone()
        })
        .collect()
}

/// Seven ragged-length sequences: 7 is not divisible by 2 or 3, so those
/// batch sizes leave a ragged tail wave, and the lengths force lanes to
/// drain at different steps inside every wave.
const RAGGED_LENS: [usize; 7] = [12, 5, 9, 9, 3, 11, 7];

struct Tiny {
    net: DeepRnn,
    seqs: Vec<Vec<Vector>>,
}

impl InferenceWorkload for Tiny {
    fn network(&self) -> &DeepRnn {
        &self.net
    }
    fn input_sequences(&self) -> &[Vec<Vector>] {
        &self.seqs
    }
}

fn workload(net: DeepRnn, seed: u64) -> Tiny {
    let width = net.input_size();
    let seqs = RAGGED_LENS
        .iter()
        .enumerate()
        .map(|(i, &len)| smooth_sequence(len, width, seed + i as u64))
        .collect();
    Tiny { net, seqs }
}

fn assert_bit_identical(name: &str, batched: &[Vec<Vector>], reference: &[Vec<Vector>]) {
    assert_eq!(batched.len(), reference.len(), "{name}: sequence count");
    for (s, (seq_a, seq_b)) in batched.iter().zip(reference.iter()).enumerate() {
        assert_eq!(seq_a.len(), seq_b.len(), "{name}: length of sequence {s}");
        for (t, (a, b)) in seq_a.iter().zip(seq_b.iter()).enumerate() {
            assert_eq!(a.len(), b.len(), "{name}: width at seq={s} t={t}");
            for i in 0..a.len() {
                assert_eq!(
                    a[i].to_bits(),
                    b[i].to_bits(),
                    "{name}: output bit mismatch at seq={s} t={t} i={i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
    }
}

#[test]
fn exact_run_batched_is_bit_identical_to_per_sequence() {
    for (name, net) in networks() {
        let w = workload(net, 100);
        let reference = MemoizedRunner::exact().sequential().run(&w).unwrap();
        for batch in [1usize, 2, 3] {
            let batched = MemoizedRunner::exact().run_batched(&w, batch).unwrap();
            assert_bit_identical(
                &format!("{name} B={batch}"),
                &batched.outputs,
                &reference.outputs,
            );
            assert_eq!(
                batched.stats, reference.stats,
                "{name} B={batch}: evaluation counts must match"
            );
        }
    }
}

#[test]
fn bnn_run_batched_is_bit_identical_and_memo_hits_match() {
    for theta in [0.0f32, 0.5, 2.0] {
        for (name, net) in networks() {
            let w = workload(net, 200);
            let runner = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(theta));
            let reference = runner.sequential().run(&w).unwrap();
            for batch in [1usize, 2, 3] {
                let batched = runner.run_batched(&w, batch).unwrap();
                assert_bit_identical(
                    &format!("{name} θ={theta} B={batch}"),
                    &batched.outputs,
                    &reference.outputs,
                );
                // Reuse statistics double as memo-hit counts: reuses()
                // is exactly the number of lookups served from a memo
                // table, computed() the number of refreshes.
                assert_eq!(
                    batched.stats, reference.stats,
                    "{name} θ={theta} B={batch}: reuse stats / memo hits must match"
                );
                assert!(
                    theta <= 0.0 || batched.stats.reuses() > 0,
                    "{name} θ={theta}: a generous threshold must produce memo hits"
                );
            }
        }
    }
}

#[test]
fn oracle_run_batched_matches_per_sequence_too() {
    for (name, net) in networks() {
        let w = workload(net, 300);
        let runner = MemoizedRunner::oracle(OracleMemoConfig::with_threshold(0.4));
        let reference = runner.sequential().run(&w).unwrap();
        for batch in [1usize, 3] {
            let batched = runner.run_batched(&w, batch).unwrap();
            assert_bit_identical(
                &format!("{name} B={batch}"),
                &batched.outputs,
                &reference.outputs,
            );
            assert_eq!(batched.stats, reference.stats, "{name} B={batch}");
        }
    }
}

#[test]
fn per_lane_memo_tables_reproduce_per_sequence_hit_runs() {
    // Drive the evaluator directly: lane l of one batched wave must
    // leave its lane table in exactly the state a dedicated
    // single-sequence run leaves its table in (same longest memo-hit
    // run), and the merged stats must match.
    let (_, net) = networks().remove(0);
    let seqs: Vec<Vec<Vector>> = RAGGED_LENS
        .iter()
        .enumerate()
        .map(|(i, &len)| smooth_sequence(len, net.input_size(), 400 + i as u64))
        .collect();
    let mirror = BinaryNetwork::mirror(&net);
    let config = BnnMemoConfig::with_threshold(1.0);

    let mut batched_eval = BnnMemoEvaluator::new(mirror.clone(), config);
    let refs: Vec<&[Vector]> = seqs.iter().map(|s| s.as_slice()).collect();
    let _ = net.run_batch(&refs, &mut batched_eval).unwrap();
    assert_eq!(batched_eval.lane_tables().len(), seqs.len());

    // The batch driver packs lanes longest-first (stable): recompute the
    // packing to map lanes back to sequences.
    let mut order: Vec<usize> = (0..seqs.len()).collect();
    order.sort_by(|&a, &b| seqs[b].len().cmp(&seqs[a].len()));

    let mut merged = nfm::memo::ReuseStats::new();
    for (lane, &seq_idx) in order.iter().enumerate() {
        let mut single = BnnMemoEvaluator::new(mirror.clone(), config);
        let _ = net.run(&seqs[seq_idx], &mut single).unwrap();
        merged.merge(single.stats());
        assert_eq!(
            batched_eval.lane_tables()[lane].max_consecutive_reuses(),
            single.table().max_consecutive_reuses(),
            "lane {lane} (sequence {seq_idx}): memo-hit run lengths must match"
        );
    }
    assert_eq!(batched_eval.stats(), &merged);
}

#[test]
fn custom_evaluators_keep_working_through_the_default_lane_loop() {
    // PerNeuronEvaluator has no batch overrides, so run_batch exercises
    // the trait's default per-lane fallback; with one lane the result
    // must be bit-identical to the per-sequence path even for stateful
    // wrapped evaluators.
    let (_, net) = networks().remove(1);
    let seq = smooth_sequence(10, net.input_size(), 500);
    let mirror = BinaryNetwork::mirror(&net);
    let config = BnnMemoConfig::with_threshold(0.8);
    let mut naive = PerNeuronEvaluator::new(BnnMemoEvaluator::new(mirror.clone(), config));
    let batched = net.run_batch(&[seq.as_slice()], &mut naive).unwrap();
    let mut reference_eval = BnnMemoEvaluator::new(mirror, config);
    let reference = net.run(&seq, &mut reference_eval).unwrap();
    assert_bit_identical("per-neuron default lane loop", &batched, &[reference]);

    let mut exact_naive = PerNeuronEvaluator::new(ExactEvaluator::new());
    let b2 = net.run_batch(&[seq.as_slice()], &mut exact_naive).unwrap();
    let r2 = net.run(&seq, &mut ExactEvaluator::new()).unwrap();
    assert_bit_identical("exact default lane loop", &b2, &[r2]);
}

#[test]
fn repeated_run_batch_calls_start_every_sequence_cold() {
    // Reusing one evaluator across run_batch calls (the runner's wave
    // loop does exactly this) must behave like fresh per-sequence runs:
    // begin_lane_sequence has to reset BOTH the per-lane tables and the
    // single-sequence state that wrapped/default-loop evaluation uses.
    let (_, net) = networks().remove(0);
    let s0 = smooth_sequence(9, net.input_size(), 600);
    let s1 = smooth_sequence(7, net.input_size(), 601);
    let mirror = BinaryNetwork::mirror(&net);
    let config = BnnMemoConfig::with_threshold(1.0);

    // Batch overrides active (bare evaluator), two waves.
    let mut evaluator = BnnMemoEvaluator::new(mirror.clone(), config);
    let w0 = net.run_batch(&[s0.as_slice()], &mut evaluator).unwrap();
    let w1 = net.run_batch(&[s1.as_slice()], &mut evaluator).unwrap();
    let mut fresh = BnnMemoEvaluator::new(mirror.clone(), config);
    let r0 = net.run(&s0, &mut fresh).unwrap();
    let mut fresh = BnnMemoEvaluator::new(mirror.clone(), config);
    let r1 = net.run(&s1, &mut fresh).unwrap();
    assert_bit_identical("wave 0", &w0, std::slice::from_ref(&r0));
    assert_bit_identical("wave 1 must start cold", &w1, std::slice::from_ref(&r1));

    // Default per-lane loop (wrapped evaluator suppresses the batch
    // overrides): single-sequence state must also go cold per wave.
    let mut wrapped = PerNeuronEvaluator::new(BnnMemoEvaluator::new(mirror, config));
    let w0 = net.run_batch(&[s0.as_slice()], &mut wrapped).unwrap();
    let w1 = net.run_batch(&[s1.as_slice()], &mut wrapped).unwrap();
    assert_bit_identical("wrapped wave 0", &w0, &[r0]);
    assert_bit_identical("wrapped wave 1 must start cold", &w1, &[r1]);
}
