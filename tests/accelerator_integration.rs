//! Integration tests spanning the functional model and the accelerator
//! simulator: reuse measured by `nfm-core` drives E-PUR+BM projections.

use nfm::accel::{EpurConfig, EpurSimulator, NetworkShape};
use nfm::eval::harness::shape_from_spec;
use nfm::memo::{BnnMemoConfig, MemoizedRunner};
use nfm::workloads::{NetworkId, NetworkSpec, WorkloadBuilder};

/// Measures reuse on a scaled-down functional model, but — like the paper
/// and the eval harness — projects it onto the *full-size* Table 1
/// topology for the hardware study (tiny models would be dominated by the
/// fixed 5-cycle FMU latency).
fn measured_reuse(id: NetworkId, theta: f32) -> (f64, NetworkShape, u64) {
    let w = WorkloadBuilder::new(id)
        .scale(0.06)
        .layers(2)
        .sequences(2)
        .sequence_length(20)
        .seed(13)
        .build()
        .unwrap();
    let memo = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(theta))
        .run(&w)
        .unwrap();
    let spec = NetworkSpec::of(id);
    let shape = shape_from_spec(&spec);
    let timesteps = spec.typical_sequence_length as u64;
    (memo.reuse_fraction(), shape, timesteps)
}

#[test]
fn measured_reuse_translates_into_energy_and_time_savings() {
    let (reuse, shape, timesteps) = measured_reuse(NetworkId::Eesen, 1.0);
    assert!(reuse > 0.05, "need some reuse for this test, got {reuse}");
    let sim = EpurSimulator::new(EpurConfig::default());
    let cmp = sim.compare(&shape, timesteps, 2, reuse);
    assert!(cmp.speedup() > 1.0, "speedup {}", cmp.speedup());
    assert!(cmp.energy_savings() > 0.0);
    assert!(
        cmp.energy_savings() < reuse,
        "savings ({}) cannot exceed the reuse fraction ({reuse})",
        cmp.energy_savings()
    );
}

#[test]
fn baseline_simulation_is_independent_of_measured_reuse() {
    let (r1, shape, timesteps) = measured_reuse(NetworkId::ImdbSentiment, 0.5);
    let (r2, _, _) = measured_reuse(NetworkId::ImdbSentiment, 2.0);
    assert_ne!(r1, r2);
    let sim = EpurSimulator::new(EpurConfig::default());
    let a = sim.compare(&shape, timesteps, 1, r1).baseline;
    let b = sim.compare(&shape, timesteps, 1, r2).baseline;
    assert_eq!(a.cycles, b.cycles);
    assert!((a.total_energy_joules() - b.total_energy_joules()).abs() < 1e-12);
}

#[test]
fn more_reuse_never_hurts_hardware_metrics() {
    let (_, shape, timesteps) = measured_reuse(NetworkId::DeepSpeech2, 1.0);
    let sim = EpurSimulator::new(EpurConfig::default());
    let mut last_speedup = 0.0;
    let mut last_savings = f64::NEG_INFINITY;
    for reuse in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let cmp = sim.compare(&shape, timesteps, 1, reuse);
        assert!(cmp.speedup() >= last_speedup);
        assert!(cmp.energy_savings() >= last_savings);
        last_speedup = cmp.speedup();
        last_savings = cmp.energy_savings();
    }
}

#[test]
fn scaled_shape_and_full_scale_shape_are_consistent() {
    // The functional network (scaled) and the Table 1 network (full) have
    // different sizes but the same structure; per-step evaluation counts
    // must scale with neurons * gates * directions.
    let w = WorkloadBuilder::new(NetworkId::Eesen)
        .scale(0.1)
        .layers(2)
        .sequences(1)
        .sequence_length(4)
        .seed(3)
        .build()
        .unwrap();
    let shape = NetworkShape::from_network(w.network());
    assert_eq!(
        shape.neurons_per_step(),
        w.network().neuron_evaluations_per_step()
    );
    assert_eq!(shape.weight_count(), w.network().weight_count());
    assert!(shape.layers().iter().all(|l| l.directions == 2));
    assert!(shape.layers().iter().all(|l| l.gates == 4));
}
