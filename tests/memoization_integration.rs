//! Integration tests spanning the workload, memoization and RNN crates:
//! end-to-end behaviour of the fuzzy memoization scheme on the Table 1
//! workloads (scaled down).

use nfm::memo::{BnnMemoConfig, MemoizedRunner, OracleMemoConfig};
use nfm::workloads::{NetworkId, WorkloadBuilder};

fn workload(id: NetworkId, seed: u64) -> nfm::workloads::Workload {
    WorkloadBuilder::new(id)
        .scale(0.06)
        .layers(2)
        .sequences(2)
        .sequence_length(16)
        .seed(seed)
        .build()
        .expect("workload builds")
}

#[test]
fn exact_runner_is_reference_behaviour_for_every_network() {
    for id in NetworkId::ALL {
        let w = workload(id, 1);
        let a = MemoizedRunner::exact().run(&w).unwrap();
        let b = MemoizedRunner::exact().run(&w).unwrap();
        assert_eq!(
            a.outputs, b.outputs,
            "{id}: exact inference is deterministic"
        );
        assert_eq!(a.reuse_fraction(), 0.0);
        assert_eq!(
            a.stats.evaluations(),
            w.total_neuron_evaluations(),
            "{id}: every neuron evaluation is counted"
        );
        // Zero divergence from itself under every accuracy proxy.
        assert_eq!(w.metric().batch_loss(&a.outputs, &b.outputs), 0.0);
    }
}

#[test]
fn oracle_at_zero_threshold_matches_exact_for_every_network() {
    for id in NetworkId::ALL {
        let w = workload(id, 2);
        let exact = MemoizedRunner::exact().run(&w).unwrap();
        let oracle = MemoizedRunner::oracle(OracleMemoConfig::with_threshold(0.0))
            .run(&w)
            .unwrap();
        assert_eq!(exact.outputs, oracle.outputs, "{id}");
        assert_eq!(w.metric().batch_loss(&exact.outputs, &oracle.outputs), 0.0);
    }
}

#[test]
fn bnn_reuse_grows_with_threshold_and_loss_stays_finite() {
    for id in [NetworkId::Eesen, NetworkId::ImdbSentiment] {
        let w = workload(id, 3);
        let baseline = MemoizedRunner::exact().run(&w).unwrap();
        let mut last_reuse = -1.0;
        for theta in [0.0_f32, 0.3, 0.8, 1.6] {
            let memo = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(theta))
                .run(&w)
                .unwrap();
            // Reuse generally grows with θ, but because reused values feed
            // back through the recurrent state the trajectory changes, so
            // small local dips are possible; only forbid large regressions.
            assert!(
                memo.reuse_fraction() + 0.05 >= last_reuse,
                "{id}: reuse should not drop sharply when θ grows"
            );
            last_reuse = memo.reuse_fraction();
            let loss = w.metric().batch_loss(&baseline.outputs, &memo.outputs);
            assert!(loss.is_finite());
            assert!(loss >= 0.0);
            for (seq_base, seq_memo) in baseline.outputs.iter().zip(memo.outputs.iter()) {
                assert_eq!(seq_base.len(), seq_memo.len());
                for (a, b) in seq_base.iter().zip(seq_memo.iter()) {
                    assert_eq!(a.len(), b.len());
                    assert!(b.iter().all(|v| v.is_finite()));
                }
            }
        }
        assert!(
            last_reuse > 0.0,
            "{id}: generous thresholds must reuse something"
        );
    }
}

#[test]
fn bnn_predictor_evaluates_the_binary_network_every_step() {
    let w = workload(NetworkId::DeepSpeech2, 4);
    let memo = MemoizedRunner::bnn(BnnMemoConfig::with_threshold(0.5))
        .run(&w)
        .unwrap();
    assert_eq!(
        memo.stats.bnn_evaluations(),
        w.total_neuron_evaluations(),
        "the BNN is evaluated for every neuron at every timestep"
    );
    assert_eq!(
        memo.stats.evaluations(),
        w.total_neuron_evaluations(),
        "every neuron evaluation request is accounted for"
    );
    assert_eq!(
        memo.stats.computed() + memo.stats.reuses(),
        memo.stats.evaluations()
    );
}

#[test]
fn oracle_upper_bounds_bnn_at_matched_accuracy() {
    // The oracle knows the true outputs, so at (approximately) the same
    // accuracy loss it should achieve at least as much reuse as the BNN
    // predictor.  Compare the best reuse found below a loss budget.
    let w = workload(NetworkId::Eesen, 5);
    let baseline = MemoizedRunner::exact().run(&w).unwrap();
    let budget = 10.0; // percentage points
    let best = |oracle: bool| -> f64 {
        let mut best_reuse = 0.0_f64;
        for i in 0..8 {
            let theta = 0.1 * i as f32;
            let outcome = if oracle {
                MemoizedRunner::oracle(OracleMemoConfig::with_threshold(theta))
                    .run(&w)
                    .unwrap()
            } else {
                MemoizedRunner::bnn(BnnMemoConfig::with_threshold(theta))
                    .run(&w)
                    .unwrap()
            };
            let loss = w.metric().batch_loss(&baseline.outputs, &outcome.outputs);
            if loss <= budget {
                best_reuse = best_reuse.max(outcome.reuse_fraction());
            }
        }
        best_reuse
    };
    let oracle_best = best(true);
    let bnn_best = best(false);
    assert!(
        oracle_best + 0.05 >= bnn_best,
        "oracle ({oracle_best}) should not be clearly worse than BNN ({bnn_best})"
    );
}

#[test]
fn different_workload_seeds_give_different_data_same_topology() {
    let a = workload(NetworkId::Mnmt, 10);
    let b = workload(NetworkId::Mnmt, 11);
    assert_eq!(
        a.network().neuron_evaluations_per_step(),
        b.network().neuron_evaluations_per_step()
    );
    assert_ne!(a.sequences(), b.sequences());
}
