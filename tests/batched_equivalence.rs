//! Equivalence guarantees for the batched gate-evaluation hot path.
//!
//! The contract: `NeuronEvaluator::evaluate_gate` overrides must be
//! **bit-identical** to the per-neuron fallback (the trait's default
//! implementation, pinned down by `PerNeuronEvaluator`), for every
//! built-in evaluator, and the parallel sequence runner must produce
//! exactly the sequential runner's outputs and statistics.

use nfm::bnn::BinaryNetwork;
use nfm::memo::{
    BnnMemoConfig, BnnMemoEvaluator, InferenceWorkload, MemoizedRunner, OracleEvaluator,
    OracleMemoConfig, ReuseStats,
};
use nfm::rnn::{CellKind, DeepRnn, DeepRnnConfig, Direction, ExactEvaluator, PerNeuronEvaluator};
use nfm::tensor::rng::DeterministicRng;
use nfm::tensor::Vector;

fn networks() -> Vec<(&'static str, DeepRnn)> {
    let mut rng = DeterministicRng::seed_from_u64(42);
    vec![
        (
            "lstm-uni",
            DeepRnn::random(
                &DeepRnnConfig::new(CellKind::Lstm, 6, 9)
                    .layers(2)
                    .output_size(3),
                &mut rng,
            )
            .unwrap(),
        ),
        (
            "lstm-bidi",
            DeepRnn::random(
                &DeepRnnConfig::new(CellKind::Lstm, 5, 7)
                    .layers(2)
                    .direction(Direction::Bidirectional),
                &mut rng,
            )
            .unwrap(),
        ),
        (
            "gru-uni",
            DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, 6, 8).layers(3), &mut rng).unwrap(),
        ),
        (
            "gru-bidi",
            DeepRnn::random(
                &DeepRnnConfig::new(CellKind::Gru, 4, 6)
                    .layers(2)
                    .direction(Direction::Bidirectional)
                    .output_size(2),
                &mut rng,
            )
            .unwrap(),
        ),
    ]
}

fn smooth_sequence(len: usize, width: usize, seed: u64) -> Vec<Vector> {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let mut x = Vector::from_fn(width, |_| rng.uniform(-0.5, 0.5));
    (0..len)
        .map(|_| {
            x = x
                .add(&Vector::from_fn(width, |_| rng.uniform(-0.08, 0.08)))
                .unwrap();
            x.clone()
        })
        .collect()
}

/// Asserts two output sequences are bit-identical (stricter than
/// `PartialEq`, which would let `-0.0 == 0.0` slip through).
fn assert_bit_identical(name: &str, batched: &[Vector], per_neuron: &[Vector]) {
    assert_eq!(batched.len(), per_neuron.len(), "{name}: length");
    for (t, (a, b)) in batched.iter().zip(per_neuron.iter()).enumerate() {
        assert_eq!(a.len(), b.len(), "{name}: width at t={t}");
        for i in 0..a.len() {
            assert_eq!(
                a[i].to_bits(),
                b[i].to_bits(),
                "{name}: output bit mismatch at t={t}, i={i}: {} vs {}",
                a[i],
                b[i]
            );
        }
    }
}

#[test]
fn exact_batched_is_bit_identical_to_per_neuron() {
    for (name, net) in networks() {
        let seq = smooth_sequence(12, net.input_size(), 7);
        let mut batched = ExactEvaluator::new();
        let out_batched = net.run(&seq, &mut batched).unwrap();
        let mut naive = PerNeuronEvaluator::new(ExactEvaluator::new());
        let out_naive = net.run(&seq, &mut naive).unwrap();
        assert_bit_identical(name, &out_batched, &out_naive);
        assert_eq!(batched.evaluations(), naive.inner().evaluations(), "{name}");
    }
}

#[test]
fn oracle_batched_is_bit_identical_and_stats_match() {
    for theta in [0.0f32, 0.2, 0.6, f32::INFINITY] {
        for (name, net) in networks() {
            let seq = smooth_sequence(14, net.input_size(), 11);
            let mut batched =
                OracleEvaluator::for_network(&net, OracleMemoConfig::with_threshold(theta));
            let out_batched = net.run(&seq, &mut batched).unwrap();
            let mut naive = PerNeuronEvaluator::new(OracleEvaluator::new(
                OracleMemoConfig::with_threshold(theta),
            ));
            let out_naive = net.run(&seq, &mut naive).unwrap();
            assert_bit_identical(name, &out_batched, &out_naive);
            assert_eq!(
                batched.stats(),
                naive.inner().stats(),
                "{name} θ={theta}: reuse statistics must match"
            );
        }
    }
}

#[test]
fn bnn_batched_is_bit_identical_and_stats_match() {
    for theta in [0.0f32, 0.5, 2.0] {
        for (name, net) in networks() {
            let seq = smooth_sequence(14, net.input_size(), 13);
            let mirror = BinaryNetwork::mirror(&net);
            let mut batched =
                BnnMemoEvaluator::new(mirror.clone(), BnnMemoConfig::with_threshold(theta));
            let out_batched = net.run(&seq, &mut batched).unwrap();
            let mut naive = PerNeuronEvaluator::new(BnnMemoEvaluator::new(
                mirror,
                BnnMemoConfig::with_threshold(theta),
            ));
            let out_naive = net.run(&seq, &mut naive).unwrap();
            assert_bit_identical(name, &out_batched, &out_naive);
            assert_eq!(
                batched.stats(),
                naive.inner().stats(),
                "{name} θ={theta}: reuse statistics must match"
            );
            assert_eq!(
                batched.table().max_consecutive_reuses(),
                naive.inner().table().max_consecutive_reuses(),
                "{name} θ={theta}: reuse run lengths must match"
            );
        }
    }
}

#[test]
fn bnn_without_throttling_is_bit_identical_too() {
    for (name, net) in networks() {
        let seq = smooth_sequence(10, net.input_size(), 17);
        let mirror = BinaryNetwork::mirror(&net);
        let config = BnnMemoConfig::with_threshold(0.8).without_throttling();
        let mut batched = BnnMemoEvaluator::new(mirror.clone(), config);
        let out_batched = net.run(&seq, &mut batched).unwrap();
        let mut naive = PerNeuronEvaluator::new(BnnMemoEvaluator::new(mirror, config));
        let out_naive = net.run(&seq, &mut naive).unwrap();
        assert_bit_identical(name, &out_batched, &out_naive);
        assert_eq!(batched.stats(), naive.inner().stats(), "{name}");
    }
}

struct Tiny {
    net: DeepRnn,
    seqs: Vec<Vec<Vector>>,
}

impl InferenceWorkload for Tiny {
    fn network(&self) -> &DeepRnn {
        &self.net
    }
    fn input_sequences(&self) -> &[Vec<Vector>] {
        &self.seqs
    }
}

#[test]
fn parallel_runner_matches_sequential_exactly() {
    let mut rng = DeterministicRng::seed_from_u64(99);
    let net = DeepRnn::random(
        &DeepRnnConfig::new(CellKind::Lstm, 5, 8).layers(2),
        &mut rng,
    )
    .unwrap();
    let seqs: Vec<Vec<Vector>> = (0..9)
        .map(|i| smooth_sequence(8 + (i % 3), 5, 100 + i as u64))
        .collect();
    let w = Tiny { net, seqs };
    for runner in [
        MemoizedRunner::exact(),
        MemoizedRunner::oracle(OracleMemoConfig::with_threshold(0.3)),
        MemoizedRunner::bnn(BnnMemoConfig::with_threshold(1.0)),
    ] {
        // Force multiple workers so the scoped-thread fan-out runs even
        // on single-core hosts, and exercise uneven chunking (9 seqs / 4
        // workers).
        let par = runner.with_workers(4).run(&w).unwrap();
        let seq = runner.sequential().run(&w).unwrap();
        assert_eq!(par.outputs.len(), seq.outputs.len());
        for (a, b) in par.outputs.iter().zip(seq.outputs.iter()) {
            assert_bit_identical("runner", a, b);
        }
        let par_stats: ReuseStats = par.stats;
        assert_eq!(par_stats, seq.stats);
    }
}
