//! Integration tests for the adaptive threshold controller through the
//! serving engine: audit sampling is output-invariant, a frozen
//! controller is bit-identical to the static BNN predictor it freezes,
//! single-worker adaptive serving is seed-deterministic, the controller
//! converges onto the accuracy SLO under drifting traffic, and
//! [`Engine::context_stats`](nfm::serve::Engine::context_stats) reports
//! every served context with live controller state.

use nfm::control::{AdaptivePredictor, ControllerConfig};
use nfm::memo::{AuditConfig, BnnMemoConfig, BnnMemoEvaluator};
use nfm::rnn::{CellKind, DeepRnn, DeepRnnConfig};
use nfm::serve::{EngineBuilder, InferenceRequest, ModelRegistry, PredictorKind, RequestOptions};
use nfm::tensor::rng::DeterministicRng;
use nfm::tensor::Vector;
use nfm::workloads::{InputDomain, SequenceGenerator};
use std::sync::Arc;

const FEATURES: usize = 6;

fn network(seed: u64) -> DeepRnn {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let config = DeepRnnConfig::new(CellKind::Lstm, FEATURES, 24).layers(2);
    DeepRnn::random(&config, &mut rng).expect("network builds")
}

fn drifting_sequences(count: usize, length: usize, seed: u64) -> Vec<Vec<Vector>> {
    SequenceGenerator::new(InputDomain::drifting(), FEATURES, seed).sequences(count, length)
}

/// Runs `sequences` through a single-worker engine serving `registry`,
/// with every request routed to `predictor`, and returns the outputs in
/// request order.  The engine starts paused so the full queue is
/// visible before the worker schedules anything — lane assignment (and
/// therefore the adaptive θ trajectory) is then a pure function of the
/// request order, not of the submit/pump race.
fn serve_all(
    registry: ModelRegistry,
    predictor: &str,
    sequences: &[Vec<Vector>],
) -> Vec<Vec<Vector>> {
    let engine = EngineBuilder::from_registry(registry)
        .lanes(2)
        .workers(1)
        .queue_capacity(sequences.len().max(1))
        .start_paused()
        .build()
        .expect("engine builds");
    for (i, seq) in sequences.iter().enumerate() {
        engine
            .submit(
                InferenceRequest::new(i as u64, seq.clone())
                    .with_options(RequestOptions::new().predictor(predictor)),
            )
            .expect("submit");
    }
    let mut responses = engine.shutdown();
    responses.sort_by_key(|r| r.id);
    assert!(responses.iter().all(|r| r.is_done()));
    responses.into_iter().map(|r| r.outputs).collect()
}

#[test]
fn audit_sampling_never_changes_outputs_or_reuse() {
    let net = network(41);
    let mirror = Arc::new(nfm::bnn::BinaryNetwork::mirror(&net));
    let sequences = drifting_sequences(3, 24, 17);
    let config = BnnMemoConfig::with_threshold(0.4);

    let mut plain = BnnMemoEvaluator::new(Arc::clone(&mirror), config);
    let mut audited =
        BnnMemoEvaluator::new(Arc::clone(&mirror), config).with_audit(AuditConfig::new(4, 9));
    for seq in &sequences {
        let a = net.run(seq, &mut plain).expect("plain run");
        let b = net.run(seq, &mut audited).expect("audited run");
        assert_eq!(a, b, "auditing must not change emitted outputs");
    }
    // Reuse accounting is untouched; only the audit counter moves.
    assert_eq!(plain.stats().evaluations(), audited.stats().evaluations());
    assert_eq!(plain.stats().reuses(), audited.stats().reuses());
    assert_eq!(
        plain.stats().bnn_evaluations(),
        audited.stats().bnn_evaluations()
    );
    assert_eq!(plain.stats().audited(), 0);
    let stats = audited.audit_stats();
    assert!(stats.audited() > 0, "the audit subsample must be non-empty");
    assert_eq!(audited.stats().audited(), stats.audited());
    assert!(plain.audit_stats().is_empty());
}

#[test]
fn frozen_controller_matches_static_bnn_bit_for_bit() {
    let theta = 0.35;
    let sequences = drifting_sequences(4, 20, 23);

    let mut static_registry = ModelRegistry::new();
    static_registry
        .register(
            "m",
            network(77),
            PredictorKind::Bnn(BnnMemoConfig::with_threshold(theta)),
        )
        .unwrap();
    let static_outputs = serve_all(static_registry, "bnn", &sequences);

    let net = network(77);
    let frozen = Arc::new(AdaptivePredictor::for_network(
        &net,
        ControllerConfig::frozen_at(0.05, theta),
    ));
    let mut frozen_registry = ModelRegistry::new();
    frozen_registry
        .register("m", net, PredictorKind::Exact)
        .unwrap();
    frozen_registry
        .add_custom_predictor("m", "adaptive", Arc::clone(&frozen) as _)
        .unwrap();
    let frozen_outputs = serve_all(frozen_registry, "adaptive", &sequences);

    assert_eq!(
        static_outputs, frozen_outputs,
        "a frozen controller must reproduce the static BnnPredictor bit for bit"
    );
    assert_eq!(frozen.controller().updates(), 0);
    assert!(frozen.controller().snapshot().hits() > 0);
}

#[test]
fn single_worker_adaptive_serving_is_seed_deterministic() {
    let sequences = drifting_sequences(5, 24, 31);
    let run = || {
        let net = network(99);
        let predictor = Arc::new(AdaptivePredictor::for_network(
            &net,
            ControllerConfig::new(0.04)
                .audit_period(4)
                .initial_theta(0.3)
                .alpha(0.3)
                .gains(1.25, 0.6)
                .min_audits_per_update(4)
                .seed(7),
        ));
        let mut registry = ModelRegistry::new();
        registry.register("m", net, PredictorKind::Exact).unwrap();
        registry
            .add_custom_predictor("m", "adaptive", Arc::clone(&predictor) as _)
            .unwrap();
        let outputs = serve_all(registry, "adaptive", &sequences);
        (outputs, predictor.controller().snapshot())
    };
    let (outputs_a, snap_a) = run();
    let (outputs_b, snap_b) = run();
    assert_eq!(outputs_a, outputs_b, "same seed, same outputs");
    assert_eq!(snap_a, snap_b, "same seed, same controller trajectory");
    assert!(
        snap_a.hits() > 0,
        "the run should exercise the memoization path"
    );
}

#[test]
fn controller_converges_onto_slo_under_drift() {
    let net = network(5);
    let slo = 0.05;
    let predictor = AdaptivePredictor::for_network(
        &net,
        ControllerConfig::new(slo)
            .audit_period(4)
            .initial_theta(0.05)
            .alpha(0.3)
            .gains(1.25, 0.6)
            .min_audits_per_update(8)
            .seed(2019),
    );
    let mut evaluator = predictor.evaluator();
    for seq in &drifting_sequences(12, 60, 13) {
        net.run(seq, &mut evaluator).expect("adaptive run");
    }
    evaluator.flush();

    let controller = predictor.controller();
    assert!(
        controller.updates() > 0,
        "drift must trigger θ updates, got none"
    );
    let snapshot = controller.snapshot();
    let mean = snapshot
        .mean_audited_error()
        .expect("audits were collected");
    // Starting from a conservative θ the controller approaches the SLO
    // from the low-error side; the cumulative audited error (which
    // still contains the convergence transient) stays within a small
    // slack of the budget rather than running away with the drift.
    assert!(
        mean <= slo * 2.0,
        "cumulative audited error {mean} ran away from the SLO {slo}"
    );
    // And it actually used the budget: θ grew above its conservative
    // starting point on at least one layer.
    assert!(
        snapshot.thresholds().iter().any(|&t| t > 0.05),
        "θ never grew: {:?}",
        snapshot.thresholds()
    );
}

#[test]
fn context_stats_reports_every_served_context() {
    let net = network(61);
    let slo = 0.05;
    let adaptive = Arc::new(AdaptivePredictor::for_network(
        &net,
        ControllerConfig::new(slo).audit_period(4).seed(3),
    ));
    let mut registry = ModelRegistry::new();
    registry
        .register(
            "m",
            net,
            PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.5)),
        )
        .unwrap();
    registry
        .add_custom_predictor("m", "adaptive", Arc::clone(&adaptive) as _)
        .unwrap();
    let engine = EngineBuilder::from_registry(registry)
        .lanes(2)
        .workers(1)
        .queue_capacity(16)
        .build()
        .expect("engine builds");

    let sequences = drifting_sequences(6, 16, 47);
    for (i, seq) in sequences.iter().enumerate() {
        let mut request = InferenceRequest::new(i as u64, seq.clone());
        request = match i % 3 {
            0 => request, // default predictor (bnn)
            1 => request.with_options(RequestOptions::new().predictor("adaptive")),
            _ => request.with_options(RequestOptions::new().threshold(0.25)), // per-request θ override
        };
        engine.submit(request).expect("submit");
    }
    let responses = engine.drain();
    assert_eq!(responses.len(), sequences.len());

    let stats = engine.context_stats();
    let names: Vec<(String, Option<f32>)> = stats
        .iter()
        .map(|c| (c.predictor.clone(), c.threshold_override))
        .collect();
    assert!(names.contains(&("bnn".to_string(), None)));
    assert!(names.contains(&("adaptive".to_string(), None)));
    assert!(names.contains(&("bnn".to_string(), Some(0.25))));

    for ctx in &stats {
        assert_eq!(ctx.model.as_str(), "m");
        assert!(ctx.stats.evaluations() > 0, "{} saw no work", ctx.predictor);
        assert!((0.0..=1.0).contains(&ctx.hit_rate()));
        if ctx.predictor == "adaptive" {
            let control = ctx.control.as_ref().expect("adaptive exposes control");
            assert_eq!(control.slo, slo);
            assert_eq!(control.hits(), adaptive.controller().snapshot().hits());
        } else {
            assert!(ctx.control.is_none(), "static contexts have no controller");
        }
    }
}
