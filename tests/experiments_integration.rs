//! Integration tests for the evaluation harness: every experiment of the
//! per-figure/per-table index in DESIGN.md produces a well-formed report.

use nfm::eval::{run_experiment, EvalConfig, EXPERIMENTS};

#[test]
fn every_experiment_runs_on_the_smoke_configuration() {
    let config = EvalConfig::smoke();
    for name in EXPERIMENTS {
        let report = run_experiment(name, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.contains("===="),
            "{name}: report should carry a heading"
        );
        assert!(report.len() > 80, "{name}: report looks too short");
    }
}

#[test]
fn table1_mentions_every_network_and_its_paper_reuse() {
    let report = run_experiment("table1", &EvalConfig::smoke()).unwrap();
    for needle in [
        "IMDB Sentiment",
        "DeepSpeech2",
        "EESEN",
        "MNMT",
        "36.2%",
        "16.4%",
        "30.5%",
        "19.0%",
    ] {
        assert!(report.contains(needle), "missing {needle}");
    }
}

#[test]
fn table2_matches_the_paper_configuration() {
    let report = run_experiment("table2", &EvalConfig::smoke()).unwrap();
    for needle in ["28 nm", "500 MHz", "2048 bits", "5 cycles", "16 operations"] {
        assert!(report.contains(needle), "missing {needle}");
    }
}

#[test]
fn figure_reports_contain_their_curves() {
    let config = EvalConfig::smoke();
    let fig1 = run_experiment("fig1", &config).unwrap();
    assert!(fig1.contains("Computation Reuse (%)"));
    let fig16 = run_experiment("fig16", &config).unwrap();
    assert!(fig16.contains("Oracle predictor"));
    assert!(fig16.contains("Binary Network predictor"));
    let fig18 = run_experiment("fig18", &config).unwrap();
    assert!(fig18.contains("E-PUR+BM"));
    assert!(fig18.contains("LPDDR4"));
    let fig19 = run_experiment("fig19", &config).unwrap();
    assert!(fig19.contains("Speedup"));
}

#[test]
fn headline_report_compares_against_paper_numbers() {
    let report = run_experiment("headline", &EvalConfig::smoke()).unwrap();
    assert!(report.contains("24.2"));
    assert!(report.contains("18.5"));
    assert!(report.contains("1.35"));
}

#[test]
fn unknown_experiments_are_rejected_with_the_valid_list() {
    let err = run_experiment("figure-42", &EvalConfig::smoke()).unwrap_err();
    assert!(err.contains("fig16"));
}
