//! Serving semantics of the request engine.
//!
//! Four contracts:
//!
//! 1. **Equivalence** — mid-wave lane refill (the unified lane
//!    scheduler's block policy) produces outputs, per-request reuse
//!    statistics and memo-hit counts bit-identical to draining the same
//!    sequences per-sequence and to the layer-lockstep wave schedule,
//!    for every predictor and for ragged lengths.
//! 2. **Deadlines** — expired requests are always *reported* (never
//!    silently dropped), under both deadline policies.
//! 3. **Backpressure** — a full bounded queue rejects submissions with
//!    a `QueueFull` error; degenerate engine configurations are
//!    rejected at build time.
//! 4. **Work stealing** — migrating an in-flight lane from a saturated
//!    worker to an idle one never changes any request's outputs or
//!    statistics, and every request is still reported exactly once.

use nfm::bnn::BinaryNetwork;
use nfm::memo::{BnnMemoConfig, BnnMemoEvaluator, OracleMemoConfig, ReuseStats};
use nfm::rnn::{CellKind, DeepRnn, DeepRnnConfig, Direction, ExactEvaluator, NeuronEvaluator};
use nfm::serve::{
    CompletionStatus, DeadlinePolicy, Engine, EngineBuilder, EngineError, InferenceRequest,
    MemoizedRunner, PredictorKind,
};
use nfm::tensor::rng::DeterministicRng;
use nfm::tensor::Vector;
use std::time::Duration;

/// Ragged lengths that force lanes to drain at different steps: with 2
/// or 3 lanes every refill happens mid-wave.
const RAGGED_LENS: [usize; 9] = [12, 5, 9, 1, 3, 11, 7, 2, 8];

fn smooth_sequence(len: usize, width: usize, seed: u64) -> Vec<Vector> {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let mut x = Vector::from_fn(width, |_| rng.uniform(-0.5, 0.5));
    (0..len)
        .map(|_| {
            x = x
                .add(&Vector::from_fn(width, |_| rng.uniform(-0.08, 0.08)))
                .unwrap();
            x.clone()
        })
        .collect()
}

fn unidirectional_networks() -> Vec<(&'static str, DeepRnn)> {
    let mut rng = DeterministicRng::seed_from_u64(4321);
    vec![
        (
            "lstm-uni-head",
            DeepRnn::random(
                &DeepRnnConfig::new(CellKind::Lstm, 6, 9)
                    .layers(2)
                    .output_size(3),
                &mut rng,
            )
            .unwrap(),
        ),
        (
            "gru-uni",
            DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, 5, 8).layers(2), &mut rng).unwrap(),
        ),
    ]
}

fn ragged_sequences(net: &DeepRnn, seed: u64) -> Vec<Vec<Vector>> {
    RAGGED_LENS
        .iter()
        .enumerate()
        .map(|(i, &len)| smooth_sequence(len, net.input_size(), seed + i as u64))
        .collect()
}

fn predictors() -> Vec<(&'static str, PredictorKind)> {
    vec![
        ("exact", PredictorKind::Exact),
        (
            "oracle",
            PredictorKind::Oracle(OracleMemoConfig::with_threshold(0.4)),
        ),
        (
            "bnn",
            PredictorKind::Bnn(BnnMemoConfig::with_threshold(1.0)),
        ),
    ]
}

fn runner_for(predictor: PredictorKind) -> MemoizedRunner {
    match predictor {
        PredictorKind::Exact => MemoizedRunner::exact(),
        PredictorKind::Oracle(c) => MemoizedRunner::oracle(c),
        PredictorKind::Bnn(c) => MemoizedRunner::bnn(c),
    }
}

fn assert_bit_identical(name: &str, a: &[Vector], b: &[Vector]) {
    assert_eq!(a.len(), b.len(), "{name}: output length");
    for (t, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.len(), y.len(), "{name}: width at t={t}");
        for i in 0..x.len() {
            assert_eq!(
                x[i].to_bits(),
                y[i].to_bits(),
                "{name}: bit mismatch at t={t} i={i}: {} vs {}",
                x[i],
                y[i]
            );
        }
    }
}

/// The property test of the tentpole: mid-wave refill through the
/// engine == per-sequence runs == wave-boundary refill, bit for bit,
/// outputs *and* per-request stats, for all predictors and ragged
/// lengths.
#[test]
fn midwave_refill_is_bit_identical_to_per_sequence_and_wave_refill() {
    for (net_name, net) in unidirectional_networks() {
        let seqs = ragged_sequences(&net, 100);
        for (pred_name, predictor) in predictors() {
            // Per-sequence reference: one dedicated run per sequence.
            let runner = runner_for(predictor).sequential();
            let mut reference: Vec<(Vec<Vector>, ReuseStats)> = Vec::new();
            for seq in &seqs {
                struct One<'a> {
                    net: &'a DeepRnn,
                    seq: Vec<Vec<Vector>>,
                }
                impl nfm::serve::InferenceWorkload for One<'_> {
                    fn network(&self) -> &DeepRnn {
                        self.net
                    }
                    fn input_sequences(&self) -> &[Vec<Vector>] {
                        &self.seq
                    }
                }
                let one = One {
                    net: &net,
                    seq: vec![seq.clone()],
                };
                let outcome = runner.run(&one).unwrap();
                reference.push((outcome.outputs.into_iter().next().unwrap(), outcome.stats));
            }

            for lanes in [2usize, 3] {
                let name = format!("{net_name}/{pred_name}/lanes={lanes}");
                let engine = EngineBuilder::new(net.clone(), predictor)
                    .lanes(lanes)
                    .workers(1)
                    .queue_capacity(seqs.len())
                    .start_paused()
                    .build()
                    .unwrap();
                for (i, seq) in seqs.iter().enumerate() {
                    engine
                        .submit(InferenceRequest::new(i as u64, seq.clone()))
                        .unwrap();
                }
                let mut responses = engine.shutdown();
                assert_eq!(responses.len(), seqs.len(), "{name}: all reported");
                responses.sort_by_key(|r| r.id);
                let mut merged = ReuseStats::new();
                for (i, r) in responses.iter().enumerate() {
                    assert_eq!(r.status, CompletionStatus::Done, "{name} seq {i}");
                    assert_bit_identical(&format!("{name} seq {i}"), &r.outputs, &reference[i].0);
                    // Per-request stats double as memo-hit counts:
                    // reuses() is exactly the lookups served from the
                    // lane's memo table.
                    assert_eq!(r.stats, reference[i].1, "{name} seq {i}: per-request stats");
                    merged.merge(&r.stats);
                }

                // Wave-boundary refill baseline over the same admitted
                // sequences: chunks of `lanes` through run_batch.
                let mut wave_eval: Box<dyn NeuronEvaluator> = match predictor {
                    PredictorKind::Exact => Box::new(ExactEvaluator::new()),
                    PredictorKind::Oracle(c) => {
                        Box::new(nfm::memo::OracleEvaluator::for_network(&net, c))
                    }
                    PredictorKind::Bnn(c) => {
                        Box::new(BnnMemoEvaluator::new(BinaryNetwork::mirror(&net), c))
                    }
                };
                let mut wave_outputs = Vec::new();
                for wave in seqs.chunks(lanes) {
                    let refs: Vec<&[Vector]> = wave.iter().map(|s| s.as_slice()).collect();
                    wave_outputs.extend(net.run_batch(&refs, wave_eval.as_mut()).unwrap());
                }
                for (i, (r, w)) in responses.iter().zip(wave_outputs.iter()).enumerate() {
                    assert_bit_identical(&format!("{name} vs wave, seq {i}"), &r.outputs, w);
                }
            }
        }
    }
}

/// Bidirectional stacks cannot step-pipeline; the engine must fall back
/// to wave scheduling and still match per-sequence runs exactly.
#[test]
fn bidirectional_engine_falls_back_to_waves_and_matches() {
    let mut rng = DeterministicRng::seed_from_u64(99);
    let net = DeepRnn::random(
        &DeepRnnConfig::new(CellKind::Lstm, 4, 6)
            .layers(2)
            .direction(Direction::Bidirectional),
        &mut rng,
    )
    .unwrap();
    let seqs = ragged_sequences(&net, 500);
    let predictor = PredictorKind::Bnn(BnnMemoConfig::with_threshold(0.8));
    let engine = EngineBuilder::new(net.clone(), predictor)
        .lanes(3)
        .workers(1)
        .queue_capacity(seqs.len())
        .start_paused()
        .build()
        .unwrap();
    for (i, seq) in seqs.iter().enumerate() {
        engine
            .submit(InferenceRequest::new(i as u64, seq.clone()))
            .unwrap();
    }
    let mut responses = engine.shutdown();
    responses.sort_by_key(|r| r.id);
    let mirror = BinaryNetwork::mirror(&net);
    let mut merged = ReuseStats::new();
    for (i, r) in responses.iter().enumerate() {
        let mut single = BnnMemoEvaluator::new(mirror.clone(), BnnMemoConfig::with_threshold(0.8));
        let reference = net.run(&seqs[i], &mut single).unwrap();
        assert_bit_identical(&format!("bidi seq {i}"), &r.outputs, &reference);
        assert_eq!(r.stats, *single.stats(), "bidi seq {i}: per-request stats");
        merged.merge(&r.stats);
    }
    assert!(merged.reuses() > 0, "memoization was exercised");
}

fn tiny_engine(policy: DeadlinePolicy, capacity: usize, paused: bool) -> (DeepRnn, Engine) {
    let mut rng = DeterministicRng::seed_from_u64(7);
    let net = DeepRnn::random(&DeepRnnConfig::new(CellKind::Lstm, 3, 4), &mut rng).unwrap();
    let mut builder = EngineBuilder::new(net.clone(), PredictorKind::Exact)
        .lanes(2)
        .workers(1)
        .queue_capacity(capacity)
        .deadline_policy(policy);
    if paused {
        builder = builder.start_paused();
    }
    (net, builder.build().unwrap())
}

#[test]
fn expired_requests_are_reported_not_dropped() {
    let (net, engine) = tiny_engine(DeadlinePolicy::DropExpired, 16, true);
    // Zero budget: expired by the time a lane looks at them.
    for i in 0..5u64 {
        engine
            .submit(
                InferenceRequest::new(i, smooth_sequence(6, net.input_size(), i))
                    .with_deadline(Duration::ZERO),
            )
            .unwrap();
    }
    // One request without a deadline must still complete normally.
    engine
        .submit(InferenceRequest::new(
            99,
            smooth_sequence(6, net.input_size(), 99),
        ))
        .unwrap();
    let responses = engine.drain();
    assert_eq!(responses.len(), 6, "every request is reported");
    let expired: Vec<_> = responses
        .iter()
        .filter(|r| r.status == CompletionStatus::DeadlineExpired)
        .collect();
    assert_eq!(expired.len(), 5);
    for r in &expired {
        assert!(r.outputs.is_empty(), "dropped requests are not computed");
        assert_eq!(r.stats, ReuseStats::new());
        assert_eq!(r.compute_latency, Duration::ZERO);
    }
    let done = responses.iter().find(|r| r.id == 99).unwrap();
    assert_eq!(done.status, CompletionStatus::Done);
    assert_eq!(done.outputs.len(), 6);
}

#[test]
fn run_to_completion_computes_late_requests() {
    let (net, engine) = tiny_engine(DeadlinePolicy::RunToCompletion, 16, true);
    engine
        .submit(
            InferenceRequest::new(1, smooth_sequence(5, net.input_size(), 1))
                .with_deadline(Duration::ZERO),
        )
        .unwrap();
    let responses = engine.drain();
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].status, CompletionStatus::DeadlineExpired);
    assert_eq!(responses[0].outputs.len(), 5, "late but computed");
    assert!(responses[0].stats.evaluations() > 0);
}

#[test]
fn full_queue_rejects_with_backpressure_error() {
    // start_paused makes this deterministic: no worker drains the
    // queue while we fill it.
    let (net, engine) = tiny_engine(DeadlinePolicy::DropExpired, 3, true);
    for i in 0..3u64 {
        engine
            .submit(InferenceRequest::new(
                i,
                smooth_sequence(4, net.input_size(), i),
            ))
            .unwrap();
    }
    let err = engine
        .submit(InferenceRequest::new(
            3,
            smooth_sequence(4, net.input_size(), 3),
        ))
        .unwrap_err();
    assert_eq!(err, EngineError::QueueFull { capacity: 3 });
    assert!(err.to_string().contains("backpressure"), "{err}");
    // Draining frees capacity again.
    let responses = engine.drain();
    assert_eq!(responses.len(), 3);
    engine
        .submit(InferenceRequest::new(
            4,
            smooth_sequence(4, net.input_size(), 4),
        ))
        .unwrap();
    assert_eq!(engine.drain().len(), 1);
    assert!(engine.last_error().is_none());
}

#[test]
fn submissions_are_validated_up_front() {
    let (net, engine) = tiny_engine(DeadlinePolicy::DropExpired, 8, false);
    assert_eq!(
        engine.submit(InferenceRequest::new(1, Vec::new())),
        Err(EngineError::EmptySequence { id: 1 })
    );
    let bad = vec![Vector::zeros(net.input_size() + 1)];
    assert!(matches!(
        engine.submit(InferenceRequest::new(2, bad)),
        Err(EngineError::InputSizeMismatch { id: 2, .. })
    ));
    // submit_all stops at the first failure and reports the count.
    let mixed = vec![
        InferenceRequest::new(3, smooth_sequence(4, net.input_size(), 3)),
        InferenceRequest::new(4, Vec::new()),
        InferenceRequest::new(5, smooth_sequence(4, net.input_size(), 5)),
    ];
    assert!(engine.submit_all(mixed).is_err());
    assert_eq!(engine.drain().len(), 1, "the valid prefix was admitted");
}

#[test]
fn degenerate_builder_configs_error_instead_of_clamping() {
    let mut rng = DeterministicRng::seed_from_u64(3);
    let net = DeepRnn::random(&DeepRnnConfig::new(CellKind::Gru, 3, 4), &mut rng).unwrap();
    for (build, what) in [
        (
            EngineBuilder::new(net.clone(), PredictorKind::Exact).lanes(0),
            "lanes",
        ),
        (
            EngineBuilder::new(net.clone(), PredictorKind::Exact).workers(0),
            "workers",
        ),
        (
            EngineBuilder::new(net.clone(), PredictorKind::Exact).queue_capacity(0),
            "queue_capacity",
        ),
    ] {
        match build.build() {
            Err(EngineError::InvalidConfig { what: msg }) => {
                assert!(msg.contains(what), "{msg} should name {what}");
                assert!(
                    msg.contains(">= 1"),
                    "{msg} should state the accepted range"
                );
            }
            other => panic!("expected InvalidConfig for {what}, got {other:?}"),
        }
    }
}

#[test]
fn shutdown_refuses_further_submissions() {
    let (net, engine) = tiny_engine(DeadlinePolicy::DropExpired, 8, false);
    engine
        .submit(InferenceRequest::new(
            1,
            smooth_sequence(4, net.input_size(), 1),
        ))
        .unwrap();
    let responses = engine.shutdown();
    assert_eq!(responses.len(), 1);
    // The engine is consumed by shutdown; build another and kill it via
    // drop semantics instead: drop drains the queue too.
    let (net, engine) = tiny_engine(DeadlinePolicy::DropExpired, 8, true);
    engine
        .submit(InferenceRequest::new(
            2,
            smooth_sequence(4, net.input_size(), 2),
        ))
        .unwrap();
    drop(engine); // must not hang: workers drain and join
}

/// Contract 4: with two workers and a saturated/idle split, an
/// in-flight lane migrates between workers (`Engine::migrations`) and
/// every response — the migrated request's included — stays
/// bit-identical to its dedicated reference, outputs and per-request
/// memo statistics alike, with every request reported exactly once.
///
/// The receiving worker has already retired its own short requests when
/// the donation arrives, so the implant lands in a context mid-stream
/// (the steal-during-mid-wave-refill configuration), not a fresh one.
/// Which worker grabs the two long requests is a scheduling race, so
/// the engine is re-run until a migration happens; bit-identity is
/// asserted on every attempt regardless.
#[test]
fn work_stealing_migrates_lanes_bit_identically_across_workers() {
    let (_, net) = unidirectional_networks().into_iter().next().unwrap();
    let theta = 1.0f32;
    // Two long sequences (worth stealing) + two ragged shorts (retire
    // early, leaving their worker idle and its context mid-stream).
    let lens: [usize; 4] = [300, 280, 10, 6];
    let seqs: Vec<Vec<Vector>> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| smooth_sequence(len, net.input_size(), 4000 + i as u64))
        .collect();
    let mirror = BinaryNetwork::mirror(&net);
    let reference: Vec<(Vec<Vector>, ReuseStats)> = seqs
        .iter()
        .map(|seq| {
            let mut eval =
                BnnMemoEvaluator::new(mirror.clone(), BnnMemoConfig::with_threshold(theta));
            let outputs = net.run(seq, &mut eval).unwrap();
            (outputs, *eval.stats())
        })
        .collect();

    let mut migrated = false;
    for attempt in 0..20 {
        let engine = EngineBuilder::new(
            net.clone(),
            PredictorKind::Bnn(BnnMemoConfig::with_threshold(theta)),
        )
        .lanes(2)
        .workers(2)
        .queue_capacity(seqs.len())
        .start_paused()
        .build()
        .unwrap();
        for (i, seq) in seqs.iter().enumerate() {
            engine
                .submit(InferenceRequest::new(i as u64, seq.clone()))
                .unwrap();
        }
        let mut responses = engine.drain();
        assert_eq!(
            responses.len(),
            seqs.len(),
            "attempt {attempt}: exactly-once"
        );
        responses.sort_by_key(|r| r.id);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(
                r.id, i as u64,
                "attempt {attempt}: no duplicate or lost ids"
            );
            assert_eq!(
                r.status,
                CompletionStatus::Done,
                "attempt {attempt} seq {i}"
            );
            assert_bit_identical(
                &format!("steal attempt {attempt} seq {i}"),
                &r.outputs,
                &reference[i].0,
            );
            assert_eq!(
                r.stats, reference[i].1,
                "attempt {attempt} seq {i}: memo stats survive migration"
            );
        }
        if engine.migrations() > 0 {
            migrated = true;
            break;
        }
    }
    assert!(
        migrated,
        "no lane migrated in 20 attempts (2 long + 2 short requests over 2 workers)"
    );
}

#[test]
fn engine_reports_latencies_and_pending_counts() {
    let (net, engine) = tiny_engine(DeadlinePolicy::DropExpired, 8, true);
    for i in 0..4u64 {
        engine
            .submit(InferenceRequest::new(
                i,
                smooth_sequence(5, net.input_size(), i),
            ))
            .unwrap();
    }
    assert_eq!(engine.pending(), 4);
    let responses = engine.drain();
    assert_eq!(engine.pending(), 0);
    for r in &responses {
        assert!(r.total_latency() >= r.compute_latency);
        assert!(r.is_done());
    }
    assert_eq!(engine.take_completed().len(), 0, "drain already took them");
}
